"""DRAM hash index: key -> tagged handle -> entry.

Figure 4/5: every request thread consults the *DRAM-based Hash Index* to
locate an entry in either DRAM or PMem; the stored value is a tagged
pointer whose low bit is the location. The index itself is volatile —
after a crash it is reconstructed from the PMem scan
(:mod:`repro.core.recovery`).

The tagged-handle map is the paper's mechanism and stays authoritative
for location tags; alongside it the index keeps a direct
``key -> entry`` dict so single lookups skip the handle unpack and bulk
lookups (:meth:`find_many`) run at C speed through
:func:`operator.itemgetter` — the entry point of the vectorized
pull/push fast paths.
"""

from __future__ import annotations

import operator
from typing import Iterator, Sequence

from repro.core.entry import EmbeddingEntry, EntryArena, Location, pack_handle, unpack_handle
from repro.errors import ServerError


class HashIndex:
    """Key -> tagged-handle map over an entry arena.

    All mutations keep the handle's tag bit in sync with the entry's
    ``location`` field; :meth:`validate` checks that invariant.
    """

    def __init__(self) -> None:
        self._handles: dict[int, int] = {}
        self._arena = EntryArena()
        self._entries: dict[int, EmbeddingEntry] = {}

    def __len__(self) -> int:
        return len(self._handles)

    def __contains__(self, key: int) -> bool:
        return key in self._handles

    def find(self, key: int) -> EmbeddingEntry | None:
        """Look up ``key``; returns None when absent (Algorithm 1 ``find``)."""
        return self._entries.get(key)

    def find_many(self, keys: Sequence[int]) -> tuple[EmbeddingEntry, ...] | None:
        """All entries for ``keys`` at once, or None if ANY key is absent.

        The all-or-nothing contract is what the vectorized fast paths
        need: a single missing key sends the whole batch down the
        per-key slow path, which handles creation / PMem residency.
        """
        if not keys:
            return ()
        try:
            found = operator.itemgetter(*keys)(self._entries)
        except KeyError:
            return None
        if len(keys) == 1:
            return (found,)
        return found

    def location_of(self, key: int) -> Location:
        """Read the tag bit without dereferencing the entry.

        Raises:
            KeyError: unknown key.
        """
        __, location = unpack_handle(self._handles[key])
        return location

    def insert(self, entry: EmbeddingEntry) -> None:
        """Register a new entry.

        Raises:
            ServerError: the key is already present.
        """
        if entry.key in self._handles:
            raise ServerError(f"key {entry.key} already indexed")
        slot = self._arena.alloc(entry)
        self._handles[entry.key] = pack_handle(slot, entry.location)
        self._entries[entry.key] = entry

    def set_location(self, entry: EmbeddingEntry, location: Location) -> None:
        """Flip the entry's location and its handle's tag bit together."""
        if entry.key not in self._handles:
            raise ServerError(f"key {entry.key} not indexed")
        entry.location = location
        self._handles[entry.key] = pack_handle(entry.slot, location)

    def remove(self, key: int) -> None:
        """Drop ``key`` entirely (entry leaves the node)."""
        handle = self._handles.pop(key, None)
        if handle is None:
            raise KeyError(key)
        slot, __ = unpack_handle(handle)
        self._arena.free(slot)
        del self._entries[key]

    def entries(self) -> Iterator[EmbeddingEntry]:
        """Iterate all indexed entries (order unspecified)."""
        for handle in self._handles.values():
            slot, __ = unpack_handle(handle)
            yield self._arena.get(slot)

    def keys(self) -> Iterator[int]:
        return iter(self._handles)

    def validate(self) -> None:
        """Check tag-bit/entry consistency; used by tests."""
        if len(self._entries) != len(self._handles):
            raise ServerError(
                f"direct map holds {len(self._entries)} entries, "
                f"handle map {len(self._handles)}"
            )
        for key, handle in self._handles.items():
            slot, location = unpack_handle(handle)
            entry = self._arena.get(slot)
            if entry.key != key:
                raise ServerError(f"handle for {key} resolves to entry {entry.key}")
            if entry.location != location:
                raise ServerError(
                    f"tag bit {location.name} disagrees with entry location "
                    f"{entry.location.name} for key {key}"
                )
            if self._entries.get(key) is not entry:
                raise ServerError(f"direct map disagrees with handle for key {key}")
