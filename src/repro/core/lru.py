"""Intrusive LRU list over embedding entries.

The paper keeps hot entries in DRAM under an LRU-like policy whose
maintenance is deferred to the pipelined maintainer threads (Section
V-B). The list is intrusive — prev/next pointers live on the entry —
matching the C++ implementation and giving O(1) reorder/evict.

Because an entry's ``version`` is assigned from the monotonically
increasing batch id at every (re)insertion to the front, the list is
always sorted front-to-back by non-increasing version; the tail victim
therefore carries the oldest version in the cache — the property
Algorithm 2's checkpoint-completion test relies on.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.entry import EmbeddingEntry
from repro.errors import ServerError


class LRUList:
    """Doubly-linked intrusive LRU list (front = most recent)."""

    def __init__(self) -> None:
        self._head: EmbeddingEntry | None = None
        self._tail: EmbeddingEntry | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, entry: EmbeddingEntry) -> bool:
        return entry.in_lru

    def push_front(self, entry: EmbeddingEntry) -> None:
        """Insert a not-yet-listed entry at the MRU position."""
        if entry.in_lru:
            raise ServerError(f"entry {entry.key} already in LRU list")
        entry.lru_prev = None
        entry.lru_next = self._head
        if self._head is not None:
            self._head.lru_prev = entry
        self._head = entry
        if self._tail is None:
            self._tail = entry
        entry.in_lru = True
        self._size += 1

    def move_to_front(self, entry: EmbeddingEntry) -> None:
        """Reorder an accessed entry to MRU (Algorithm 2's ``reorder``).

        Inserting an unlisted entry is allowed and equivalent to
        :meth:`push_front`, which is what happens the first time a newly
        created entry reaches the maintainer.
        """
        if not entry.in_lru:
            self.push_front(entry)
            return
        if self._head is entry:
            return
        self._unlink(entry)
        entry.lru_prev = None
        entry.lru_next = self._head
        if self._head is not None:
            self._head.lru_prev = entry
        self._head = entry
        if self._tail is None:
            self._tail = entry
        entry.in_lru = True
        self._size += 1

    def move_many_to_front(self, entries, version: int | None = None) -> None:
        """Batched :meth:`move_to_front` — identical final order.

        Equivalent to ``for e in entries: move_to_front(e)`` with the
        unlink/link surgery inlined into one loop: the vectorized
        maintenance fast path reorders thousands of entries per round,
        and two Python function calls per entry dominate its cost.
        Passing ``version`` also stamps each entry as it moves —
        versions are assigned at reorder time anyway (module docstring),
        and fusing the stamp avoids a second pass over the batch.
        """
        head = self._head
        tail = self._tail
        size = self._size
        stamp = version is not None
        for entry in entries:
            if stamp:
                entry.version = version
            if entry.in_lru:
                if head is entry:
                    continue
                # inline _unlink (entry is never head here)
                prev = entry.lru_prev
                nxt = entry.lru_next
                if prev is not None:
                    prev.lru_next = nxt
                else:
                    head = nxt
                if nxt is not None:
                    nxt.lru_prev = prev
                else:
                    tail = prev
            else:
                entry.in_lru = True
                size += 1
            # inline link-at-front
            entry.lru_prev = None
            entry.lru_next = head
            if head is not None:
                head.lru_prev = entry
            head = entry
            if tail is None:
                tail = entry
        self._head = head
        self._tail = tail
        self._size = size

    def peek_victim(self) -> EmbeddingEntry:
        """The LRU tail — Algorithm 2's ``findOldestEntry`` (no removal).

        Raises:
            ServerError: the list is empty.
        """
        if self._tail is None:
            raise ServerError("LRU list is empty; no victim available")
        return self._tail

    def remove(self, entry: EmbeddingEntry) -> None:
        """Unlink ``entry`` (eviction)."""
        if not entry.in_lru:
            raise ServerError(f"entry {entry.key} not in LRU list")
        self._unlink(entry)

    def pop_victim(self) -> EmbeddingEntry:
        """Remove and return the LRU tail."""
        victim = self.peek_victim()
        self._unlink(victim)
        return victim

    def __iter__(self) -> Iterator[EmbeddingEntry]:
        """Iterate front (MRU) to back (LRU)."""
        node = self._head
        while node is not None:
            yield node
            node = node.lru_next

    def validate(self, check_version_order: bool = True) -> None:
        """Check structural invariants; used by tests.

        Args:
            check_version_order: also require front-to-back versions to
                be non-increasing. That property is an *LRU* invariant
                (versions are assigned at reorder time from the monotone
                batch counter); FIFO/CLOCK users pass False.

        Raises:
            ServerError: on any broken link, count mismatch, or (when
                checked) a version inversion.
        """
        count = 0
        prev: EmbeddingEntry | None = None
        node = self._head
        while node is not None:
            if node.lru_prev is not prev:
                raise ServerError(f"broken prev link at key {node.key}")
            if check_version_order and prev is not None and node.version > prev.version:
                raise ServerError(
                    f"version inversion: {prev.key}(v{prev.version}) before "
                    f"{node.key}(v{node.version})"
                )
            if not node.in_lru:
                raise ServerError(f"listed entry {node.key} has in_lru=False")
            prev = node
            node = node.lru_next
            count += 1
        if prev is not self._tail:
            raise ServerError("tail pointer does not match last node")
        if count != self._size:
            raise ServerError(f"size mismatch: counted {count}, recorded {self._size}")

    def _unlink(self, entry: EmbeddingEntry) -> None:
        if entry.lru_prev is not None:
            entry.lru_prev.lru_next = entry.lru_next
        else:
            self._head = entry.lru_next
        if entry.lru_next is not None:
            entry.lru_next.lru_prev = entry.lru_prev
        else:
            self._tail = entry.lru_prev
        entry.lru_prev = None
        entry.lru_next = None
        entry.in_lru = False
        self._size -= 1
