"""Property tests for the consistent-hash ring (hypothesis).

The elasticity layer leans on four guarantees of
:class:`repro.core.sharding.ConsistentHashRing`:

1. routing is a pure function of ``(key, num_nodes, vnodes)`` —
   identical across runs AND across processes (no salted hashing);
2. growing ``n -> n+1`` moves at most ``(1/(n+1))·(1+ε)`` of a sampled
   keyspace, and everything that moves lands on the new node;
3. shrinking ``n+1 -> n`` restores the *exact* assignment the ring had
   at ``n`` nodes (scale-in is scale-out played backwards);
4. ``split()`` scatter positions always invert back to request order.

Each is a hypothesis property here; the deterministic profile pinned in
``conftest.py`` keeps the example stream reproducible.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharding import (
    ConsistentHashRing,
    HashPartitioner,
    make_partitioner,
    mix64,
    pack_ring_state,
    unpack_ring_state,
)
from repro.errors import ConfigError

#: Slack on the minimal-movement bound. With v vnodes per node the ring
#: balances like v·n samples of a uniform partition; ε covers that
#: sampling noise for the vnode counts tested here.
EPSILON = 0.75

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=2**63 - 1),
    min_size=50,
    max_size=400,
    unique=True,
)


class TestDeterminism:
    @given(
        keys=keys_strategy,
        num_nodes=st.integers(1, 8),
        vnodes=st.sampled_from([8, 64, 128]),
    )
    @settings(max_examples=40, deadline=None)
    def test_rebuilt_ring_routes_identically(self, keys, num_nodes, vnodes):
        first = ConsistentHashRing(num_nodes, vnodes)
        second = ConsistentHashRing(num_nodes, vnodes)
        assert [first.node_of(k) for k in keys] == [
            second.node_of(k) for k in keys
        ]

    def test_routing_identical_across_processes(self):
        """A fresh interpreter computes the same routes (no per-process
        hash salting anywhere on the path) — the invariant recovery
        depends on: the recovering process must agree with the crashed
        one about which shard owned every key."""
        keys = [mix64(i) % (2**61) for i in range(200)]
        here = [ConsistentHashRing(5, 48).node_of(k) for k in keys]
        script = (
            "from repro.core.sharding import ConsistentHashRing;"
            f"ring = ConsistentHashRing(5, 48);"
            f"print([ring.node_of(k) for k in {keys!r}])"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        assert eval(output.strip()) == here  # noqa: S307 - our own repr

    @given(data=st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=100, deadline=None)
    def test_mix64_stays_in_range(self, data):
        assert 0 <= mix64(data) < 2**64


class TestMinimalMovement:
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_keys=st.integers(200, 2000),
        num_nodes=st.integers(2, 8),
        vnodes=st.sampled_from([64, 128]),
    )
    @settings(max_examples=40, deadline=None)
    def test_scale_out_moves_at_most_one_share(
        self, seed, num_keys, num_nodes, vnodes
    ):
        """The ``1/(n+1)`` movement bound is a statement about *sampled*
        keyspaces — it holds (within ε of vnode sampling noise) over
        uniform keys, not for adversarially chosen lists, where a
        shrunk 50-key example can concentrate just past the bound. So
        the keys come from a seeded uniform draw and hypothesis
        explores seeds and shapes instead of hand-picking the keys."""
        rng = np.random.default_rng(seed)
        keys = np.unique(
            rng.integers(0, 2**63 - 1, size=num_keys, dtype=np.uint64)
        ).tolist()
        ring = ConsistentHashRing(num_nodes, vnodes)
        grown = ring.with_nodes(num_nodes + 1)
        moved = ring.moved_keys(grown, keys)
        bound = (len(keys) / (num_nodes + 1)) * (1 + EPSILON)
        assert len(moved) <= bound, (
            f"{len(moved)}/{len(keys)} moved, bound {bound:.1f} "
            f"(n={num_nodes}, vnodes={vnodes})"
        )

    @given(
        keys=keys_strategy,
        num_nodes=st.integers(2, 8),
        vnodes=st.sampled_from([64, 128]),
    )
    @settings(max_examples=40, deadline=None)
    def test_moved_keys_land_only_on_the_new_node(self, keys, num_nodes, vnodes):
        ring = ConsistentHashRing(num_nodes, vnodes)
        grown = ring.with_nodes(num_nodes + 1)
        for key in ring.moved_keys(grown, keys):
            assert grown.node_of(key) == num_nodes  # the joining node

    @given(
        keys=keys_strategy,
        num_nodes=st.integers(1, 8),
        vnodes=st.sampled_from([16, 64]),
    )
    @settings(max_examples=40, deadline=None)
    def test_scale_in_restores_prior_assignment_exactly(
        self, keys, num_nodes, vnodes
    ):
        """Removing the node that just joined is a perfect undo."""
        ring = ConsistentHashRing(num_nodes, vnodes)
        round_trip = ring.with_nodes(num_nodes + 1).with_nodes(num_nodes)
        assert [ring.node_of(k) for k in keys] == [
            round_trip.node_of(k) for k in keys
        ]

    @given(keys=keys_strategy, num_nodes=st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_modulo_remaps_most_keys(self, keys, num_nodes):
        """The contrast the ring exists for: under modulo hashing a
        grow step moves ~(n)/(n+1) of all keys."""
        old = HashPartitioner(num_nodes)
        new = HashPartitioner(num_nodes + 1)
        moved = sum(1 for k in keys if old.node_of(k) != new.node_of(k))
        # Strictly more than the ring's worst tested bound.
        assert moved / len(keys) > 0.5


class TestSplitInversion:
    @given(
        keys=st.lists(  # duplicates allowed: split must preserve them
            st.integers(min_value=0, max_value=2**63 - 1),
            min_size=1,
            max_size=300,
        ),
        num_nodes=st.integers(1, 8),
        kind=st.sampled_from(["modulo", "ring"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_scatter_positions_invert(self, keys, num_nodes, kind):
        partitioner = make_partitioner(kind, num_nodes, vnodes=32)
        per_node_keys, per_node_positions = partitioner.split(keys)
        rebuilt = [None] * len(keys)
        seen_positions = []
        for node, (node_keys, positions) in enumerate(
            zip(per_node_keys, per_node_positions)
        ):
            assert len(node_keys) == len(positions)
            for key, position in zip(node_keys, positions):
                assert partitioner.node_of(key) == node
                rebuilt[position] = key
                seen_positions.append(position)
        assert rebuilt == list(keys)
        assert sorted(seen_positions) == list(range(len(keys)))


class TestRingStateWord:
    @given(
        epoch=st.integers(0, 2**20 - 1),
        num_nodes=st.integers(0, 2**20 - 1),
        vnodes=st.integers(0, 2**20 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_round_trips(self, epoch, num_nodes, vnodes):
        assert unpack_ring_state(pack_ring_state(epoch, num_nodes, vnodes)) == (
            epoch,
            num_nodes,
            vnodes,
        )

    def test_pack_rejects_out_of_range(self):
        with np.testing.assert_raises(ConfigError):
            pack_ring_state(-1, 2, 64)
        with np.testing.assert_raises(ConfigError):
            pack_ring_state(0, 2**20, 64)
