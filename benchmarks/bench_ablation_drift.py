"""Extension: cache behaviour under temporal hot-set drift.

The paper's trace spans 147 days of production traffic; hot sets
rotate. This bench drives the PMem-OE cache with a drifting workload
(60 % of the rank->key mapping reshuffles at each simulated "day") and
measures the cold rate (accesses not served from DRAM) around the
boundaries: a sharp transient right after each rotation, then LRU
re-adaptation back toward the steady state.

Operationally this is why the epoch-level numbers of Figures 7/8 are
stable in production despite drift: the penalty is a short re-warm
spike per rotation, not a permanent miss-rate shift — as long as the
cache comfortably holds the (rotated) hot set.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import Headline, Param, register
from repro.config import CacheConfig, ServerConfig, WorkloadConfig
from repro.core.ps_node import PSNode
from repro.workload.drift import DriftingWorkload

ITERS_PER_DAY = 60
DAYS = 3
WORKERS = 8


def run_drift_trace(
    days: int = DAYS,
    iters_per_day: int = ITERS_PER_DAY,
    workers: int = WORKERS,
    drift_fraction: float = 0.6,
):
    profile_keys = 200_000
    workload = DriftingWorkload(
        WorkloadConfig(num_keys=profile_keys, features_per_sample=4, seed=5),
        drift_fraction=drift_fraction,
        batches_per_day=iters_per_day * workers,
    )
    node = PSNode(
        0,
        ServerConfig(embedding_dim=64, pmem_capacity_bytes=1 << 30, seed=5),
        CacheConfig(capacity_bytes=int(0.004 * profile_keys) * 64 * 4),
        metadata_only=True,
    )
    cold = []
    for batch in range(days * iters_per_day):
        keys = []
        for worker_batch in workload.sample_worker_batches(workers, 64):
            keys.extend(worker_batch.tolist())
        result = node.pull(keys, batch)
        node.maintain(batch)
        node.push(keys, None, batch)
        cold.append(1.0 - result.hits / result.accesses)
    return np.array(cold), workload.rotations


def test_ablation_temporal_drift(benchmark, report):
    cold, rotations = run_once(benchmark, run_drift_trace)
    steady_day0 = float(cold[ITERS_PER_DAY - 15 : ITERS_PER_DAY].mean())
    # The re-warm transient lasts ~one synchronous iteration: the first
    # pull after a rotation takes all the cold traffic at once.
    spike_day1 = float(cold[ITERS_PER_DAY])
    recovered_day1 = float(cold[2 * ITERS_PER_DAY - 15 : 2 * ITERS_PER_DAY].mean())
    spike_day2 = float(cold[2 * ITERS_PER_DAY])

    report.title(
        "ablation_drift",
        "Extension: cold rate around daily 60% hot-set rotations (2 GB-eq cache)",
    )
    report.row("steady state (end of day 0)", "-", f"{steady_day0:.2%}")
    report.row("transient after rotation 1", "spike", f"{spike_day1:.2%}")
    report.row("re-adapted (end of day 1)", "back near steady", f"{recovered_day1:.2%}")
    report.row("transient after rotation 2", "spike again", f"{spike_day2:.2%}")
    report.line(f"  rotations executed: {rotations}")

    # Each rotation produces a clear one-iteration transient...
    assert spike_day1 > 1.3 * steady_day0
    assert spike_day2 > 1.3 * recovered_day1
    # ...and LRU re-adapts well below the spike before the next day.
    assert recovered_day1 < 0.75 * spike_day1
    assert rotations in (DAYS - 1, DAYS)


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if metrics["spike_ratio"] <= 1.3:
        failures.append(
            f"rotation transient {metrics['spike_ratio']:.2f}x not a clear spike"
        )
    if metrics["recovered_cold"] >= 0.75 * metrics["spike_cold"]:
        failures.append("LRU failed to re-adapt after the rotation")
    return failures


@register(
    "ablation_drift",
    params=[
        Param("days", "int", DAYS),
        Param("iters_per_day", "int", ITERS_PER_DAY),
        Param("workers", "int", WORKERS),
        Param("drift_fraction", "float", 0.6),
    ],
    smoke={"days": 2, "iters_per_day": 30},
    headline={
        "spike_ratio": Headline(direction="higher", max_regression=0.10),
        "recovered_cold": Headline(direction="lower", max_regression=0.10),
    },
    check=_check,
)
def entry(*, days, iters_per_day, workers, drift_fraction):
    """Cold-rate spike and LRU re-adaptation around daily hot-set
    rotations of ``drift_fraction`` of the rank->key mapping."""
    cold, rotations = run_drift_trace(days, iters_per_day, workers,
                                      drift_fraction)
    tail = max(iters_per_day // 4, 2)
    steady_cold = float(cold[iters_per_day - tail : iters_per_day].mean())
    spike_cold = float(cold[iters_per_day])
    recovered_cold = float(
        cold[2 * iters_per_day - tail : 2 * iters_per_day].mean()
    )
    return {
        "steady_cold": steady_cold,
        "spike_cold": spike_cold,
        "recovered_cold": recovered_cold,
        "spike_ratio": spike_cold / max(steady_cold, 1e-9),
        "rotations": rotations,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("ablation_drift"))