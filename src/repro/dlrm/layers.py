"""Dense neural-network layers (numpy).

The dense part of a DLRM — the MLP that consumes the concatenated
embeddings — is small (<1 % of model size, Section VI-A) but compute
heavy. This module gives it a minimal, fully tested implementation:
:class:`Dense` layers with ReLU, composed by :class:`MLP`.

Forward passes cache what backward needs; ``backward`` returns the
input gradient and accumulates parameter gradients on the layer, which
a :class:`repro.dlrm.optimizers.DenseOptimizer` then consumes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-free logistic function for any logit magnitude."""
    x = np.asarray(x)
    out = np.empty(x.shape, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out.astype(x.dtype if x.dtype.kind == "f" else np.float64)


class Dense:
    """A fully connected layer ``y = act(x @ W + b)``.

    Args:
        in_features / out_features: layer shape.
        activation: ``"relu"``, ``"sigmoid"`` or ``"linear"``.
        rng: initialiser RNG (Xavier-uniform weights, zero bias).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ConfigError("layer dimensions must be positive")
        if activation not in ("relu", "sigmoid", "linear"):
            raise ConfigError(f"unknown activation {activation!r}")
        rng = rng or np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = rng.uniform(-limit, limit, (in_features, out_features)).astype(
            np.float32
        )
        self.bias = np.zeros(out_features, dtype=np.float32)
        self.activation = activation
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None
        self._pre: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for a batch ``x`` of shape (B, in)."""
        self._x = x
        pre = x @ self.weight + self.bias
        self._pre = pre
        if self.activation == "relu":
            return np.maximum(pre, 0.0)
        if self.activation == "sigmoid":
            return stable_sigmoid(pre)
        return pre

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop ``grad_out`` (B, out); returns grad wrt input (B, in).

        Parameter gradients accumulate into ``grad_weight``/``grad_bias``
        (call :meth:`zero_grad` between steps).
        """
        if self._x is None or self._pre is None:
            raise ConfigError("backward called before forward")
        if self.activation == "relu":
            grad_pre = grad_out * (self._pre > 0)
        elif self.activation == "sigmoid":
            sig = stable_sigmoid(self._pre)
            grad_pre = grad_out * sig * (1.0 - sig)
        else:
            grad_pre = grad_out
        self.grad_weight += self._x.T @ grad_pre
        self.grad_bias += grad_pre.sum(axis=0)
        return grad_pre @ self.weight.T

    def zero_grad(self) -> None:
        self.grad_weight.fill(0.0)
        self.grad_bias.fill(0.0)

    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]

    @property
    def num_parameters(self) -> int:
        return self.weight.size + self.bias.size


class MLP:
    """A stack of Dense layers, e.g. ``MLP([in, 128, 64, 1])``.

    The final layer is linear (the logit); hidden layers use ReLU.
    """

    def __init__(self, sizes: list[int], rng: np.random.Generator | None = None):
        if len(sizes) < 2:
            raise ConfigError("MLP needs at least input and output sizes")
        rng = rng or np.random.default_rng(0)
        self.layers: list[Dense] = []
        for i in range(len(sizes) - 1):
            last = i == len(sizes) - 2
            self.layers.append(
                Dense(
                    sizes[i],
                    sizes[i + 1],
                    activation="linear" if last else "relu",
                    rng=rng,
                )
            )

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients()]

    @property
    def num_parameters(self) -> int:
        return sum(layer.num_parameters for layer in self.layers)

    def state(self) -> list[np.ndarray]:
        """Copies of all parameters (dense checkpointing)."""
        return [np.array(p, copy=True) for p in self.parameters()]

    def load_state(self, state: list[np.ndarray]) -> None:
        """Restore parameters from :meth:`state` output."""
        params = self.parameters()
        if len(state) != len(params):
            raise ConfigError(
                f"state has {len(state)} tensors, model has {len(params)}"
            )
        for param, saved in zip(params, state):
            if param.shape != saved.shape:
                raise ConfigError(f"shape mismatch {param.shape} vs {saved.shape}")
            param[...] = saved


def binary_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Numerically stable BCE-with-logits.

    Returns ``(mean loss, dLoss/dlogits)`` for a batch; the gradient is
    already divided by the batch size.
    """
    logits = logits.reshape(-1)
    labels = labels.reshape(-1).astype(np.float64)
    if logits.shape != labels.shape:
        raise ConfigError(f"shape mismatch {logits.shape} vs {labels.shape}")
    # log(1+exp(x)) computed stably
    loss = np.maximum(logits, 0) - logits * labels + np.log1p(np.exp(-np.abs(logits)))
    probs = stable_sigmoid(logits.astype(np.float64))
    grad = (probs - labels) / len(labels)
    return float(loss.mean()), grad.astype(np.float32)
