"""Cloud cost modelling (Table V)."""

from repro.cost.pricing import (
    DRAM_PS_DEPLOYMENT,
    ORI_CACHE_DEPLOYMENT,
    PMEM_OE_DEPLOYMENT,
    Deployment,
    InstanceType,
    R6E_13XLARGE,
    RE6P_13XLARGE,
    cost_per_epoch,
    deployment_for_model,
)

__all__ = [
    "InstanceType",
    "Deployment",
    "R6E_13XLARGE",
    "RE6P_13XLARGE",
    "DRAM_PS_DEPLOYMENT",
    "PMEM_OE_DEPLOYMENT",
    "ORI_CACHE_DEPLOYMENT",
    "cost_per_epoch",
    "deployment_for_model",
]
