"""Figure 6: end-to-end training-time comparison (with checkpoints).

All systems run their Table III checkpoint configuration at the 20-min
equivalent interval. Paper: PMem-OE is 7.2/6.4/5.6 % faster than
DRAM-PS and 23.8/36.9/53.8 % faster than Ori-Cache at 4/8/16 GPUs.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.config import CheckpointConfig, CheckpointMode
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator

PAPER_VS_DRAM = {4: 0.072, 8: 0.064, 16: 0.056}
PAPER_VS_ORI = {4: 0.238, 8: 0.369, 16: 0.538}
PAPER_EPOCH_HOURS = 5.33
PAPER_INTERVAL_MIN = 20


def test_fig6_overall_training_time(benchmark, report):
    def run():
        # The 20-minute interval is absolute wall time at every GPU
        # count (as in Figure 13), so it is anchored once to the 16-GPU
        # PMem-OE epoch; checkpoint overheads compare a dump against
        # the interval, so full profile epochs are used throughout.
        from repro.simulation.profiles import DEFAULT_PROFILE

        anchor = simulate_epoch(
            SystemKind.PMEM_OE, 16, iterations=DEFAULT_PROFILE.iterations(16)
        )
        interval = TrainingSimulator.interval_for_epoch_fraction(
            anchor.sim_seconds, PAPER_INTERVAL_MIN, PAPER_EPOCH_HOURS
        )
        rows = {}
        for workers in (4, 8, 16):
            iters = DEFAULT_PROFILE.iterations(workers)
            oe = simulate_epoch(
                SystemKind.PMEM_OE, workers, iterations=iters,
                checkpoint=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval),
            ).sim_seconds
            dram = simulate_epoch(
                SystemKind.DRAM_PS, workers, iterations=iters,
                checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
            ).sim_seconds
            ori = simulate_epoch(
                SystemKind.ORI_CACHE, workers, iterations=iters,
                checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
            ).sim_seconds
            rows[workers] = (1 - oe / dram, 1 - oe / ori)
        return rows

    rows = run_once(benchmark, run)
    report.title(
        "fig6_overall", "Figure 6: PMem-OE training-time advantage with checkpoints"
    )
    for workers, (vs_dram, vs_ori) in rows.items():
        report.row(
            f"vs DRAM-PS @ {workers} GPUs",
            f"{PAPER_VS_DRAM[workers]:.1%} faster",
            f"{vs_dram:.1%} faster",
        )
        report.row(
            f"vs Ori-Cache @ {workers} GPUs",
            f"{PAPER_VS_ORI[workers]:.1%} faster",
            f"{vs_ori:.1%} faster",
        )

    # Headline shape: PMem-OE wins against BOTH baselines at EVERY scale
    # once checkpointing is on, and the Ori-Cache gap widens with GPUs.
    for workers, (vs_dram, vs_ori) in rows.items():
        assert vs_dram > 0.0
        assert vs_ori > 0.1
    ori_gaps = [rows[w][1] for w in (4, 8, 16)]
    assert ori_gaps == sorted(ori_gaps)


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if metrics["vs_dram"] <= 0.0:
        failures.append("PMem-OE not faster than DRAM-PS with checkpoints on")
    if metrics["vs_ori"] <= 0.1:
        failures.append("PMem-OE advantage over Ori-Cache below 10%")
    return failures


@register(
    "fig6_overall",
    params=[
        Param("workers", "int", 16),
        Param("iterations", "int", 0, help="0 = profile default for workers"),
    ],
    headline={
        "vs_dram": Headline(direction="higher", max_regression=0.10),
        "vs_ori": Headline(direction="higher", max_regression=0.10),
    },
    check=_check,
)
def entry(*, workers, iterations):
    """End-to-end training-time advantage of PMem-OE over DRAM-PS and
    Ori-Cache with each system's checkpoint configuration active."""
    from repro.simulation.profiles import DEFAULT_PROFILE

    iters = iterations or DEFAULT_PROFILE.iterations(workers)
    # Interval anchored to the full-profile 16-GPU epoch (see the test).
    anchor = simulate_epoch(
        SystemKind.PMEM_OE, 16, iterations=DEFAULT_PROFILE.iterations(16)
    )
    interval = TrainingSimulator.interval_for_epoch_fraction(
        anchor.sim_seconds, PAPER_INTERVAL_MIN, PAPER_EPOCH_HOURS
    )
    oe = simulate_epoch(
        SystemKind.PMEM_OE, workers, iterations=iters,
        checkpoint=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval),
    ).sim_seconds
    dram = simulate_epoch(
        SystemKind.DRAM_PS, workers, iterations=iters,
        checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
    ).sim_seconds
    ori = simulate_epoch(
        SystemKind.ORI_CACHE, workers, iterations=iters,
        checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
    ).sim_seconds
    return {"vs_dram": 1 - oe / dram, "vs_ori": 1 - oe / ori}


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig6_overall"))
