"""IncrementalCheckpointer: dirty tracking and crash atomicity."""

import numpy as np
import pytest

from repro.baselines.incremental import IncrementalCheckpointer
from repro.errors import RecoveryError
from repro.pmem.pool import PmemPool


@pytest.fixture
def live_state():
    return {}


@pytest.fixture
def checkpointer(live_state):
    pool = PmemPool(1 << 16)
    return IncrementalCheckpointer(
        pool,
        entry_bytes=8,
        read_state=lambda keys: {k: live_state[k] for k in keys},
    )


def w(v):
    return np.array([v, v], dtype=np.float32)


class TestDirtyTracking:
    def test_dirty_accumulates_and_clears(self, checkpointer, live_state):
        live_state.update({1: w(1), 2: w(2)})
        checkpointer.mark_dirty([1, 2])
        assert checkpointer.dirty_count == 2
        stats = checkpointer.checkpoint(0)
        assert stats.entries_written == 2
        assert checkpointer.dirty_count == 0

    def test_duplicates_counted_once(self, checkpointer):
        checkpointer.mark_dirty([1, 1, 1])
        assert checkpointer.dirty_count == 1

    def test_delta_only_on_second_checkpoint(self, checkpointer, live_state):
        live_state.update({1: w(1), 2: w(2), 3: w(3)})
        checkpointer.mark_dirty([1, 2, 3])
        checkpointer.checkpoint(0)
        live_state[2] = w(20)
        checkpointer.mark_dirty([2])
        stats = checkpointer.checkpoint(1)
        assert stats.entries_written == 1
        assert stats.bytes_written == 8


class TestRestore:
    def test_restore_merges_deltas(self, checkpointer, live_state):
        live_state.update({1: w(1), 2: w(2)})
        checkpointer.mark_dirty([1, 2])
        checkpointer.checkpoint(0)
        live_state[1] = w(10)
        checkpointer.mark_dirty([1])
        checkpointer.checkpoint(1)
        batch_id, state = checkpointer.restore()
        assert batch_id == 1
        assert state[1][0] == 10
        assert state[2][0] == 2

    def test_restore_without_checkpoint(self, checkpointer):
        with pytest.raises(RecoveryError):
            checkpointer.restore()

    def test_restore_from_pool_after_crash(self, checkpointer, live_state):
        live_state[1] = w(5)
        checkpointer.mark_dirty([1])
        checkpointer.checkpoint(3)
        pool = checkpointer.pool
        pool.crash()
        batch_id, state = IncrementalCheckpointer.restore_from_pool(pool)
        assert batch_id == 3
        assert state[1][0] == 5

    def test_stats_history(self, checkpointer, live_state):
        live_state[1] = w(1)
        checkpointer.mark_dirty([1])
        checkpointer.checkpoint(0)
        assert len(checkpointer.stats_history) == 1
        assert checkpointer.stats_history[0].sim_seconds > 0
