"""Table I: performance comparison of DRAM / PMem / flash SSD.

Regenerates the table from the device models by measuring effective
bandwidth over large sequential transfers and per-op latency on tiny
accesses — the same quantities the paper's microbenchmarks report.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once
from repro.bench import Headline, register
from repro.simulation.device import DRAM_SPEC, GB, MemoryDevice, PMEM_SPEC, SSD_SPEC

PAPER = {
    "DRAM": ("115 / 79", "81 / 86"),
    "PMem": ("39 / 14", "305 / 94"),
    "Flash SSD": ("2~3 / 1~2", ">10000"),
}


def measure(spec):
    device = MemoryDevice(spec)
    big = 4 * GB
    read_bw = big / device.read(big)
    write_elapsed = device.write(big)
    write_bw = big / write_elapsed
    read_latency_ns = spec.read_time(0) * 1e9
    write_latency_ns = spec.write_time(0) * 1e9
    return read_bw / GB, write_bw / GB, read_latency_ns, write_latency_ns


def test_table1_device_comparison(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: {spec.name: measure(spec) for spec in (DRAM_SPEC, PMEM_SPEC, SSD_SPEC)},
    )
    report.title("table1_devices", "Table I: device bandwidth (GB/s) and latency (ns)")
    for name, (r_bw, w_bw, r_lat, w_lat) in rows.items():
        paper_bw, paper_lat = PAPER[name]
        report.row(
            f"{name} bandwidth R/W", paper_bw, f"{r_bw:.0f} / {w_bw:.0f}"
        )
        report.row(
            f"{name} latency R/W", paper_lat, f"{r_lat:.0f} / {w_lat:.0f}"
        )
    dram = rows["DRAM"]
    pmem = rows["PMem"]
    report.line()
    report.row(
        "PMem/DRAM read throughput", "~1/3", f"1/{dram[0] / pmem[0]:.1f}"
    )
    report.row(
        "PMem/DRAM write throughput", "~1/5", f"1/{dram[1] / pmem[1]:.1f}"
    )
    assert 2.5 < dram[0] / pmem[0] < 3.5
    assert 4.5 < dram[1] / pmem[1] < 6.5


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if not 2.5 < metrics["read_ratio"] < 3.5:
        failures.append(
            f"DRAM/PMem read ratio {metrics['read_ratio']:.1f} outside ~3x"
        )
    if not 4.5 < metrics["write_ratio"] < 6.5:
        failures.append(
            f"DRAM/PMem write ratio {metrics['write_ratio']:.1f} outside ~5x"
        )
    return failures


@register(
    "table1_devices",
    params=[],
    headline={
        "read_ratio": Headline(direction="higher", max_regression=0.05),
        "write_ratio": Headline(direction="higher", max_regression=0.05),
    },
    check=_check,
)
def entry():
    """Device-model bandwidths and the DRAM/PMem throughput ratios the
    paper's Table I reports."""
    dram = measure(DRAM_SPEC)
    pmem = measure(PMEM_SPEC)
    ssd = measure(SSD_SPEC)
    return {
        "dram_read_gbps": dram[0],
        "dram_write_gbps": dram[1],
        "pmem_read_gbps": pmem[0],
        "pmem_write_gbps": pmem[1],
        "ssd_read_gbps": ssd[0],
        "read_ratio": dram[0] / pmem[0],
        "write_ratio": dram[1] / pmem[1],
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("table1_devices"))
