"""Per-phase PS service-time model for the training simulator.

One :class:`PSCostModel` prices the parameter-server side of a
synchronous training iteration for each system of Table III. All
inputs are *per-iteration aggregate op counts* produced by the
functional backend (hits, misses, flushes, ...); all outputs are
simulated seconds.

The phase structure of an iteration (Figure 2 / Figure 5):

1. **pull burst** — all workers request their batch's keys at once:
   network transfer + PS service (hash probes, DRAM/PMem reads, and for
   inline-maintained systems the serialized cache-maintenance sections).
2. **GPU compute** — dense model forward/backward; for OpenEmbedding
   the deferred cache maintenance runs in this window.
3. **push burst** — gradients return: network + optimizer application
   (+ inline maintenance again for Ori-Cache).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import ClusterConfig, ServerConfig
from repro.simulation.calibration import Calibration, DEFAULT_CALIBRATION
from repro.simulation.contention import parallel_section_time, serialized_section_time
from repro.simulation.device import DRAM_SPEC, MemoryDevice, PMEM_SPEC
from repro.simulation.network import NetworkModel


class SystemKind(enum.Enum):
    """The parameter-server systems compared in the evaluation."""

    DRAM_PS = "dram_ps"
    PMEM_OE = "pmem_oe"
    ORI_CACHE = "ori_cache"
    PMEM_HASH = "pmem_hash"
    TF_PS = "tf_ps"


@dataclass(frozen=True)
class IterationCounts:
    """Aggregate functional op counts of one synchronous iteration.

    ``requests`` counts the pulls on the *critical path*. Without a
    prefetch pipeline that is every worker's every lookup; with one it
    is only the demand misses of the lookahead buffer. The
    ``prefetch_*`` fields count the lookahead pulls issued inside the
    overlap window (zero when prefetch is off); pushes always carry the
    full duplicate burst and are counted by the caller via ``requests``
    of the unprefetched schedule, passed as ``push_requests``.
    """

    requests: int  # critical-path pull requests across all workers
    hits: int
    misses: int
    created: int
    maintain_processed: int
    maintain_loads: int
    maintain_flushes: int
    maintain_evictions: int
    prefetch_requests: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    prefetch_created: int = 0
    push_requests: int | None = None  # defaults to ``requests``


@dataclass(frozen=True)
class MigrationTiming:
    """Per-phase simulated seconds of one live shard migration.

    Training is quiesced at the batch barrier, so ``total`` is the
    throughput dip (pause) the reshard costs — what
    ``benchmarks/bench_elastic.py`` ablates against the modulo
    partitioner's near-total remap.
    """

    barrier_flush: float
    source_read: float
    network: float
    target_write: float
    index_insert: float
    total: float


@dataclass(frozen=True)
class FailoverTiming:
    """Per-phase simulated seconds of one detected failure + failover.

    ``unavailability`` is the client-visible outage (lease wait-out +
    role switch); ``rereplication`` is the background copy restoring a
    fresh backup — off the critical path, like deferred maintenance.
    ``recovery_alternative`` prices what the same failure would cost
    without a replica (the paper's checkpoint-recovery path, ~380 s at
    2.1 B entries), so every failover report carries its own ablation.
    """

    detection: float
    promotion: float
    unavailability: float
    rereplication: float
    recovery_alternative: float
    total: float


@dataclass(frozen=True)
class IterationTiming:
    """Per-phase simulated seconds of one iteration."""

    net_pull: float
    pull_service: float
    gpu: float
    maintain_deferred: float  # runs concurrently with gpu when pipelined
    maintain_inline: float  # charged on the critical path
    net_push: float
    push_service: float
    total: float
    #: lookahead prefetch work (network + PS service), priced into the
    #: overlap slot alongside deferred maintenance
    prefetch_overlapped: float = 0.0


class PSCostModel:
    """Prices PS phases for one deployment shape.

    Args:
        system: which Table III system's cost structure to use.
        cluster: worker count / batch / threads / network.
        server: embedding dim and PS node count.
        calibration: cost constants.
        pipelined: charge maintenance overlapped with GPU compute
            (OpenEmbedding's pipeline) or on the critical path.
        use_cache: False models the cache-disabled ablation of Figure 9
            — every access goes to PMem directly.
    """

    def __init__(
        self,
        system: SystemKind,
        cluster: ClusterConfig,
        server: ServerConfig,
        calibration: Calibration = DEFAULT_CALIBRATION,
        *,
        pipelined: bool = True,
        use_cache: bool = True,
        maintainer_threads: int = 4,
    ):
        self.system = system
        self.cluster = cluster
        self.server = server
        self.cal = calibration
        self.pipelined = pipelined
        self.use_cache = use_cache
        self.maintainer_threads = maintainer_threads
        self.dram = MemoryDevice(DRAM_SPEC)
        self.pmem = MemoryDevice(PMEM_SPEC)
        self.network = NetworkModel(cluster.network)
        self.entry_bytes = server.entry_bytes

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------

    def price_iteration(self, counts: IterationCounts) -> IterationTiming:
        """Simulated time of one iteration given its op counts."""
        workers = self.cluster.num_workers
        nodes = self.server.num_nodes
        push_requests = (
            counts.requests
            if counts.push_requests is None
            else counts.push_requests
        )
        per_worker_pull = max(1, counts.requests // max(1, workers))
        per_worker_push = max(1, push_requests // max(1, workers))
        net_pull = self.network.burst_transfer_time(
            workers, per_worker_pull * (self.entry_bytes + 8)
        )
        net_push = self.network.burst_transfer_time(
            workers, per_worker_push * (self.entry_bytes + 8)
        )

        r_pull = -(-counts.requests // nodes)  # per-node requests (ceil)
        r_push = -(-push_requests // nodes)
        pull_service, maintain_deferred, maintain_inline, push_service = (
            self._service_times(r_pull, r_push, counts)
        )
        prefetch_work = 0.0
        if counts.prefetch_requests > 0:
            # Lookahead pulls: same network + cache-pull cost structure
            # as the demand burst, but issued inside the overlap window.
            per_worker_pf = max(1, counts.prefetch_requests // max(1, workers))
            prefetch_work = self.network.burst_transfer_time(
                workers, per_worker_pf * (self.entry_bytes + 8)
            ) + self._prefetch_service(counts)
        gpu = self.cluster.gpu_batch_time_s
        if self.pipelined:
            middle = max(gpu, maintain_deferred + prefetch_work)
            inline = maintain_inline
        else:
            # Prefetch requires the pipeline; without it the lookahead
            # work degenerates onto the critical path.
            middle = gpu
            inline = maintain_inline + maintain_deferred + prefetch_work
        total = net_pull + pull_service + middle + inline + net_push + push_service
        return IterationTiming(
            net_pull=net_pull,
            pull_service=pull_service,
            gpu=gpu,
            maintain_deferred=maintain_deferred if self.pipelined else 0.0,
            maintain_inline=inline,
            net_push=net_push,
            push_service=push_service,
            total=total,
            prefetch_overlapped=prefetch_work if self.pipelined else 0.0,
        )

    def price_migration(
        self,
        *,
        keys_moved: int,
        versions_moved: int | None = None,
        flushed_entries: int = 0,
    ) -> MigrationTiming:
        """Simulated pause of one live reshard (quiesce -> resume).

        Phases mirror the :class:`~repro.core.migration.ShardMigrator`
        protocol: the barrier's cache flush, a sequential PMem read of
        every transferred version on the sources, a point-to-point
        network burst carrying the packed entries, the target's PMem
        writes, and per-key DRAM index inserts on the new owner. The
        atomic ring commit itself is one 8-byte word — free at this
        resolution.

        Args:
            keys_moved: distinct keys changing owner.
            versions_moved: stored versions transferred (defaults to
                one per key — the steady state after a barrier).
            flushed_entries: cache entries the barrier had to flush.
        """
        if versions_moved is None:
            versions_moved = keys_moved
        threads = self.cluster.ps_threads_per_node
        eb = self.entry_bytes
        barrier = self.pmem.burst_write(flushed_entries, eb, threads)
        read = self.pmem.burst_read(versions_moved, eb, threads)
        # Per-version wire framing: key u64 + batch i64 header.
        net = self.network.burst_transfer_time(1, versions_moved * (eb + 16))
        write = self.pmem.burst_write(versions_moved, eb, threads)
        insert = keys_moved * self.cal.index_rebuild_pmem_oe_s
        total = barrier + read + net + write + insert
        return MigrationTiming(
            barrier_flush=barrier,
            source_read=read,
            network=net,
            target_write=write,
            index_insert=insert,
            total=total,
        )

    def price_failover(
        self,
        *,
        resident_entries: int,
        lease_s: float,
        promotion_s: float | None = None,
    ) -> FailoverTiming:
        """Simulated cost of one PS-node failure under hot failover.

        Detection is bounded by the lease (the client waits out the
        remainder before it may declare death — worst case the full
        ``lease_s``); promotion is a role switch, independent of model
        size. Re-replicating a fresh backup moves the shard once —
        same read/wire/write/insert structure as a migration transfer —
        but runs in the background behind training, so only
        ``unavailability`` pauses the run.

        Args:
            resident_entries: entries resident on the failed shard.
            lease_s: the detector's lease (``ServerConfig.lease_s``).
            promotion_s: role-switch cost; defaults to
                :data:`repro.core.replication.FAILOVER_SECONDS`.
        """
        from repro.core.recovery import estimate_recovery_seconds

        if promotion_s is None:
            from repro.core.replication import FAILOVER_SECONDS

            promotion_s = FAILOVER_SECONDS
        threads = self.cluster.ps_threads_per_node
        eb = self.entry_bytes
        read = self.pmem.burst_read(resident_entries, eb, threads)
        net = self.network.burst_transfer_time(1, resident_entries * (eb + 16))
        write = self.pmem.burst_write(resident_entries, eb, threads)
        insert = resident_entries * self.cal.index_rebuild_pmem_oe_s
        rereplication = read + net + write + insert
        unavailability = lease_s + promotion_s
        recovery = estimate_recovery_seconds(
            entries=resident_entries,
            versions=resident_entries,
            entry_bytes=eb,
            calibration=self.cal,
        )
        return FailoverTiming(
            detection=lease_s,
            promotion=promotion_s,
            unavailability=unavailability,
            rereplication=rereplication,
            recovery_alternative=recovery,
            total=unavailability,
        )

    # ------------------------------------------------------------------
    # per-system phase pricing
    # ------------------------------------------------------------------

    def _service_times(
        self, r: int, r_push: int, counts: IterationCounts
    ) -> tuple[float, float, float, float]:
        """Returns (pull_service, maintain_deferred, maintain_inline,
        push_service) for one PS node's share of the burst.

        ``r`` is the per-node critical-path pull count, ``r_push`` the
        per-node push count — identical without prefetch, but with a
        lookahead buffer the pull side shrinks while pushes still carry
        every duplicate gradient.
        """
        nodes = self.server.num_nodes
        threads = self.cluster.ps_threads_per_node
        workers = self.cluster.num_workers
        eb = self.entry_bytes
        cal = self.cal
        hits = -(-counts.hits // nodes)
        misses = -(-counts.misses // nodes)
        created = -(-counts.created // nodes)
        loads = -(-counts.maintain_loads // nodes)
        flushes = -(-counts.maintain_flushes // nodes)
        processed = -(-counts.maintain_processed // nodes)

        hash_probe = parallel_section_time(r, cal.hash_lookup_s, threads)
        create = serialized_section_time(
            created,
            cal.entry_create_s,
            contenders=workers,
            contention_factor=cal.lock_contention_factor,
        )
        apply_updates = parallel_section_time(r_push, cal.update_apply_s, threads)

        if self.system == SystemKind.DRAM_PS:
            pull = hash_probe + create + self.dram.burst_read(r, eb, threads)
            push = apply_updates + self.dram.burst_write(r_push, eb, threads)
            return pull, 0.0, 0.0, push

        if self.system == SystemKind.TF_PS:
            # Single-process PS: a heavier per-entry path plus a
            # serialized session/graph section contended by all workers.
            def tf_section(n: int) -> float:
                return serialized_section_time(
                    n,
                    cal.tf_ps_entry_s + eb * cal.tf_ps_per_byte_s,
                    contenders=workers,
                    contention_factor=cal.lock_contention_factor,
                )

            pull = (
                hash_probe
                + create
                + tf_section(r)
                + self.dram.burst_read(r, eb, threads)
            )
            push = (
                apply_updates
                + tf_section(r_push)
                + self.dram.burst_write(r_push, eb, threads)
            )
            return pull, 0.0, 0.0, push

        if self.system == SystemKind.PMEM_HASH:
            # Everything on PMem, on the critical path, through a
            # PMem-aware concurrent hash whose operations serialize on
            # persistent-allocator and bucket-lock sections.
            def pm_section(n: int) -> float:
                return serialized_section_time(
                    n,
                    cal.pmem_hash_section_s,
                    contenders=workers,
                    contention_factor=cal.pmem_hash_contention_factor,
                )

            pull = hash_probe + create + pm_section(r) + self.pmem.burst_read(
                r, eb, threads
            )
            push = (
                apply_updates
                + pm_section(r_push)
                + self.pmem.burst_read(r_push, eb, threads)
                + self.pmem.burst_write(r_push, eb, threads)
            )
            return pull, 0.0, 0.0, push

        # Cache-based hybrids: PMEM_OE and ORI_CACHE.
        if not self.use_cache:
            # Figure 9 ablation: cache disabled -> every access is a
            # contended PMem read on the pull path and a PMem
            # write-back on the push path; with the pipeline enabled
            # the write-back half is deferred behind GPU compute.
            def pm_ops(n: int) -> float:
                return serialized_section_time(
                    n,
                    cal.pmem_op_overhead_s,
                    contenders=workers,
                    contention_factor=cal.pmem_contention_factor,
                )

            pull = hash_probe + create + pm_ops(r) + self.pmem.burst_read(
                r, eb, threads
            )
            writeback = pm_ops(r_push) + self.pmem.burst_write(r_push, eb, threads)
            push = apply_updates + self.pmem.burst_read(r_push, eb, threads)
            return pull, writeback, 0.0, push

        pm_miss = serialized_section_time(
            misses,
            cal.pmem_op_overhead_s,
            contenders=workers,
            contention_factor=cal.pmem_contention_factor,
        )
        pull_common = (
            hash_probe
            + create
            + self.dram.burst_read(hits, eb, threads)
            + pm_miss
            + self.pmem.burst_read(misses, eb, threads)
        )
        push_common = apply_updates + self.dram.burst_write(r_push, eb, threads)

        if self.system == SystemKind.PMEM_OE and self.pipelined:
            # Deferred maintenance on dedicated threads, no request-path
            # lock: priced into the slot that overlaps GPU compute.
            deferred = (
                parallel_section_time(
                    processed, cal.maintainer_entry_s, self.maintainer_threads
                )
                + self.pmem.burst_read(loads, eb, self.maintainer_threads)
                + self.pmem.burst_write(flushes, eb, self.maintainer_threads)
            )
            return pull_common, deferred, 0.0, push_common

        # Inline maintenance (Ori-Cache, or PMem-OE with the pipeline
        # disabled — the Figure 9 ablation): the LRU splice is a
        # serialized, contended section per access on BOTH the pull and
        # the push (a black-box cache treats the paired pull/update as
        # two independent operations), and miss-fill reads plus eviction
        # write-backs land on the pull critical path.
        inline_pull = serialized_section_time(
            r,
            cal.inline_maint_section_s,
            contenders=workers,
            contention_factor=cal.lock_contention_factor,
        )
        inline_push = serialized_section_time(
            r_push,
            cal.inline_maint_section_s,
            contenders=workers,
            contention_factor=cal.lock_contention_factor,
        )
        fill_io = self.pmem.burst_read(loads, eb, threads)
        evict_io = self.pmem.burst_write(flushes, eb, threads)
        pull = pull_common + inline_pull + fill_io + evict_io
        push = push_common + inline_push
        return pull, 0.0, 0.0, push

    def _prefetch_service(self, counts: IterationCounts) -> float:
        """PS-side cost of the lookahead pull burst (overlap slot).

        Same cache-pull cost structure as the demand burst — hash
        probes, entry creation, DRAM hits, contended PMem misses — but
        running on the maintenance side of the pipeline, so it never
        touches the critical path.
        """
        nodes = self.server.num_nodes
        threads = self.cluster.ps_threads_per_node
        workers = self.cluster.num_workers
        eb = self.entry_bytes
        cal = self.cal
        r = -(-counts.prefetch_requests // nodes)
        hits = -(-counts.prefetch_hits // nodes)
        misses = -(-counts.prefetch_misses // nodes)
        created = -(-counts.prefetch_created // nodes)
        hash_probe = parallel_section_time(r, cal.hash_lookup_s, threads)
        create = serialized_section_time(
            created,
            cal.entry_create_s,
            contenders=workers,
            contention_factor=cal.lock_contention_factor,
        )
        pm_miss = serialized_section_time(
            misses,
            cal.pmem_op_overhead_s,
            contenders=workers,
            contention_factor=cal.pmem_contention_factor,
        )
        return (
            hash_probe
            + create
            + self.dram.burst_read(hits, eb, threads)
            + pm_miss
            + self.pmem.burst_read(misses, eb, threads)
        )
