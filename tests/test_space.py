"""VersionedEntryStore: retention barriers, recycling, recovery scan."""

import numpy as np
import pytest

from repro.errors import RecoveryError
from repro.pmem.pool import PmemPool
from repro.pmem.space import NO_CHECKPOINT, VersionedEntryStore


@pytest.fixture
def store():
    return VersionedEntryStore(PmemPool(1 << 16), entry_bytes=16)


def w(v):
    return np.full(4, float(v), dtype=np.float32)


class TestVersioning:
    def test_put_and_read_latest(self, store):
        store.put(1, 5, w(5))
        batch, value = store.read_latest(1)
        assert batch == 5
        assert value[0] == 5.0

    def test_latest_wins(self, store):
        store.put(1, 5, w(5))
        store.put(1, 9, w(9))
        batch, value = store.read_latest(1)
        assert batch == 9
        assert value[0] == 9.0

    def test_without_barriers_only_newest_kept(self, store):
        store.put(1, 5, w(5))
        store.put(1, 9, w(9))
        assert store.versions_of(1) == [9]

    def test_read_at_most(self, store):
        store.set_retention_barriers((5,))
        store.put(1, 3, w(3))
        store.put(1, 9, w(9))
        batch, value = store.read_at_most(1, 5)
        assert batch == 3
        assert value[0] == 3.0

    def test_read_at_most_no_eligible(self, store):
        store.put(1, 9, w(9))
        with pytest.raises(KeyError):
            store.read_at_most(1, 5)

    def test_missing_key(self, store):
        assert not store.has(1)
        with pytest.raises(KeyError):
            store.read_latest(1)


class TestRetention:
    def test_barrier_protects_old_version(self, store):
        store.set_retention_barriers((5,))
        store.put(1, 3, w(3))
        store.put(1, 9, w(9))
        assert store.versions_of(1) == [3, 9]

    def test_multiple_barriers(self, store):
        store.set_retention_barriers((4, 8))
        for batch in (2, 6, 10):
            store.put(1, batch, w(batch))
        # newest <= 4 is 2; newest <= 8 is 6; newest overall is 10.
        assert store.versions_of(1) == [2, 6, 10]

    def test_recycle_after_barrier_moves(self, store):
        store.set_retention_barriers((5,))
        store.put(1, 3, w(3))
        store.put(1, 9, w(9))
        store.set_retention_barriers((9,))
        freed = store.recycle()
        assert freed == 1
        assert store.versions_of(1) == [9]

    def test_footprint_bounded_by_barriers(self, store):
        store.set_retention_barriers((50,))
        for batch in range(100):
            store.put(1, batch, w(batch))
        assert len(store.versions_of(1)) <= 2

    def test_idempotent_put_same_version(self, store):
        store.put(1, 5, w(5))
        store.put(1, 5, w(6))
        assert store.versions_of(1) == [5]
        assert store.read_latest(1)[1][0] == 6.0


class TestCheckpointId:
    def test_default_is_no_checkpoint(self, store):
        assert store.checkpointed_batch_id() == NO_CHECKPOINT

    def test_set_and_survive_crash(self, store):
        store.set_checkpointed_batch_id(7)
        store.pool.crash()
        assert store.checkpointed_batch_id() == 7


class TestRecovery:
    def test_rebuild_from_pool(self, store):
        store.set_retention_barriers((5,))
        store.put(1, 3, w(3))
        store.put(1, 9, w(9))
        store.put(2, 4, w(4))
        fresh = VersionedEntryStore(store.pool, entry_bytes=16)
        fresh.rebuild_from_pool()
        assert fresh.versions_of(1) == [3, 9]
        assert fresh.versions_of(2) == [4]

    def test_discard_newer_than(self, store):
        store.set_retention_barriers((5,))
        store.put(1, 3, w(3))
        store.put(1, 9, w(9))
        store.put(2, 8, w(8))
        discarded = store.discard_newer_than(5)
        assert discarded == 2
        assert store.versions_of(1) == [3]
        assert not store.versions_of(2)  # created after the checkpoint

    def test_full_recover(self, store):
        store.set_retention_barriers((5,))
        store.put(1, 3, w(3))
        store.put(1, 9, w(9))
        store.set_checkpointed_batch_id(5)
        store.pool.crash()
        recovered = store.recover()
        assert recovered == {1: 3}
        assert store.read_latest(1)[1][0] == 3.0

    def test_recover_without_checkpoint_fails(self, store):
        store.put(1, 3, w(3))
        with pytest.raises(RecoveryError):
            store.recover()

    def test_staged_writes_invisible_to_recovery(self, store):
        store.put(1, 3, w(3))
        store.set_checkpointed_batch_id(3)
        # A write that never got flushed (simulates in-flight IO).
        store.pool.write(("entry", 2, 4), w(4), nbytes=16, flush=False)
        store.pool.crash()
        recovered = store.recover()
        assert 2 not in recovered
