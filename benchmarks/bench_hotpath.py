"""Hot-path microbench: arena-vectorized vs per-key dict pull/push/maintain.

The tentpole claim: storing DRAM-resident payloads in one contiguous
float32 arena and running the all-hits pull/maintain/update path as
batched numpy ops (one gather, one segment-sum, one vectorized optimizer
application) is >= 5x faster than the per-entry reference loop at batch
sizes >= 4096 keys — while the trained weights stay *bitwise identical*
across the local server, the remote RPC client, and a faulty wire.

Two halves:

* the **microbench** drives one cache through a steady-state
  pull -> maintain -> update loop at several batch sizes with both
  ``CacheConfig.arena`` settings, byte-compares the final durable state,
  and reports wall-clock speedups;
* the **transport equivalence** half trains the same deterministic
  workload against the in-process server (arena and reference), the
  remote RPC client, and a fault-injected wire, and byte-compares every
  final embedding row.

Standalone full mode writes ``benchmarks/results/bench_hotpath.txt``:

    python benchmarks/bench_hotpath.py

CI smoke mode (small sizes; asserts the vectorized path is not slower
and still bit-identical):

    python benchmarks/bench_hotpath.py --smoke
"""

from __future__ import annotations

import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from repro.bench import Headline, Param, register
from repro.config import CacheConfig, NetworkFaultConfig, RetryConfig, ServerConfig
from repro.core.checkpoint import CheckpointCoordinator
from repro.core.cache import PipelinedCache
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.network.frontend import RemotePSClient
from repro.pmem.pool import PmemPool
from repro.pmem.space import VersionedEntryStore

DIM = 64
NUM_KEYS = 8192
BATCH_SIZES = (256, 1024, 4096, 8192)
ITERATIONS = 30
REPEATS = 3  # best-of, interleaved — damps scheduler/frequency noise
ACCEPT_BATCH = 4096
ACCEPT_SPEEDUP = 5.0

# --- microbench half -----------------------------------------------------


def _make_cache(arena: bool, num_keys: int) -> PipelinedCache:
    optimizer = PSAdagrad(lr=0.05)
    entry_bytes = (DIM + optimizer.state_width(DIM)) * 4
    pool = PmemPool(max(1 << 22, 4 * num_keys * entry_bytes))
    store = VersionedEntryStore(pool, entry_bytes=entry_bytes)
    coordinator = CheckpointCoordinator(store)
    config = CacheConfig(capacity_bytes=2 * num_keys * entry_bytes, arena=arena)

    def initializer(key: int) -> np.ndarray:
        rng = np.random.default_rng((13, key))
        return rng.uniform(-0.05, 0.05, DIM).astype(np.float32)

    return PipelinedCache(
        config, store, coordinator, dim=DIM,
        initializer=initializer, optimizer=optimizer,
    )


def _key_stream(batch_size: int, iterations: int, num_keys: int):
    """Deterministic batches with duplicate keys (realistic pushes)."""
    rng = np.random.default_rng(29)
    return [
        rng.integers(0, num_keys, size=batch_size, dtype=np.uint64)
        for __ in range(iterations)
    ]


def _grad_stream(batch_size: int, iterations: int):
    rng = np.random.default_rng(31)
    return [
        rng.standard_normal((batch_size, DIM)).astype(np.float32)
        for __ in range(iterations)
    ]


def _run_loop(cache: PipelinedCache, batches, grads, num_keys: int) -> float:
    """Warm the working set, then time the steady-state hot loop."""
    all_keys = list(range(num_keys))
    cache.pull(all_keys, 0)
    cache.maintain(0)
    cache.update(
        all_keys, np.zeros((num_keys, DIM), dtype=np.float32), 0
    )
    start = time.perf_counter()
    for i, (keys, grad) in enumerate(zip(batches, grads), start=1):
        cache.pull(keys, i)
        cache.maintain(i)
        cache.update(keys, grad, i)
    return time.perf_counter() - start


def _final_state(cache: PipelinedCache, num_keys: int) -> bytes:
    """Packed weights+optimizer-state of every key, concatenated."""
    cache.flush_all()
    rows = []
    for key in range(num_keys):
        __, stored = cache.store.read_latest(key)
        rows.append(stored)
    return np.concatenate(rows).tobytes()


def microbench(
    batch_sizes=BATCH_SIZES,
    iterations=ITERATIONS,
    num_keys=NUM_KEYS,
    repeats=REPEATS,
):
    """Per batch size: (dict_seconds, arena_seconds, bitwise_equal).

    Each configuration runs ``repeats`` times on a fresh cache with the
    two paths interleaved, and the best time is kept (standard
    ``timeit`` practice: the minimum is the measurement least disturbed
    by scheduler and frequency noise). The byte-comparison uses the
    first repeat's final state.
    """
    results = {}
    for batch_size in batch_sizes:
        batches = _key_stream(batch_size, iterations, num_keys)
        grads = _grad_stream(batch_size, iterations)
        times: dict[bool, list[float]] = {False: [], True: []}
        states: dict[bool, bytes] = {}
        for rep in range(repeats):
            for arena in (False, True):
                cache = _make_cache(arena=arena, num_keys=num_keys)
                times[arena].append(_run_loop(cache, batches, grads, num_keys))
                if rep == 0:
                    states[arena] = _final_state(cache, num_keys)
        equal = states[False] == states[True]
        results[batch_size] = (min(times[False]), min(times[True]), equal)
    return results


# --- transport equivalence half ------------------------------------------


def _backend(kind: str, arena: bool, fault_rate: float = 0.0):
    server = ServerConfig(
        num_nodes=2, embedding_dim=8, pmem_capacity_bytes=1 << 24, seed=17
    )
    cache = CacheConfig(capacity_bytes=64 * 16 * 4 * 2, arena=arena)
    optimizer = PSAdagrad(lr=0.05)
    if kind == "local":
        return OpenEmbeddingServer(server, cache, optimizer)
    faults = retry = None
    if fault_rate > 0.0:
        faults = NetworkFaultConfig(
            drop_rate=fault_rate,
            duplicate_rate=fault_rate / 2,
            corrupt_rate=fault_rate / 2,
            seed=17,
        )
        retry = RetryConfig(
            max_attempts=12, attempt_timeout_s=0.05, call_timeout_s=30.0, seed=17
        )
    return RemotePSClient(server, cache, optimizer, faults=faults, retry=retry)


def _train_backend(backend, batches=30):
    rng = np.random.default_rng(41)
    dim = 8
    for batch_id in range(batches):
        keys = rng.integers(0, 200, size=48).tolist()
        backend.pull(keys, batch_id)
        backend.maintain(batch_id)
        grads = rng.standard_normal((len(keys), dim)).astype(np.float32)
        backend.push(keys, grads, batch_id)
    return backend.state_snapshot()


def transport_equivalence(batches=30):
    """(label, identical?, faults_injected) per transport vs reference."""
    reference = _train_backend(_backend("local", arena=False), batches)
    rows = []
    for label, kind, arena, fault_rate in (
        ("local arena", "local", True, 0.0),
        ("remote arena clean wire", "remote", True, 0.0),
        ("remote arena faulty wire", "remote", True, 0.04),
    ):
        backend = _backend(kind, arena, fault_rate)
        state = _train_backend(backend, batches)
        identical = set(state) == set(reference) and all(
            np.array_equal(state[k], reference[k]) for k in reference
        )
        injected = (
            backend.reliability().faults_injected if fault_rate > 0.0 else 0
        )
        rows.append((label, identical, injected))
    return rows


# --- reporting / entry points --------------------------------------------


def _report_lines(micro, transports) -> list[str]:
    lines = [
        "bench_hotpath: arena-vectorized vs per-key dict hot path",
        f"dim={DIM} adagrad, {NUM_KEYS} resident keys, "
        f"{ITERATIONS} steady-state iterations per batch size, "
        f"best of {REPEATS} interleaved repeats",
        "",
        f"{'batch':>6}  {'dict path':>10}  {'arena path':>10}  "
        f"{'speedup':>8}  {'bitwise':>8}",
    ]
    for batch_size, (t_legacy, t_fast, equal) in sorted(micro.items()):
        lines.append(
            f"{batch_size:>6}  {t_legacy * 1e3:>8.1f}ms  {t_fast * 1e3:>8.1f}ms  "
            f"{t_legacy / t_fast:>7.1f}x  {'equal' if equal else 'DIVERGED':>8}"
        )
    lines.append("")
    lines.append(
        f"acceptance: >= {ACCEPT_SPEEDUP:.0f}x at batch >= {ACCEPT_BATCH} "
        "with bitwise-equal final weights+optimizer state"
    )
    lines.append("")
    lines.append("transport equivalence vs in-process reference path:")
    for label, identical, injected in transports:
        note = f"  ({injected} wire faults injected)" if injected else ""
        lines.append(
            f"  {label:<26} {'identical' if identical else 'DIVERGED'}{note}"
        )
    return lines


def full() -> int:
    micro = microbench()
    transports = transport_equivalence()
    lines = _report_lines(micro, transports)
    print("\n".join(lines))
    out = _ROOT / "benchmarks" / "results" / "bench_hotpath.txt"
    out.write_text("\n".join(lines) + "\n")
    print(f"\nwrote {out}")
    failures = 0
    for batch_size, (t_legacy, t_fast, equal) in micro.items():
        if not equal:
            print(f"FAIL: batch {batch_size} diverged")
            failures += 1
        if batch_size >= ACCEPT_BATCH and t_legacy / t_fast < ACCEPT_SPEEDUP:
            print(
                f"FAIL: batch {batch_size} speedup "
                f"{t_legacy / t_fast:.1f}x below {ACCEPT_SPEEDUP:.0f}x floor"
            )
            failures += 1
    for label, identical, __ in transports:
        if not identical:
            print(f"FAIL: {label} diverged")
            failures += 1
    return 1 if failures else 0


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if not metrics["bitwise_equal"]:
        failures.append("arena path diverged from the dict path")
    if not metrics["transports_identical"]:
        failures.append("a transport diverged from the in-process reference")
    if params["batch_size"] >= ACCEPT_BATCH:
        if metrics["speedup"] < ACCEPT_SPEEDUP:
            failures.append(
                f"speedup {metrics['speedup']:.1f}x below the "
                f"{ACCEPT_SPEEDUP:.0f}x floor at batch {params['batch_size']}"
            )
    elif metrics["speedup"] < 1.0:
        failures.append("vectorized path slower than the dict path")
    return failures


@register(
    "hotpath",
    params=[
        Param("batch_size", "int", ACCEPT_BATCH),
        Param("iterations", "int", ITERATIONS),
        Param("num_keys", "int", NUM_KEYS),
        Param("repeats", "int", REPEATS, help="best-of wall-clock repeats"),
        Param("transport_batches", "int", 30),
    ],
    smoke={
        "batch_size": 1024,
        "iterations": 8,
        "num_keys": 2048,
        "repeats": 2,
        "transport_batches": 12,
    },
    headline={
        # Wall-clock: gate loosely with a noise floor; the booleans are
        # the deterministic truth the gate really guards.
        "speedup": Headline(direction="higher", max_regression=0.60, noise=0.5),
        "bitwise_equal": Headline(),
        "transports_identical": Headline(),
    },
    check=_check,
)
def entry(*, batch_size, iterations, num_keys, repeats, transport_batches):
    """Arena-vs-dict hot-path speedup at one batch size, with bitwise
    state equality and cross-transport equivalence."""
    micro = microbench(
        batch_sizes=(batch_size,),
        iterations=iterations,
        num_keys=num_keys,
        repeats=repeats,
    )
    t_legacy, t_fast, equal = micro[batch_size]
    transports = transport_equivalence(batches=transport_batches)
    return {
        "speedup": t_legacy / t_fast,
        "dict_ms": t_legacy * 1e3,
        "arena_ms": t_fast * 1e3,
        "bitwise_equal": equal,
        "transports_identical": all(identical for __, identical, __ in transports),
        "faults_injected": sum(injected for *__, injected in transports),
    }


if __name__ == "__main__":
    if not sys.argv[1:]:
        # Bare invocation keeps the historical full report + txt artifact.
        raise SystemExit(full())
    from repro.bench.shim import main

    raise SystemExit(main("hotpath"))
