"""A unified, labeled, mergeable metrics registry.

The existing stat bundles (:class:`~repro.simulation.metrics.CacheStats`,
``RpcReliabilityStats``, ``PrefetchStats`` and the plain ``Metrics``
ints) each tell one layer's story. A :class:`MetricsRegistry` unifies
them under *named metrics with label sets* — the per-PS-node cluster
view the paper's evaluation needs, and the shape the exporters
(:mod:`repro.obs.exporters`) serialize.

Three metric kinds:

* :class:`Counter` — monotone accumulator; merge = sum.
* :class:`Gauge` — last-written value; merge = last writer wins.
* :class:`~repro.obs.histogram.Histogram` — log-bucketed distribution;
  merge = exact bucket-wise sum.

:func:`collect_bundle` hoists one node's :class:`Metrics` bundle into
labeled registry counters (call it once per node at snapshot time, with
``labels={"node": str(i)}`` for the cluster path). Two registries merge
metric-by-metric on (name, labels), so per-node registries roll up into
a cluster view without losing the per-node series.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.obs.histogram import Histogram

LabelSet = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotone named counter (float-valued for seconds totals)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def add(self, n: float = 1.0) -> None:
        if n < 0:
            raise ConfigError(f"counter {self.name!r} cannot decrease (add {n})")
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A point-in-time value; merging keeps the other's if it was set."""

    __slots__ = ("name", "value", "_set")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0
        self._set = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self._set = True

    def merge(self, other: "Gauge") -> None:
        if other._set:
            self.value = other.value
            self._set = True

    def reset(self) -> None:
        self.value = 0.0
        self._set = False


class MetricsRegistry:
    """Named metrics, each a family of label-set instances.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the same
    (name, labels) always returns the same object, so call sites can
    re-fetch instead of holding references. A name is bound to exactly
    one metric kind; mixing kinds raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelSet], object] = {}
        self._kinds: dict[str, type] = {}

    # ------------------------------------------------------------------
    # get-or-create
    # ------------------------------------------------------------------

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(
        self, name: str, labels: dict[str, str] | None = None, unit: str = "seconds"
    ) -> Histogram:
        metric = self._get(name, labels, Histogram)
        if unit != "seconds" and metric.unit == "seconds" and metric.count == 0:
            metric.unit = unit
        return metric

    def _get(self, name: str, labels: dict[str, str] | None, kind: type):
        if not name:
            raise ConfigError("metric name must be non-empty")
        bound = self._kinds.get(name)
        if bound is not None and bound is not kind:
            raise ConfigError(
                f"metric {name!r} already registered as {bound.__name__}, "
                f"not {kind.__name__}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(name)
            self._metrics[key] = metric
            self._kinds[name] = kind
        return metric

    # ------------------------------------------------------------------
    # iteration / algebra
    # ------------------------------------------------------------------

    def items(self) -> list[tuple[str, dict[str, str], object]]:
        """``(name, labels, metric)`` triples, name-then-label ordered."""
        out = []
        for (name, label_key), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            out.append((name, dict(label_key), metric))
        return out

    def find(self, name: str, labels: dict[str, str] | None = None):
        """The metric at (name, labels), or None."""
        return self._metrics.get((name, _label_key(labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry metric-by-metric.

        Same (name, labels) instances merge by kind (counters sum,
        histograms add buckets, gauges last-writer-wins); label sets
        present only in ``other`` are copied in — this is how per-node
        registries roll up into the cluster registry.
        """
        for name, labels, metric in other.items():
            kind = type(metric)
            mine = self._get(name, labels, kind)
            mine.merge(metric)

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset()


# ----------------------------------------------------------------------
# bundle -> registry bridge
# ----------------------------------------------------------------------

#: (metric name, attribute path) pairs hoisted by :func:`collect_bundle`.
_BUNDLE_COUNTERS: tuple[tuple[str, str], ...] = (
    ("repro_pulls_total", "pulls"),
    ("repro_updates_total", "updates"),
    ("repro_entries_created_total", "entries_created"),
    ("repro_checkpoints_completed_total", "checkpoints_completed"),
    ("repro_pmem_flush_entries_total", "pmem_flush_entries"),
    ("repro_pmem_load_entries_total", "pmem_load_entries"),
    ("repro_cache_hits_total", "cache.hits"),
    ("repro_cache_misses_total", "cache.misses"),
    ("repro_cache_evictions_total", "cache.evictions"),
    ("repro_cache_flushes_total", "cache.flushes"),
    ("repro_cache_loads_total", "cache.loads"),
    ("repro_rpc_retries_total", "rpc.retries"),
    ("repro_rpc_timeouts_total", "rpc.timeouts"),
    ("repro_rpc_wire_errors_total", "rpc.wire_errors"),
    ("repro_rpc_dup_suppressed_total", "rpc.dup_suppressed"),
    ("repro_rpc_backoff_seconds_total", "rpc.backoff_seconds"),
    ("repro_rpc_faults_injected_total", "rpc.faults_injected"),
    ("repro_prefetch_demand_keys_total", "prefetch.demand_keys"),
    ("repro_prefetch_buffer_hits_total", "prefetch.buffer_hits"),
    ("repro_prefetch_keys_total", "prefetch.prefetch_keys"),
    ("repro_prefetch_patched_keys_total", "prefetch.patched_keys"),
    ("repro_prefetch_invalidated_keys_total", "prefetch.invalidated_keys"),
    ("repro_prefetch_deduped_keys_total", "prefetch.deduped_keys"),
    ("repro_prefetch_batches_total", "prefetch.batches"),
    ("repro_prefetch_overlap_hidden_seconds_total", "prefetch.overlap_hidden_seconds"),
    ("repro_serving_lookups_total", "serving_lookups"),
    ("repro_serving_rows_total", "serving_rows"),
    ("repro_serving_cold_rows_total", "serving_cold_rows"),
)


def collect_bundle(
    registry: MetricsRegistry, bundle, labels: dict[str, str] | None = None
) -> None:
    """Hoist one :class:`~repro.simulation.metrics.Metrics` bundle.

    Adds the bundle's counters into labeled registry counters and sets
    the derived ``repro_cache_miss_rate`` gauge. Call once per bundle
    per snapshot (counters accumulate); for a cluster, label each node
    (``{"node": "0"}``, ...).
    """
    for metric_name, path in _BUNDLE_COUNTERS:
        obj = bundle
        for part in path.split("."):
            obj = getattr(obj, part)
        if obj:
            registry.counter(metric_name, labels).add(obj)
    registry.gauge("repro_cache_miss_rate", labels).set(bundle.cache.miss_rate)
