"""Figure 10: workload fitting and distribution adjustment.

Sorts features by access frequency, fits the exponential-decay model
``freq = a * exp(-b * rank/N)`` (the paper's fit), and generates the
more-/less-skewed variants used by Figure 11, keeping total accesses
fixed while the decay rate changes.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once
from repro.bench import Headline, Param, register
from repro.simulation.profiles import DEFAULT_PROFILE
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import AccessTraceAnalyzer

SKEWS = {"less skew": 0.85, "original": 1.0, "more skew": 1.15}


def test_fig10_distribution_fit(benchmark, report):
    profile = DEFAULT_PROFILE

    def run():
        fits = {}
        for name, temperature in SKEWS.items():
            generator = WorkloadGenerator(profile.workload_config(temperature))
            stream = generator.access_stream(num_batches=150, batch_size=256)
            analyzer = AccessTraceAnalyzer(stream)
            a, b = analyzer.fit_exponential()
            fits[name] = (a, b, analyzer.total_accesses)
        return fits

    fits = run_once(benchmark, run)
    report.title(
        "fig10_distribution",
        "Figure 10: exponential fit freq = a*exp(-b*rank/N) per skew variant",
    )
    for name, (a, b, total) in fits.items():
        report.row(
            name,
            "exp decay",
            f"a={a:9.1f} b={b:6.1f}",
            note=f"({total} accesses)",
        )

    # Total access volume is held constant across variants (the paper
    # adjusts the distribution "while keeping the total amount of
    # accesses the same").
    totals = {total for *_, total in fits.values()}
    assert len(totals) == 1
    # More skew -> faster decay (larger b).
    assert fits["more skew"][1] > fits["original"][1] > fits["less skew"][1]
    # The head dominates: fitted a (head frequency) far exceeds the tail.
    assert fits["original"][0] > 50


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if metrics["fit_a"] <= 50:
        failures.append("fitted head frequency too small — skew fit collapsed")
    if metrics["fit_b"] <= 0:
        failures.append("fitted decay rate must be positive")
    return failures


@register(
    "fig10_distribution",
    params=[
        Param("skew", "float", 1.0, help="skew temperature (1.0 = original)"),
        Param("batches", "int", 150),
        Param("batch_size", "int", 256),
    ],
    smoke={"batches": 60},
    headline={
        "fit_a": Headline(direction="higher", max_regression=0.10),
        "fit_b": Headline(direction="higher", max_regression=0.10),
    },
    check=_check,
)
def entry(*, skew, batches, batch_size):
    """Exponential-decay fit ``freq = a * exp(-b * rank/N)`` of the
    access distribution at one skew temperature."""
    generator = WorkloadGenerator(DEFAULT_PROFILE.workload_config(skew))
    stream = generator.access_stream(num_batches=batches, batch_size=batch_size)
    analyzer = AccessTraceAnalyzer(stream)
    a, b = analyzer.fit_exponential()
    return {"fit_a": a, "fit_b": b, "total_accesses": analyzer.total_accesses}


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig10_distribution"))
