"""Extension: expected epoch completion time under failures.

The paper evaluates checkpoint overhead (Fig. 12/13) and recovery time
(Fig. 14) separately. This bench composes them into the quantity an
operator actually cares about — expected wall time to finish one epoch
on a fleet with a given MTTF:

    E[total] = epoch_with_checkpoints
             + E[#failures] * (E[lost work] + recovery time)

using this repo's measured epoch times (20-min-equivalent checkpoints)
and each system's recovery model at paper scale, scaled into the
simulated epoch. PMem-OE wins on all three terms at once: cheaper
checkpoints, same lost work, and ~4x faster recovery.
"""

from benchmarks.conftest import run_once, simulate_epoch
from repro.config import CheckpointConfig, CheckpointMode
from repro.core.recovery import (
    estimate_dram_ps_recovery_seconds,
    estimate_recovery_seconds,
)
from repro.failure.mttf import expected_lost_work_seconds
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE, PAPER_EPOCH_HOURS
from repro.simulation.trainer_sim import TrainingSimulator

PAPER_ENTRIES = 2_100_000_000
ENTRY_BYTES = 256
MTTF_HOURS = 12.0


def test_ablation_reliability_composite(benchmark, report):
    def run():
        iters = DEFAULT_PROFILE.iterations(16)
        base = simulate_epoch(SystemKind.PMEM_OE, 16, iterations=iters)
        interval = TrainingSimulator.interval_for_epoch_fraction(
            base.sim_seconds, 20, PAPER_EPOCH_HOURS
        )
        oe = simulate_epoch(
            SystemKind.PMEM_OE, 16, iterations=iters,
            checkpoint=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval),
        ).sim_seconds
        dram = simulate_epoch(
            SystemKind.DRAM_PS, 16, iterations=iters,
            checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
        ).sim_seconds

        # Scale paper-scale recovery and MTTF into the simulated epoch:
        # one simulated epoch stands for PAPER_EPOCH_HOURS of wall time.
        scale = base.sim_seconds / (PAPER_EPOCH_HOURS * 3600)
        recovery = {
            "PMem-OE": estimate_recovery_seconds(
                entries=PAPER_ENTRIES, versions=PAPER_ENTRIES,
                entry_bytes=ENTRY_BYTES,
            ) * scale,
            "DRAM-PS": estimate_dram_ps_recovery_seconds(
                entries=PAPER_ENTRIES, entry_bytes=ENTRY_BYTES,
                checkpoint_device="pmem",
            ) * scale,
        }
        mttf = MTTF_HOURS * 3600 * scale
        failures_per_epoch = {
            "PMem-OE": oe / mttf,
            "DRAM-PS": dram / mttf,
        }
        lost = expected_lost_work_seconds(interval, mttf)
        totals = {
            "PMem-OE": oe + failures_per_epoch["PMem-OE"] * (lost + recovery["PMem-OE"]),
            "DRAM-PS": dram
            + failures_per_epoch["DRAM-PS"] * (lost + recovery["DRAM-PS"]),
        }
        return {
            "epochs": {"PMem-OE": oe, "DRAM-PS": dram},
            "recovery": recovery,
            "lost": lost,
            "totals": totals,
        }

    data = run_once(benchmark, run)
    report.title(
        "ablation_reliability",
        f"Extension: expected epoch completion, MTTF {MTTF_HOURS:.0f} h "
        "(simulated-epoch units)",
    )
    for name in ("PMem-OE", "DRAM-PS"):
        report.row(
            f"{name} epoch w/ checkpoints", "-", f"{data['epochs'][name]:.2f} s"
        )
        report.row(
            f"{name} recovery (scaled)", "-", f"{data['recovery'][name]:.3f} s"
        )
        report.row(
            f"{name} expected total", "-", f"{data['totals'][name]:.2f} s"
        )
    advantage = 1 - data["totals"]["PMem-OE"] / data["totals"]["DRAM-PS"]
    report.line()
    report.row(
        "PMem-OE end-to-end advantage",
        "> its checkpoint-only win",
        f"{advantage:.1%}",
    )

    # PMem-OE's composite advantage must meet or beat its
    # checkpoint-only advantage: recovery can only widen the gap.
    ckpt_only = 1 - data["epochs"]["PMem-OE"] / data["epochs"]["DRAM-PS"]
    assert data["recovery"]["PMem-OE"] < data["recovery"]["DRAM-PS"]
    assert advantage >= ckpt_only - 1e-6
