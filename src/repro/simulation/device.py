"""Memory/storage device models with Table I characteristics.

The paper's Table I compares DRAM, Optane PMem and flash SSD:

==========  ==================  =================
Device      Bandwidth R/W GB/s  Latency R/W ns
==========  ==================  =================
DRAM        115 / 79            81 / 86
PMem        39 / 14             305 / 94
Flash SSD   2~3 / 1~2           >10000
==========  ==================  =================

A :class:`MemoryDevice` charges simulated time for byte-granular reads
and writes: ``latency + bytes / bandwidth``, with bandwidth shared when
multiple streams access the device concurrently. It also keeps byte/op
counters so benchmarks can report effective throughput (Table I bench).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError

GB = 1 << 30


@dataclass(frozen=True)
class DeviceSpec:
    """Static performance characteristics of a memory/storage device.

    Attributes:
        name: human-readable device name.
        read_bw: sequential read bandwidth, bytes per second.
        write_bw: sequential write bandwidth, bytes per second.
        read_latency: per-operation read latency, seconds.
        write_latency: per-operation write latency, seconds.
        cost_per_gb: hardware cost in dollars per GB (used by the cost
            model; approximate cloud-era street prices).
    """

    name: str
    read_bw: float
    write_bw: float
    read_latency: float
    write_latency: float
    cost_per_gb: float = 0.0

    def __post_init__(self) -> None:
        if self.read_bw <= 0 or self.write_bw <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")
        if self.read_latency < 0 or self.write_latency < 0:
            raise ConfigError(f"{self.name}: latency must be non-negative")

    def read_time(self, nbytes: int, streams: int = 1) -> float:
        """Seconds to read ``nbytes`` with ``streams`` concurrent readers.

        Bandwidth is divided among streams; latency is paid once per
        operation regardless of concurrency.
        """
        _check_op(nbytes, streams)
        return self.read_latency + nbytes / (self.read_bw / streams)

    def write_time(self, nbytes: int, streams: int = 1) -> float:
        """Seconds to write ``nbytes`` with ``streams`` concurrent writers."""
        _check_op(nbytes, streams)
        return self.write_latency + nbytes / (self.write_bw / streams)

    def burst_read_time(self, ops: int, bytes_per_op: int, threads: int) -> float:
        """Seconds to serve ``ops`` small reads issued as one burst.

        ``threads`` device-side threads issue operations in parallel, so
        per-op latency overlaps across threads while total bytes are
        bound by device bandwidth — the burst completes at
        ``max(latency-bound, bandwidth-bound)`` time. This models the
        paper's batch-boundary I/O bursts (Figure 2).
        """
        _check_burst(ops, bytes_per_op, threads)
        if ops == 0:
            return 0.0
        latency_bound = -(-ops // threads) * self.read_latency
        bandwidth_bound = ops * bytes_per_op / self.read_bw
        return max(latency_bound, bandwidth_bound)

    def burst_write_time(self, ops: int, bytes_per_op: int, threads: int) -> float:
        """Write-side analogue of :meth:`burst_read_time`."""
        _check_burst(ops, bytes_per_op, threads)
        if ops == 0:
            return 0.0
        latency_bound = -(-ops // threads) * self.write_latency
        bandwidth_bound = ops * bytes_per_op / self.write_bw
        return max(latency_bound, bandwidth_bound)


def _check_op(nbytes: int, streams: int) -> None:
    if nbytes < 0:
        raise SimulationError(f"negative transfer size {nbytes}")
    if streams < 1:
        raise SimulationError(f"streams must be >= 1, got {streams}")


def _check_burst(ops: int, bytes_per_op: int, threads: int) -> None:
    if ops < 0:
        raise SimulationError(f"negative op count {ops}")
    if bytes_per_op < 0:
        raise SimulationError(f"negative bytes_per_op {bytes_per_op}")
    if threads < 1:
        raise SimulationError(f"threads must be >= 1, got {threads}")


#: Table I row 1. Cost from large-DIMM server DRAM pricing.
DRAM_SPEC = DeviceSpec(
    name="DRAM",
    read_bw=115 * GB,
    write_bw=79 * GB,
    read_latency=81e-9,
    write_latency=86e-9,
    cost_per_gb=7.0,
)

#: Table I row 2. Optane PMem 100-series; roughly 40% of DRAM's $/GB.
PMEM_SPEC = DeviceSpec(
    name="PMem",
    read_bw=39 * GB,
    write_bw=14 * GB,
    read_latency=305e-9,
    write_latency=94e-9,
    cost_per_gb=2.8,
)

#: Table I row 3. Midpoints of the paper's ranges; latency ">10000 ns"
#: modelled as a typical NVMe flash read latency of ~90 us.
SSD_SPEC = DeviceSpec(
    name="Flash SSD",
    read_bw=2.5 * GB,
    write_bw=1.5 * GB,
    read_latency=90e-6,
    write_latency=30e-6,
    cost_per_gb=0.25,
)


class MemoryDevice:
    """A stateful device: a spec plus cumulative traffic counters.

    Components charge operations here so benchmarks can report both the
    simulated time and the effective throughput each device sustained.
    """

    def __init__(self, spec: DeviceSpec, capacity_bytes: int | None = None):
        self.spec = spec
        self.capacity_bytes = capacity_bytes
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0
        self.busy_seconds = 0.0

    def read(self, nbytes: int, streams: int = 1) -> float:
        """Charge a read; returns the simulated seconds it took."""
        elapsed = self.spec.read_time(nbytes, streams)
        self.bytes_read += nbytes
        self.read_ops += 1
        self.busy_seconds += elapsed
        return elapsed

    def write(self, nbytes: int, streams: int = 1) -> float:
        """Charge a write; returns the simulated seconds it took."""
        elapsed = self.spec.write_time(nbytes, streams)
        self.bytes_written += nbytes
        self.write_ops += 1
        self.busy_seconds += elapsed
        return elapsed

    def burst_read(self, ops: int, bytes_per_op: int, threads: int) -> float:
        """Charge a burst of small reads (see :meth:`DeviceSpec.burst_read_time`)."""
        elapsed = self.spec.burst_read_time(ops, bytes_per_op, threads)
        self.bytes_read += ops * bytes_per_op
        self.read_ops += ops
        self.busy_seconds += elapsed
        return elapsed

    def burst_write(self, ops: int, bytes_per_op: int, threads: int) -> float:
        """Charge a burst of small writes."""
        elapsed = self.spec.burst_write_time(ops, bytes_per_op, threads)
        self.bytes_written += ops * bytes_per_op
        self.write_ops += ops
        self.busy_seconds += elapsed
        return elapsed

    def effective_read_bw(self) -> float:
        """Average achieved read bandwidth over all charged reads, B/s."""
        if self.busy_seconds == 0:
            return 0.0
        return self.bytes_read / self.busy_seconds

    def reset_counters(self) -> None:
        """Zero the traffic counters (capacity is untouched)."""
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0
        self.busy_seconds = 0.0

    def __repr__(self) -> str:
        return (
            f"MemoryDevice({self.spec.name}, read={self.bytes_read}B, "
            f"written={self.bytes_written}B)"
        )
