"""PSNode: pull/maintain/push lifecycle, determinism, crash handoff."""

import numpy as np
import pytest

from repro.core.optimizers import PSAdagrad
from repro.errors import CheckpointError

from tests.conftest import DIM, make_node


def grads(n, value=1.0):
    return np.full((n, DIM), value, dtype=np.float32)


class TestLifecycle:
    def test_pull_maintain_push(self, node):
        result = node.pull([1, 2], 0)
        assert result.created == 2
        node.maintain(0)
        assert node.push([1, 2], grads(2), 0) == 2
        assert node.latest_completed_batch == 0

    def test_num_entries(self, node):
        node.pull([1, 2, 3], 0)
        assert node.num_entries == 3

    def test_state_snapshot(self, node):
        node.pull([1, 2], 0)
        node.maintain(0)
        snapshot = node.state_snapshot()
        assert set(snapshot) == {1, 2}

    def test_initializer_is_key_deterministic(self):
        """Initial weights depend only on (seed, key), never on order."""
        a = make_node(seed=3)
        b = make_node(seed=3)
        a.pull([5, 9], 0)
        b.pull([9], 0)
        b.pull([5], 1)
        assert np.array_equal(a.read_weights(5), b.read_weights(5))
        assert np.array_equal(a.read_weights(9), b.read_weights(9))

    def test_different_seeds_differ(self):
        a = make_node(seed=1)
        b = make_node(seed=2)
        a.pull([5], 0)
        b.pull([5], 0)
        assert not np.array_equal(a.read_weights(5), b.read_weights(5))


class TestOptimizerState:
    def test_adagrad_state_survives_eviction(self):
        node = make_node(capacity_entries=1, optimizer=PSAdagrad(lr=0.1))
        node.pull([1], 0)
        node.maintain(0)
        node.push([1], grads(1), 0)
        after_first = np.array(node.read_weights(1), copy=True)
        # Evict key 1 by touching key 2, then update key 1 again: the
        # accumulator must have persisted, so the second step is smaller.
        node.pull([2], 1)
        node.maintain(1)
        node.push([2], grads(1), 1)
        node.pull([1], 2)
        node.maintain(2)
        node.push([1], grads(1), 2)
        first_step = np.abs(after_first - np.full(DIM, node.read_weights(1)[0]))
        entry = node.cache.index.find(1)
        assert entry.opt_state is not None
        # accumulator grew: 0.1 (init) + 1 + 1
        assert np.allclose(entry.opt_state, 2.1)


class TestCheckpointControl:
    def test_request_without_training_rejected(self, node):
        with pytest.raises(CheckpointError):
            node.request_checkpoint()

    def test_request_defaults_to_latest_batch(self, node):
        node.pull([1], 0)
        node.maintain(0)
        node.push([1], grads(1), 0)
        assert node.request_checkpoint() == 0
        assert node.coordinator.head() == 0

    def test_barrier_checkpoint_completes(self, node):
        node.pull([1], 0)
        node.maintain(0)
        node.push([1], grads(1), 0)
        node.barrier_checkpoint()
        assert node.coordinator.last_completed == 0


class TestCrash:
    def test_crash_returns_surviving_pool(self, node):
        node.pull([1], 0)
        node.maintain(0)
        node.push([1], grads(1), 0)
        node.barrier_checkpoint()
        pool = node.crash()
        assert pool is node.pool
        assert pool.root.get("checkpointed_batch_id") == 0


class TestMetadataOnly:
    def test_no_weights_anywhere(self):
        node = make_node(metadata_only=True)
        result = node.pull([1, 2], 0)
        assert result.weights is None
        node.maintain(0)
        node.push([1, 2], None, 0)
        assert node.num_entries == 2
