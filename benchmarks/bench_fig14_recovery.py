"""Figure 14: recovery-time comparison.

Paper (2.1 B entries, 500 GB model):
  DRAM-PS restoring its checkpoint from SSD:  1512.8 s
  DRAM-PS restoring its checkpoint from PMem:  751.1 s
  PMem-OE scan + index rebuild:                380.2 s  (3.97x faster)

Two parts here: (a) the analytic model evaluated at the paper's scale,
(b) an actual end-to-end crash/recover of scaled-down live systems to
show the same ordering with real data structures.
"""

import pytest

from benchmarks.conftest import run_once
from repro.baselines.dram_ps import DRAMPSNode
from repro.config import CacheConfig, ServerConfig
from repro.core.ps_node import PSNode
from repro.core.recovery import (
    estimate_dram_ps_recovery_seconds,
    estimate_recovery_seconds,
    recover_node,
)

PAPER = {"dram_ps_ssd": 1512.8, "dram_ps_pmem": 751.08, "pmem_oe": 380.2}
ENTRIES = 2_100_000_000
ENTRY_BYTES = 256


def live_recovery_demo():
    """Crash scaled-down live systems; return their recovery reports."""
    import numpy as np

    server_config = ServerConfig(
        embedding_dim=16, pmem_capacity_bytes=1 << 26, seed=1
    )
    cache_config = CacheConfig(capacity_bytes=64 << 10)
    keys = list(range(5000))
    grads = np.full((len(keys), 16), 0.1, dtype=np.float32)

    oe = PSNode(0, server_config, cache_config)
    oe.pull(keys, 0)
    oe.maintain(0)
    oe.push(keys, grads, 0)
    oe.barrier_checkpoint()
    oe_pool = oe.crash()
    __, oe_report = recover_node(oe_pool, server_config, cache_config)

    dram = DRAMPSNode(server_config)
    dram.pull(keys, 0)
    dram.push(keys, grads, 0)
    dram.checkpoint()
    dram_pool = dram.crash()
    recovered, batch_id = DRAMPSNode.recover(dram_pool, server_config)
    return oe_report, recovered.num_entries, batch_id


def test_fig14_recovery_time(benchmark, report):
    def run():
        analytic = {
            "dram_ps_ssd": estimate_dram_ps_recovery_seconds(
                entries=ENTRIES, entry_bytes=ENTRY_BYTES, checkpoint_device="ssd"
            ),
            "dram_ps_pmem": estimate_dram_ps_recovery_seconds(
                entries=ENTRIES, entry_bytes=ENTRY_BYTES, checkpoint_device="pmem"
            ),
            "pmem_oe": estimate_recovery_seconds(
                entries=ENTRIES, versions=ENTRIES, entry_bytes=ENTRY_BYTES
            ),
        }
        return analytic, live_recovery_demo()

    analytic, (oe_report, dram_entries, dram_batch) = run_once(benchmark, run)
    report.title("fig14_recovery", "Figure 14: recovery time (paper scale, seconds)")
    labels = {
        "dram_ps_ssd": "DRAM-PS, checkpoint on SSD",
        "dram_ps_pmem": "DRAM-PS, checkpoint on PMem",
        "pmem_oe": "PMem-OE, scan + rebuild",
    }
    for key, label in labels.items():
        report.row(label, f"{PAPER[key]:.1f}", f"{analytic[key]:.1f}")
        assert analytic[key] == pytest.approx(PAPER[key], rel=0.12)
    speedup = analytic["dram_ps_ssd"] / analytic["pmem_oe"]
    report.row("PMem-OE speedup vs SSD path", "3.97x", f"{speedup:.2f}x")
    assert speedup == pytest.approx(3.97, rel=0.15)

    report.line()
    report.line(
        f"  live demo (5000 entries): PMem-OE recovered "
        f"{oe_report.entries_recovered} entries to checkpoint "
        f"{oe_report.checkpoint_batch_id}; DRAM-PS restored "
        f"{dram_entries} entries to checkpoint {dram_batch}"
    )
    assert oe_report.entries_recovered == dram_entries == 5000
