"""Remote PS frontend: the server protocol over wire messages.

:class:`PSNodeService` wraps one :class:`~repro.core.ps_node.PSNode`
behind an :class:`~repro.network.rpc.RpcServer`; :class:`RemotePSClient`
exposes the familiar ``pull`` / ``maintain`` / ``push`` /
``request_checkpoint`` surface, but every operation round-trips through
encoded bytes on a simulated link — a faithful stand-in for the paper's
TensorFlow-operator <-> PS RPC.

``RemotePSClient`` is protocol-compatible with
:class:`~repro.core.server.OpenEmbeddingServer`, so the functional
trainer runs over it unchanged; tests assert the trained weights are
identical to the in-process path.

Fault tolerance: pass a :class:`~repro.config.NetworkFaultConfig` and
the client's channels ride a
:class:`~repro.failure.network_faults.FaultyLink` — dropped, delayed,
duplicated and corrupted frames are retried transparently. Pushes are
non-idempotent, so each carries a ``(worker_id, seq)`` header and the
service keeps a dedup window: a retried push whose first copy actually
applied is absorbed, never double-applied. Retries and dedup are
therefore *semantics-free* — trained weights are bit-identical to a
clean wire.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.config import CacheConfig, NetworkFaultConfig, RetryConfig, ServerConfig
from repro.core.cache import MaintainResult, PullResult
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSOptimizer
from repro.core.sharding import HashPartitioner
from repro.errors import ServerError
from repro.failure.network_faults import FaultyLink, LinkFaultStats
from repro.network.messages import (
    CheckpointRequest,
    MaintainRequest,
    MaintainResponse,
    PullRequest,
    PullResponse,
    PushRequest,
    StatusResponse,
)
from repro.network.rpc import RpcChannel, RpcServer
from repro.obs.registry import MetricsRegistry, collect_bundle
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.clock import SimClock
from repro.simulation.metrics import RpcReliabilityStats
from repro.simulation.network import NetworkModel

DEFAULT_DEDUP_WINDOW = 1024
"""Replayed pushes older than this many pushes are no longer absorbed."""


class PSNodeService:
    """One PS node's RPC surface.

    Args:
        node: the wrapped shard.
        dedup_window: how many recent ``(worker_id, seq)`` push
            identities to remember (and whose cached replies to
            replay). A retried push inside the window is suppressed —
            at-most-once gradient application; its original reply is
            returned verbatim.
        tracer: span sink; every handler invocation becomes a
            ``ps.pull`` / ``ps.push`` / ``ps.maintain`` /
            ``ps.checkpoint`` span carrying its request counts.
    """

    def __init__(
        self,
        node: PSNode,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
        tracer: Tracer | None = None,
    ):
        if dedup_window < 1:
            raise ServerError(f"dedup_window must be >= 1, got {dedup_window}")
        self.node = node
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.dedup_window = dedup_window
        self.dup_suppressed = 0
        self._push_replies: OrderedDict[tuple[int, int], StatusResponse] = (
            OrderedDict()
        )
        self._maintain_replies: OrderedDict[int, MaintainResponse] = OrderedDict()
        self._checkpoint_replies: OrderedDict[int, StatusResponse] = OrderedDict()
        self.server = RpcServer()
        self.server.register(PullRequest.TYPE, self._handle_pull)
        self.server.register(PushRequest.TYPE, self._handle_push)
        self.server.register(CheckpointRequest.TYPE, self._handle_checkpoint)
        self.server.register(MaintainRequest.TYPE, self._handle_maintain)

    def _handle_pull(self, request: PullRequest) -> PullResponse:
        with self.tracer.span(
            "ps.pull", node=self.node.node_id, keys=len(request.keys)
        ) as span:
            result = self.node.pull(
                [int(k) for k in request.keys], int(request.batch_id)
            )
            if result.weights is None:
                raise ServerError("remote pull requires a value-mode node")
            span.set(hits=result.hits, misses=result.misses, created=result.created)
            return PullResponse(
                batch_id=request.batch_id,
                weights=result.weights,
                hits=result.hits,
                misses=result.misses,
                created=result.created,
            )

    def _handle_push(self, request: PushRequest) -> StatusResponse:
        with self.tracer.span(
            "ps.push", node=self.node.node_id, keys=len(request.keys)
        ) as span:
            dedup_key = request.dedup_key
            if dedup_key is not None:
                cached = self._push_replies.get(dedup_key)
                if cached is not None:
                    self.dup_suppressed += 1
                    self.node.metrics.rpc.dup_suppressed += 1
                    span.set(dup_suppressed=True)
                    return cached
            updated = self.node.push(
                [int(k) for k in request.keys], request.grads, int(request.batch_id)
            )
            span.set(updated=updated)
            response = StatusResponse(code=StatusResponse.OK, value=updated)
            if dedup_key is not None:
                self._push_replies[dedup_key] = response
                while len(self._push_replies) > self.dedup_window:
                    self._push_replies.popitem(last=False)
            return response

    def _handle_checkpoint(self, request: CheckpointRequest) -> StatusResponse:
        """Queue a batch-aware checkpoint; idempotent per batch id.

        ``request_checkpoint`` rejects re-queuing the same batch, so a
        duplicated or retried request frame replays the cached OK
        instead of surfacing a spurious ``CheckpointError`` to a client
        whose first copy already landed.
        """
        batch_id = int(request.batch_id)
        with self.tracer.span(
            "ps.checkpoint", node=self.node.node_id, batch=batch_id
        ) as span:
            cached = self._checkpoint_replies.get(batch_id)
            if cached is not None:
                self.dup_suppressed += 1
                self.node.metrics.rpc.dup_suppressed += 1
                span.set(dup_suppressed=True)
                return cached
            self.node.request_checkpoint(batch_id)
            response = StatusResponse(code=StatusResponse.OK, value=batch_id)
            self._checkpoint_replies[batch_id] = response
            while len(self._checkpoint_replies) > self.dedup_window:
                self._checkpoint_replies.popitem(last=False)
            return response

    def _handle_maintain(self, request: MaintainRequest) -> MaintainResponse:
        """Run the deferred maintenance round for one batch.

        Maintenance is state-idempotent — a retried trigger (first reply
        lost on the wire) pops an already-drained access queue and does
        no work — but its *counters* are not: the retry would report
        zeros. So the last few rounds' replies are cached per batch id
        and replayed when a re-trigger finds nothing to do, keeping the
        client's maintenance accounting exact under retries.
        """
        batch_id = int(request.batch_id)
        with self.tracer.span(
            "ps.maintain", node=self.node.node_id, batch=batch_id
        ) as span:
            result = self.node.maintain(batch_id)
            span.set(processed=result.processed, flushes=result.flushes)
            if result.processed == 0 and batch_id in self._maintain_replies:
                self.dup_suppressed += 1
                self.node.metrics.rpc.dup_suppressed += 1
                return self._maintain_replies[batch_id]
        response = MaintainResponse(
            batch_id=batch_id,
            processed=result.processed,
            loads=result.loads,
            flushes=result.flushes,
            evictions=result.evictions,
            checkpoints_completed=result.checkpoints_completed,
        )
        self._maintain_replies[batch_id] = response
        while len(self._maintain_replies) > self.dedup_window:
            self._maintain_replies.popitem(last=False)
        return response


class RemotePSClient:
    """Sharded PS access over RPC channels, one per node.

    Implements the full :class:`~repro.core.backend.PSBackend`
    protocol, drop-in for :class:`OpenEmbeddingServer`. ``maintain``
    sends a :class:`MaintainRequest` trigger per shard — the work runs
    node-side (the maintainer threads live in the PS process) but the
    round's counters travel back over the wire, so remote and
    in-process backends report identical ``list[MaintainResult]``.

    Args:
        retry: channel retry/timeout policy (defaults applied when
            None).
        faults: when given, all channels share one seeded
            :class:`FaultyLink` over ``network``.
        worker_id: this client's identity in push dedup headers.
        dedup_window: per-node service replay window.
        tracer: span sink shared by every channel (client-side
            call/attempt/backoff spans), every node service (handler
            spans) and every node's cache.
        registry: when given, channels observe per-kind RPC round-trip
            latency histograms into it.
    """

    def __init__(
        self,
        server_config: ServerConfig | None = None,
        cache_config: CacheConfig | None = None,
        optimizer: PSOptimizer | None = None,
        network: NetworkModel | None = None,
        clock: SimClock | None = None,
        retry: RetryConfig | None = None,
        faults: NetworkFaultConfig | None = None,
        worker_id: int = 0,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.server_config = server_config or ServerConfig()
        self.partitioner = HashPartitioner(self.server_config.num_nodes)
        self.clock = clock or SimClock()
        self.worker_id = worker_id
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry
        network = network or NetworkModel()
        self.link = (
            FaultyLink(network, faults)
            if faults is not None and faults.any_faults
            else network
        )
        self.nodes = [
            PSNode(
                node_id,
                self.server_config,
                cache_config,
                optimizer,
                tracer=self.tracer,
            )
            for node_id in range(self.server_config.num_nodes)
        ]
        self.services = [
            PSNodeService(node, dedup_window=dedup_window, tracer=self.tracer)
            for node in self.nodes
        ]
        self.channels = [
            RpcChannel(
                service.server,
                self.link,
                self.clock,
                retry=retry,
                channel_id=node_id,
                tracer=self.tracer,
                registry=registry,
            )
            for node_id, service in enumerate(self.services)
        ]
        self._push_seq = 0

    # ------------------------------------------------------------------
    # PS protocol over the wire
    # ------------------------------------------------------------------

    def pull(self, keys, batch_id: int) -> PullResult:
        """Pull via per-node RPC; responses gathered in request order.

        Per-shard cache statistics travel back in each
        :class:`PullResponse` and are aggregated here, so the remote
        path reports the same hit/miss/created accounting as the
        in-process server.
        """
        per_node_keys, per_node_positions = self.partitioner.split(keys)
        dim = self.server_config.embedding_dim
        out = np.empty((len(keys), dim), dtype=np.float32)
        flows = sum(1 for node_keys in per_node_keys if node_keys)
        hits = misses = created = 0
        for channel, node_keys, positions in zip(
            self.channels, per_node_keys, per_node_positions
        ):
            if not node_keys:
                continue
            response = channel.call(
                PullRequest(batch_id=batch_id, keys=np.asarray(node_keys)),
                concurrent_flows=max(1, flows),
            )
            out[positions] = response.weights
            hits += response.hits
            misses += response.misses
            created += response.created
        return PullResult(weights=out, hits=hits, misses=misses, created=created)

    def maintain(self, batch_id: int) -> list[MaintainResult]:
        """Trigger the maintenance round on every shard; one result each.

        The trigger is a real RPC (:class:`MaintainRequest`): the wire
        carries the round's counters back, so the remote backend reports
        the same per-shard :class:`MaintainResult` accounting as the
        in-process :class:`OpenEmbeddingServer` — this used to return
        ``None``, an API drift the protocol now forbids.
        """
        results: list[MaintainResult] = []
        for channel in self.channels:
            response = channel.call(MaintainRequest(batch_id=batch_id))
            results.append(
                MaintainResult(
                    processed=response.processed,
                    loads=response.loads,
                    flushes=response.flushes,
                    evictions=response.evictions,
                    checkpoints_completed=response.checkpoints_completed,
                )
            )
        return results

    def push(self, keys, grads: np.ndarray | None, batch_id: int) -> int:
        if grads is None:
            raise ServerError("remote push requires gradients")
        per_node_keys, per_node_positions = self.partitioner.split(keys)
        flows = sum(1 for node_keys in per_node_keys if node_keys)
        updated = 0
        for channel, node_keys, positions in zip(
            self.channels, per_node_keys, per_node_positions
        ):
            if not node_keys:
                continue
            self._push_seq += 1
            response = channel.call(
                PushRequest(
                    batch_id=batch_id,
                    keys=np.asarray(node_keys),
                    grads=grads[positions],
                    worker_id=self.worker_id,
                    seq=self._push_seq,
                ),
                concurrent_flows=max(1, flows),
            )
            if not response.ok:
                raise ServerError(f"push rejected with code {response.code}")
            updated += response.value
        return updated

    # ------------------------------------------------------------------
    # checkpoint control
    # ------------------------------------------------------------------

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        """Checkpoint every shard as of ``batch_id``.

        On an untrained cluster the derived batch id is ``-1``; the
        server rejects it with a typed
        :class:`~repro.errors.CheckpointError` through the error-coded
        response path (regression: this used to escape the dispatcher
        as a raw in-process exception).
        """
        if batch_id is None:
            batch_id = max(node.latest_completed_batch for node in self.nodes)
        for channel in self.channels:
            response = channel.call(CheckpointRequest(batch_id=batch_id))
            if not response.ok:
                raise ServerError("checkpoint request rejected")
        return batch_id

    def barrier_checkpoint(self, batch_id: int | None = None) -> int:
        """Checkpoint every shard and synchronously complete (parity
        with :meth:`OpenEmbeddingServer.barrier_checkpoint`)."""
        requested = self.request_checkpoint(batch_id)
        self.complete_pending_checkpoints()
        return requested

    def complete_pending_checkpoints(self) -> None:
        for node in self.nodes:
            node.cache.complete_pending_checkpoints()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def latest_completed_batch(self) -> int:
        """Newest batch whose updates reached every shard it touched
        (parity with the in-process server's property)."""
        return max(node.latest_completed_batch for node in self.nodes)

    @property
    def num_entries(self) -> int:
        return sum(node.num_entries for node in self.nodes)

    def state_snapshot(self) -> dict[int, np.ndarray]:
        snapshot: dict[int, np.ndarray] = {}
        for node in self.nodes:
            snapshot.update(node.state_snapshot())
        return snapshot

    def wire_bytes(self) -> int:
        """Total request+response bytes moved over all channels.

        Counts both successful and failed exchanges — a request whose
        reply was lost still crossed the wire.
        """
        return sum(channel.stats.total_bytes for channel in self.channels)

    def reliability(self) -> RpcReliabilityStats:
        """Aggregate retry/timeout/dedup counters across the client.

        Channel-side: retries, timeouts, wire errors and backoff time.
        Server-side: dedup-window suppressions. Link-side: total
        injected faults (zero on a perfect wire).
        """
        total = RpcReliabilityStats()
        for channel in self.channels:
            total.retries += channel.stats.retries
            total.timeouts += channel.stats.timeouts
            total.wire_errors += channel.stats.wire_errors
            total.backoff_seconds += channel.stats.backoff_seconds
        total.dup_suppressed = sum(
            service.dup_suppressed for service in self.services
        )
        total.faults_injected = self.fault_stats().total
        return total

    def fault_stats(self) -> LinkFaultStats:
        """Injected-fault counters (all zero when no faults configured)."""
        if isinstance(self.link, FaultyLink):
            return self.link.stats
        return LinkFaultStats()

    def collect_metrics(self, registry: MetricsRegistry) -> None:
        """Hoist per-node bundles plus client RPC totals into ``registry``.

        Mirrors :meth:`OpenEmbeddingServer.collect_metrics` — each node
        contributes under a ``node=<id>`` label — and adds the client's
        aggregated reliability counters under ``{"node": "client"}``
        (channel retries/backoff are a client-side cost, not a shard's).
        """
        for node in self.nodes:
            collect_bundle(registry, node.metrics, {"node": str(node.node_id)})
        rel = self.reliability()
        labels = {"node": "client"}
        for name, value in (
            ("repro_rpc_retries_total", rel.retries),
            ("repro_rpc_timeouts_total", rel.timeouts),
            ("repro_rpc_wire_errors_total", rel.wire_errors),
            ("repro_rpc_dup_suppressed_total", rel.dup_suppressed),
            ("repro_rpc_backoff_seconds_total", rel.backoff_seconds),
            ("repro_rpc_faults_injected_total", rel.faults_injected),
        ):
            if value:
                registry.counter(name, labels).add(value)
