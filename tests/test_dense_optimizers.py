"""Dense optimizers: SGD(+momentum) and Adam, with state round-trips."""

import numpy as np
import pytest

from repro.dlrm.optimizers import Adam, DenseSGD
from repro.errors import ConfigError


def params_and_grads():
    params = [np.ones(3, dtype=np.float32), np.zeros(2, dtype=np.float32)]
    grads = [np.full(3, 2.0, dtype=np.float32), np.full(2, -1.0, dtype=np.float32)]
    return params, grads


class TestDenseSGD:
    def test_plain_step(self):
        params, grads = params_and_grads()
        DenseSGD(lr=0.1).step(params, grads)
        assert np.allclose(params[0], 0.8)
        assert np.allclose(params[1], 0.1)

    def test_momentum_accumulates(self):
        opt = DenseSGD(lr=0.1, momentum=0.9)
        params, grads = params_and_grads()
        opt.step(params, grads)
        first = 1.0 - params[0][0]
        opt.step(params, grads)
        second = (1.0 - first) - params[0][0]
        assert second > first  # velocity builds up

    def test_state_roundtrip(self):
        opt = DenseSGD(lr=0.1, momentum=0.9)
        params, grads = params_and_grads()
        opt.step(params, grads)
        state = opt.state()
        fresh = DenseSGD(lr=0.1, momentum=0.9)
        fresh.load_state(state)
        p1, g1 = params_and_grads()
        p2, g2 = params_and_grads()
        opt.step(p1, g1)
        fresh.step(p2, g2)
        assert np.allclose(p1[0], p2[0])

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            DenseSGD().step([np.zeros(1)], [])

    def test_invalid_momentum(self):
        with pytest.raises(ConfigError):
            DenseSGD(momentum=1.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, step 1 moves ~lr regardless of grad scale."""
        opt = Adam(lr=0.01)
        params = [np.zeros(1, dtype=np.float32)]
        opt.step(params, [np.full(1, 1e3, dtype=np.float32)])
        assert abs(params[0][0]) == pytest.approx(0.01, rel=1e-3)

    def test_deterministic(self):
        a, b = Adam(lr=0.01), Adam(lr=0.01)
        p1, g1 = params_and_grads()
        p2, g2 = params_and_grads()
        for __ in range(5):
            a.step(p1, g1)
            b.step(p2, g2)
        assert np.allclose(p1[0], p2[0])

    def test_state_roundtrip_continues_identically(self):
        opt = Adam(lr=0.01)
        params, grads = params_and_grads()
        opt.step(params, grads)
        saved_params = [np.array(p, copy=True) for p in params]
        state = opt.state()
        opt.step(params, grads)
        reference = [np.array(p, copy=True) for p in params]

        fresh = Adam(lr=0.01)
        fresh.load_state(state)
        fresh.step(saved_params, grads)
        assert np.allclose(saved_params[0], reference[0])
        assert np.allclose(saved_params[1], reference[1])

    def test_state_is_deep_copy(self):
        opt = Adam()
        params, grads = params_and_grads()
        opt.step(params, grads)
        state = opt.state()
        opt.step(params, grads)
        fresh = Adam()
        fresh.load_state(state)
        assert fresh._t == 1

    def test_invalid_betas(self):
        with pytest.raises(ConfigError):
            Adam(beta1=1.0)
