"""Serving SLO objectives with error-budget burn tracking.

An SLO is a target over a window ("99% of lookups under 2 ms", "99.9%
of requests answered", "no row older than the staleness bound") plus
an **error budget**: the fraction of events allowed to violate the
target before the objective is exhausted. The tracker computes the
violation fraction per objective and reports the **burn rate** — the
ratio of violations consumed to violations allowed; burn > 1.0 means
the budget is spent and the objective has failed.

Three objective kinds:

- ``latency`` — each observation above ``threshold`` seconds is a
  violation. Observations feed the same log-bucketed
  :class:`~repro.obs.histogram.Histogram` the rest of the obs stack
  uses, and the violation count is read back off the cumulative bucket
  boundaries (conservative: a bucket straddling the threshold counts
  as violating).
- ``availability`` — explicit good/bad event counts (a failed or
  error-coded request is bad).
- ``staleness`` — good/bad counts where bad means a served row
  exceeded the checkpoint-lag bound ``threshold`` (in completed
  checkpoints).

:meth:`SLOTracker.verdict` emits a machine-readable, schema-versioned
record (``repro-slo-v1``) that ``bench_serving.py`` writes and
``repro slo`` renders; :meth:`SLOTracker.emit_metrics` exports the
same numbers as ``repro_slo_*`` series on a
:class:`~repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.obs.histogram import Histogram

SLO_SCHEMA = "repro-slo-v1"

_KINDS = ("latency", "availability", "staleness")


class Objective:
    """One service-level objective and its running event counts."""

    def __init__(self, name: str, kind: str, threshold: float, budget: float):
        if kind not in _KINDS:
            raise ConfigError(f"unknown SLO kind {kind!r}, want one of {_KINDS}")
        if budget < 0 or budget >= 1:
            raise ConfigError(f"budget must be in [0, 1), got {budget}")
        self.name = name
        self.kind = kind
        self.threshold = threshold
        self.budget = budget
        self.histogram = Histogram(name) if kind == "latency" else None
        self.good = 0
        self.bad = 0

    def observe(self, seconds: float) -> None:
        if self.histogram is None:
            raise ConfigError(f"objective {self.name!r} ({self.kind}) takes "
                              "record(good=, bad=), not latency observations")
        self.histogram.observe(seconds)

    def record(self, good: int = 0, bad: int = 0) -> None:
        self.good += good
        self.bad += bad

    @property
    def events(self) -> int:
        if self.histogram is not None:
            return self.histogram.count
        return self.good + self.bad

    @property
    def violations(self) -> int:
        if self.histogram is None:
            return self.bad
        within = 0
        for upper, cumulative in self.histogram.cumulative_buckets():
            if upper <= self.threshold:
                within = cumulative
            else:
                break
        return self.histogram.count - within

    @property
    def violation_fraction(self) -> float:
        events = self.events
        return self.violations / events if events else 0.0

    @property
    def burn_rate(self) -> float:
        """Budget consumed: fraction violating / fraction allowed.

        A zero budget means any violation exhausts the objective
        (burn = inf); with no events the burn is 0.
        """
        fraction = self.violation_fraction
        if fraction == 0.0:
            return 0.0
        if self.budget == 0.0:
            return math.inf
        return fraction / self.budget

    @property
    def ok(self) -> bool:
        return self.burn_rate <= 1.0

    def report(self) -> dict:
        row = {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "budget": self.budget,
            "events": self.events,
            "violations": self.violations,
            "violation_fraction": self.violation_fraction,
            "burn_rate": self.burn_rate,
            "ok": self.ok,
        }
        if self.histogram is not None and self.histogram.count:
            row["p99_s"] = self.histogram.p99
        return row


class SLOTracker:
    """Named objectives + verdict/metric emission.

    Registration methods are get-or-create, so the serving tier and
    the bench can both register the same objective and feed it.
    """

    def __init__(self):
        self.objectives: dict[str, Objective] = {}

    # -- registration --------------------------------------------------

    def _register(self, name, kind, threshold, budget) -> Objective:
        existing = self.objectives.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ConfigError(
                    f"objective {name!r} already registered as {existing.kind}"
                )
            return existing
        obj = Objective(name, kind, threshold, budget)
        self.objectives[name] = obj
        return obj

    def latency(self, name: str, threshold_s: float, budget: float = 0.01) -> Objective:
        """p-quantile style target: stay under ``threshold_s`` for all
        but a ``budget`` fraction of requests."""
        return self._register(name, "latency", threshold_s, budget)

    def availability(self, name: str, budget: float = 0.001) -> Objective:
        return self._register(name, "availability", 0.0, budget)

    def staleness(self, name: str, bound_k: int, budget: float = 0.0) -> Objective:
        return self._register(name, "staleness", float(bound_k), budget)

    # -- feeding -------------------------------------------------------

    def observe_latency(self, name: str, seconds: float) -> None:
        self.objectives[name].observe(seconds)

    def record(self, name: str, good: int = 0, bad: int = 0) -> None:
        self.objectives[name].record(good=good, bad=bad)

    # -- verdicts ------------------------------------------------------

    def exhausted(self) -> list[str]:
        """Names of objectives whose error budget is spent."""
        return [name for name, obj in self.objectives.items() if not obj.ok]

    def verdict(self) -> dict:
        objectives = [obj.report() for obj in self.objectives.values()]
        return {
            "schema": SLO_SCHEMA,
            "ok": all(row["ok"] for row in objectives),
            "objectives": objectives,
        }

    def emit_metrics(self, registry) -> None:
        """Export ``repro_slo_*`` series (call once, at end of run)."""
        for obj in self.objectives.values():
            labels = {"objective": obj.name, "kind": obj.kind}
            registry.counter("repro_slo_events_total", labels).add(obj.events)
            registry.counter("repro_slo_violations_total", labels).add(obj.violations)
            burn = obj.burn_rate
            registry.gauge("repro_slo_burn_rate", labels).set(
                burn if math.isfinite(burn) else -1.0
            )
            registry.gauge("repro_slo_budget_remaining", labels).set(
                max(0.0, 1.0 - burn) if math.isfinite(burn) else 0.0
            )


def render_verdict(verdict: dict) -> str:
    """Human-readable table for a ``repro-slo-v1`` verdict."""
    if verdict.get("schema") != SLO_SCHEMA:
        raise ConfigError(
            f"not a {SLO_SCHEMA} verdict: schema={verdict.get('schema')!r}"
        )
    lines = []
    header = (
        f"{'objective':<24} {'kind':<13} {'events':>8} {'viol':>6} "
        f"{'burn':>8}  status"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in verdict["objectives"]:
        burn = row["burn_rate"]
        burn_s = "inf" if not math.isfinite(burn) else f"{burn:.3f}"
        status = "ok" if row["ok"] else "BUDGET EXHAUSTED"
        lines.append(
            f"{row['name']:<24} {row['kind']:<13} {row['events']:>8} "
            f"{row['violations']:>6} {burn_s:>8}  {status}"
        )
    lines.append("")
    lines.append("overall: " + ("ok" if verdict["ok"] else "FAILED"))
    return "\n".join(lines)
