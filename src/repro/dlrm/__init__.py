"""Functional DLRM training on top of the parameter server.

A numpy implementation of the paper's training stack: a DeepFM model
(Guo et al. 2017, the algorithm of Section VI-A), a PS-backed embedding
layer speaking the pull/maintain/push protocol, a synchronous
multi-worker trainer with checkpoint/recovery integration, a Keras-like
model API mirroring the paper's TensorFlow/Keras integration, and a
synthetic Criteo-like dataset.

This layer is where *correctness* is demonstrated: real weights, real
gradients, real crashes, bitwise recovery checks.
"""

from repro.dlrm.async_trainer import AsynchronousTrainer
from repro.dlrm.collection import EmbeddingCollection, TableSpec
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.criteo_file import CriteoFileDataset
from repro.dlrm.deepfm import DeepFM, DeepFMGradients
from repro.dlrm.dlrm_model import DLRM, DLRMGradients
from repro.dlrm.embedding import PSEmbedding
from repro.dlrm.hps import HierarchicalPS, ServingStats
from repro.dlrm.keras_api import Model, PSEmbeddingLayer
from repro.dlrm.layers import Dense, MLP
from repro.dlrm.metrics import calibration_ratio, evaluate_model, log_loss, roc_auc
from repro.dlrm.serving import InferenceSession, export_model
from repro.dlrm.optimizers import Adam, DenseOptimizer, DenseSGD
from repro.dlrm.prefetch import PrefetchPipeline
from repro.dlrm.trainer import SynchronousTrainer, TrainerCheckpoint

__all__ = [
    "AsynchronousTrainer",
    "EmbeddingCollection",
    "TableSpec",
    "CriteoSynthetic",
    "CriteoFileDataset",
    "DeepFM",
    "DeepFMGradients",
    "DLRM",
    "DLRMGradients",
    "PSEmbedding",
    "Model",
    "PSEmbeddingLayer",
    "Dense",
    "MLP",
    "DenseOptimizer",
    "DenseSGD",
    "Adam",
    "PrefetchPipeline",
    "SynchronousTrainer",
    "TrainerCheckpoint",
    "roc_auc",
    "log_loss",
    "calibration_ratio",
    "evaluate_model",
    "export_model",
    "InferenceSession",
    "HierarchicalPS",
    "ServingStats",
]
