"""Unit tests for the contiguous embedding arena."""

import numpy as np
import pytest

from repro.core.arena import EmbeddingArena
from repro.errors import ServerError


class TestAlloc:
    def test_rows_are_distinct_and_in_range(self):
        arena = EmbeddingArena(4, 0, initial_rows=8)
        rows = [arena.alloc() for __ in range(8)]
        assert sorted(rows) == list(range(8))
        assert len(arena) == 8

    def test_free_recycles(self):
        arena = EmbeddingArena(4, 0, initial_rows=4)
        row = arena.alloc()
        arena.free(row)
        assert len(arena) == 0
        assert arena.alloc() == row

    def test_free_rejects_bad_row(self):
        arena = EmbeddingArena(4, 0, initial_rows=4)
        with pytest.raises(ServerError):
            arena.free(99)

    def test_row_width_includes_state(self):
        arena = EmbeddingArena(4, 4, initial_rows=2)
        assert arena.row_width == 8
        assert arena.data.shape == (2, 8)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ServerError):
            EmbeddingArena(0, 0)
        with pytest.raises(ServerError):
            EmbeddingArena(4, -1)
        with pytest.raises(ServerError):
            EmbeddingArena(4, 0, initial_rows=0)


class TestGrowth:
    def test_grow_preserves_contents_and_bumps_generation(self):
        arena = EmbeddingArena(2, 0, initial_rows=2)
        r0, r1 = arena.alloc(), arena.alloc()
        arena.data[r0] = [1.0, 2.0]
        arena.data[r1] = [3.0, 4.0]
        gen = arena.generation
        r2 = arena.alloc()  # forces a doubling
        assert arena.generation == gen + 1
        assert arena.capacity == 4
        assert arena.data[r0].tolist() == [1.0, 2.0]
        assert arena.data[r1].tolist() == [3.0, 4.0]
        assert r2 not in (r0, r1)

    def test_views_orphaned_by_growth(self):
        """Growth replaces the backing matrix — old views keep the old
        buffer, which is exactly why the cache rebinding exists."""
        arena = EmbeddingArena(2, 0, initial_rows=1)
        r0 = arena.alloc()
        view = arena.weights_view(r0)
        view[:] = 7.0
        arena.alloc()  # grow
        arena.data[r0] = 9.0
        assert view[0] == 7.0  # the orphaned view did not follow
        assert arena.weights_view(r0)[0] == 9.0

    def test_many_allocs(self):
        arena = EmbeddingArena(3, 1, initial_rows=2)
        rows = [arena.alloc() for __ in range(100)]
        assert len(set(rows)) == 100
        assert arena.capacity >= 100
        assert len(arena) == 100


class TestViews:
    def test_weights_and_state_partition_the_row(self):
        arena = EmbeddingArena(3, 2, initial_rows=1)
        row = arena.alloc()
        arena.weights_view(row)[:] = 1.0
        arena.state_view(row)[:] = 2.0
        assert arena.data[row].tolist() == [1.0, 1.0, 1.0, 2.0, 2.0]

    def test_state_view_none_when_stateless(self):
        arena = EmbeddingArena(3, 0, initial_rows=1)
        assert arena.state_view(arena.alloc()) is None

    def test_float32(self):
        arena = EmbeddingArena(3, 2, initial_rows=1)
        assert arena.data.dtype == np.float32
