"""Figure 8: impact of DRAM cache size (16 GPUs).

Sweeps the cache from the 10 MB-equivalent to the 20 GB-equivalent of a
500 GB model. Paper: training time falls 14.4/18/24.9/32.2/38.2 % by
2 GB, then flattens (20 GB is only ~1 % better than 2 GB) — the skew
means a small cache already captures the hot set.
"""

from benchmarks.conftest import run_once, simulate_epoch
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE

#: paper-normalised training time at each cache size (10 MB = 1.0)
PAPER = {10: 1.0, 20: 0.856, 40: 0.82, 100: 0.751, 400: 0.678, 2048: 0.618, 20480: 0.612}


def test_fig8_cache_size(benchmark, report):
    def run():
        rows = {}
        for paper_mb in PAPER:
            cache = DEFAULT_PROFILE.cache_config(paper_mb=paper_mb)
            rows[paper_mb] = simulate_epoch(SystemKind.PMEM_OE, 16, cache=cache)
        return rows

    rows = run_once(benchmark, run)
    base = rows[10].sim_seconds
    report.title("fig8_cache_size", "Figure 8: cache-size sweep (normalised to 10 MB)")
    for paper_mb, result in rows.items():
        measured = result.sim_seconds / base
        report.row(
            f"{paper_mb:>6} MB-equivalent",
            f"{PAPER[paper_mb]:.3f}",
            f"{measured:.3f}",
            note=f"miss rate {result.miss_rate:.1%}",
        )

    ratios = [rows[mb].sim_seconds / base for mb in PAPER]
    # Monotone improvement with diminishing returns past 2 GB.
    assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-2] < 0.75  # 2 GB well below the 10 MB baseline
    assert ratios[-2] - ratios[-1] < 0.06  # 2 GB -> 20 GB nearly flat
    misses = [rows[mb].miss_rate for mb in PAPER]
    assert all(a >= b for a, b in zip(misses, misses[1:]))
