"""Serving SLO objectives: burn-rate math, verdicts, metric export.

Covers :mod:`repro.obs.slo` — the three objective kinds, error-budget
burn rates (including the zero-budget → infinite-burn edge),
schema-versioned verdicts and their renderer, the ``repro_slo_*``
metric series, and the :class:`~repro.dlrm.hps.HierarchicalPS`
integration (an availability event per unpinned lookup, bad on raise,
pinned reads bypass).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.hps import HierarchicalPS
from repro.errors import ConfigError
from repro.obs import MetricsRegistry
from repro.obs.slo import SLO_SCHEMA, Objective, SLOTracker, render_verdict

DIM = 8


def make_tier(slo, **kwargs):
    server = OpenEmbeddingServer(
        ServerConfig(
            num_nodes=2,
            embedding_dim=DIM,
            pmem_capacity_bytes=1 << 22,
            seed=3,
        ),
        CacheConfig(capacity_bytes=1 << 18),
    )
    keys = list(range(16))
    server.pull(keys, 0)
    server.maintain(0)
    server.push(keys, np.full((16, DIM), 0.01, dtype=np.float32), 0)
    server.barrier_checkpoint()
    return HierarchicalPS(server, capacity_rows=32, slo=slo, **kwargs)


# ----------------------------------------------------------------------
# objective math
# ----------------------------------------------------------------------


class TestObjective:
    def test_latency_violations_above_threshold(self):
        obj = Objective("p99", "latency", threshold=1e-3, budget=0.5)
        for __ in range(8):
            obj.observe(1e-5)  # well under a bucket below the threshold
        for __ in range(2):
            obj.observe(1e-1)  # well over
        assert obj.events == 10
        assert obj.violations == 2
        assert obj.violation_fraction == pytest.approx(0.2)
        assert obj.burn_rate == pytest.approx(0.4)
        assert obj.ok

    def test_latency_threshold_is_bucket_conservative(self):
        # An observation in the bucket straddling the threshold counts
        # as violating: violations may over-count, never under-count.
        obj = Objective("p99", "latency", threshold=1e-3, budget=0.5)
        obj.observe(0.99e-3)
        assert obj.violations in (0, 1)
        obj2 = Objective("p99", "latency", threshold=1e-3, budget=0.5)
        obj2.observe(1.01e-3)  # strictly above: always a violation
        assert obj2.violations == 1

    def test_availability_counts(self):
        obj = Objective("avail", "availability", threshold=0.0, budget=0.1)
        obj.record(good=18)
        obj.record(bad=2)
        assert obj.events == 20
        assert obj.violations == 2
        assert obj.burn_rate == pytest.approx(1.0)
        assert obj.ok  # burn == 1.0 is exactly at budget, still ok

    def test_no_events_no_burn(self):
        obj = Objective("idle", "staleness", threshold=1.0, budget=0.0)
        assert obj.events == 0
        assert obj.burn_rate == 0.0
        assert obj.ok

    def test_zero_budget_any_violation_is_infinite_burn(self):
        obj = Objective("stale", "staleness", threshold=1.0, budget=0.0)
        obj.record(good=999, bad=1)
        assert obj.burn_rate == math.inf
        assert not obj.ok

    def test_over_budget_fails(self):
        obj = Objective("avail", "availability", threshold=0.0, budget=0.01)
        obj.record(good=50, bad=50)
        assert obj.burn_rate == pytest.approx(50.0)
        assert not obj.ok

    def test_latency_objective_rejects_record_misuse(self):
        obj = Objective("avail", "availability", threshold=0.0, budget=0.1)
        with pytest.raises(ConfigError, match="latency observations"):
            obj.observe(0.01)

    def test_bad_kind_and_budget_rejected(self):
        with pytest.raises(ConfigError, match="unknown SLO kind"):
            Objective("x", "throughput", threshold=0.0, budget=0.1)
        with pytest.raises(ConfigError, match="budget"):
            Objective("x", "latency", threshold=1.0, budget=1.0)
        with pytest.raises(ConfigError, match="budget"):
            Objective("x", "latency", threshold=1.0, budget=-0.1)

    def test_report_includes_p99_for_latency(self):
        obj = Objective("p99", "latency", threshold=1e-3, budget=0.1)
        obj.observe(2e-3)
        row = obj.report()
        assert row["kind"] == "latency"
        assert row["p99_s"] >= 2e-3 * 0.8
        avail = Objective("a", "availability", threshold=0.0, budget=0.1)
        avail.record(good=1)
        assert "p99_s" not in avail.report()


# ----------------------------------------------------------------------
# tracker
# ----------------------------------------------------------------------


class TestSLOTracker:
    def test_get_or_create_returns_same_objective(self):
        tracker = SLOTracker()
        a = tracker.latency("p99", 1e-3, budget=0.05)
        b = tracker.latency("p99", 9e9, budget=0.9)  # params ignored
        assert a is b
        assert b.threshold == 1e-3 and b.budget == 0.05

    def test_kind_mismatch_rejected(self):
        tracker = SLOTracker()
        tracker.latency("p99", 1e-3)
        with pytest.raises(ConfigError, match="already registered"):
            tracker.availability("p99")

    def test_verdict_schema_and_aggregation(self):
        tracker = SLOTracker()
        tracker.availability("a", budget=0.1)
        tracker.staleness("s", bound_k=1, budget=0.0)
        tracker.record("a", good=9, bad=1)  # burn 1.0: ok
        tracker.record("s", good=10)
        verdict = tracker.verdict()
        assert verdict["schema"] == SLO_SCHEMA
        assert verdict["ok"]
        assert {row["name"] for row in verdict["objectives"]} == {"a", "s"}
        tracker.record("s", bad=1)  # zero budget: exhausted
        verdict = tracker.verdict()
        assert not verdict["ok"]
        assert tracker.exhausted() == ["s"]

    def test_render_verdict(self):
        tracker = SLOTracker()
        tracker.staleness("serving_staleness", bound_k=1, budget=0.0)
        tracker.record("serving_staleness", good=5, bad=1)
        text = render_verdict(tracker.verdict())
        assert "serving_staleness" in text
        assert "BUDGET EXHAUSTED" in text
        assert "overall: FAILED" in text
        assert "inf" in text

    def test_render_rejects_wrong_schema(self):
        with pytest.raises(ConfigError, match="repro-slo-v1"):
            render_verdict({"schema": "nope", "objectives": []})

    def test_emit_metrics(self):
        tracker = SLOTracker()
        tracker.availability("a", budget=0.1)
        tracker.record("a", good=8, bad=2)
        tracker.staleness("s", bound_k=1, budget=0.0)
        tracker.record("s", bad=1)
        registry = MetricsRegistry()
        tracker.emit_metrics(registry)
        labels = {"objective": "a", "kind": "availability"}
        assert registry.counter("repro_slo_events_total", labels).value == 10
        assert registry.counter("repro_slo_violations_total", labels).value == 2
        assert registry.gauge("repro_slo_burn_rate", labels).value == (
            pytest.approx(2.0)
        )
        # Infinite burn exports as the -1.0 sentinel, budget 0 remaining.
        stale = {"objective": "s", "kind": "staleness"}
        assert registry.gauge("repro_slo_burn_rate", stale).value == -1.0
        assert registry.gauge("repro_slo_budget_remaining", stale).value == 0.0


# ----------------------------------------------------------------------
# serving-tier integration
# ----------------------------------------------------------------------


class TestServingIntegration:
    def test_tier_registers_intrinsic_objectives(self):
        slo = SLOTracker()
        tier = make_tier(slo, staleness_bound_k=2)
        assert slo.objectives["serving_availability"].kind == "availability"
        stale = slo.objectives["serving_staleness"]
        assert stale.kind == "staleness"
        assert stale.threshold == 2.0
        assert tier.slo is slo

    def test_unpinned_lookup_records_good(self):
        slo = SLOTracker()
        tier = make_tier(slo)
        for __ in range(3):
            tier.lookup([1, 2, 3])
        avail = slo.objectives["serving_availability"]
        assert avail.good == 3 and avail.bad == 0

    def test_failed_lookup_records_bad_and_reraises(self):
        slo = SLOTracker()
        tier = make_tier(slo)
        tier.lookup([1])

        def boom(keys, snapshot_id=None):
            raise RuntimeError("shard unreachable")

        tier.backend.lookup = boom
        tier._cache.clear()  # force the backend path
        with pytest.raises(RuntimeError, match="shard unreachable"):
            tier.lookup([1, 2])
        avail = slo.objectives["serving_availability"]
        assert avail.good == 1 and avail.bad == 1

    def test_pinned_lookup_bypasses_availability(self):
        slo = SLOTracker()
        tier = make_tier(slo)
        pin = tier.backend.latest_serving_snapshot
        tier.lookup([1, 2], snapshot_id=pin)
        avail = slo.objectives["serving_availability"]
        assert avail.events == 0
