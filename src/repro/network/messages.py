"""Binary wire messages for the PS protocol.

Every message is ``[1-byte type][4-byte LE body length][body]``; bodies
pack fixed little-endian headers followed by raw numpy buffers, so the
byte counts the simulator charges are the byte counts a real
implementation would move.

Message catalogue:

======================  ====  =======================================
Message                 Type  Body
======================  ====  =======================================
PullRequest             0x01  batch_id u64, nkeys u32, keys u64[n]
PullResponse            0x02  batch_id u64, nkeys u32, dim u32,
                              weights f32[n*dim]
PushRequest             0x03  batch_id u64, nkeys u32, dim u32,
                              keys u64[n], grads f32[n*dim]
CheckpointRequest       0x04  batch_id u64
StatusResponse          0x05  code u8, value i64
======================  ====  =======================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

_HEADER = struct.Struct("<BI")


class MessageError(ReproError):
    """Malformed or unexpected wire message."""


@dataclass(frozen=True)
class PullRequest:
    """Worker -> PS: fetch weights for ``keys`` at batch ``batch_id``."""

    TYPE = 0x01

    batch_id: int
    keys: np.ndarray  # u64[n]

    def encode_body(self) -> bytes:
        keys = np.ascontiguousarray(self.keys, dtype="<u8")
        return (
            struct.pack("<QI", self.batch_id, len(keys)) + keys.tobytes()
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "PullRequest":
        if len(body) < 12:
            raise MessageError("truncated PullRequest")
        batch_id, nkeys = struct.unpack_from("<QI", body)
        expected = 12 + 8 * nkeys
        if len(body) != expected:
            raise MessageError(f"PullRequest length {len(body)}, want {expected}")
        keys = np.frombuffer(body, dtype="<u8", count=nkeys, offset=12)
        return cls(batch_id=batch_id, keys=keys.copy())


@dataclass(frozen=True)
class PullResponse:
    """PS -> worker: the requested weight rows."""

    TYPE = 0x02

    batch_id: int
    weights: np.ndarray  # f32[n, dim]

    def encode_body(self) -> bytes:
        weights = np.ascontiguousarray(self.weights, dtype="<f4")
        if weights.ndim != 2:
            raise MessageError(f"weights must be 2-D, got shape {weights.shape}")
        n, dim = weights.shape
        return struct.pack("<QII", self.batch_id, n, dim) + weights.tobytes()

    @classmethod
    def decode_body(cls, body: bytes) -> "PullResponse":
        if len(body) < 16:
            raise MessageError("truncated PullResponse")
        batch_id, n, dim = struct.unpack_from("<QII", body)
        expected = 16 + 4 * n * dim
        if len(body) != expected:
            raise MessageError(f"PullResponse length {len(body)}, want {expected}")
        weights = np.frombuffer(body, dtype="<f4", count=n * dim, offset=16)
        return cls(batch_id=batch_id, weights=weights.reshape(n, dim).copy())


@dataclass(frozen=True)
class PushRequest:
    """Worker -> PS: gradients for ``keys`` at batch ``batch_id``."""

    TYPE = 0x03

    batch_id: int
    keys: np.ndarray  # u64[n]
    grads: np.ndarray  # f32[n, dim]

    def encode_body(self) -> bytes:
        keys = np.ascontiguousarray(self.keys, dtype="<u8")
        grads = np.ascontiguousarray(self.grads, dtype="<f4")
        if grads.ndim != 2 or grads.shape[0] != len(keys):
            raise MessageError(
                f"grads shape {grads.shape} inconsistent with {len(keys)} keys"
            )
        n, dim = grads.shape
        return (
            struct.pack("<QII", self.batch_id, n, dim)
            + keys.tobytes()
            + grads.tobytes()
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "PushRequest":
        if len(body) < 16:
            raise MessageError("truncated PushRequest")
        batch_id, n, dim = struct.unpack_from("<QII", body)
        expected = 16 + 8 * n + 4 * n * dim
        if len(body) != expected:
            raise MessageError(f"PushRequest length {len(body)}, want {expected}")
        keys = np.frombuffer(body, dtype="<u8", count=n, offset=16)
        grads = np.frombuffer(body, dtype="<f4", count=n * dim, offset=16 + 8 * n)
        return cls(
            batch_id=batch_id, keys=keys.copy(), grads=grads.reshape(n, dim).copy()
        )


@dataclass(frozen=True)
class CheckpointRequest:
    """Trainer -> PS: snapshot the state as of ``batch_id``."""

    TYPE = 0x04

    batch_id: int

    def encode_body(self) -> bytes:
        return struct.pack("<Q", self.batch_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "CheckpointRequest":
        if len(body) != 8:
            raise MessageError(f"CheckpointRequest length {len(body)}, want 8")
        return cls(batch_id=struct.unpack("<Q", body)[0])


@dataclass(frozen=True)
class StatusResponse:
    """PS -> caller: an ack carrying a status code and one integer."""

    TYPE = 0x05

    OK = 0
    ERROR = 1

    code: int
    value: int = 0

    def encode_body(self) -> bytes:
        return struct.pack("<Bq", self.code, self.value)

    @classmethod
    def decode_body(cls, body: bytes) -> "StatusResponse":
        if len(body) != 9:
            raise MessageError(f"StatusResponse length {len(body)}, want 9")
        code, value = struct.unpack("<Bq", body)
        return cls(code=code, value=value)

    @property
    def ok(self) -> bool:
        return self.code == self.OK


_MESSAGE_TYPES = {
    cls.TYPE: cls
    for cls in (PullRequest, PullResponse, PushRequest, CheckpointRequest, StatusResponse)
}


def encode_message(message) -> bytes:
    """Frame a message: type byte, length, body."""
    body = message.encode_body()
    return _HEADER.pack(message.TYPE, len(body)) + body


def decode_message(data: bytes):
    """Decode one framed message.

    Raises:
        MessageError: unknown type, truncation, or trailing bytes.
    """
    if len(data) < _HEADER.size:
        raise MessageError(f"frame too short: {len(data)} bytes")
    msg_type, length = _HEADER.unpack_from(data)
    if msg_type not in _MESSAGE_TYPES:
        raise MessageError(f"unknown message type 0x{msg_type:02x}")
    body = data[_HEADER.size :]
    if len(body) != length:
        raise MessageError(f"frame body {len(body)} bytes, header says {length}")
    return _MESSAGE_TYPES[msg_type].decode_body(body)
