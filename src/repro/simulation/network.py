"""Cluster interconnect timing model.

The paper's testbed connects GPU machines, PS machines and the NAS over
a 30 Gb intranet, with RDMA-style low-overhead RPC between the
TensorFlow operators and the PS backend. We model a single shared link
per direction: per-message latency plus bytes over (possibly shared)
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NetworkConfig
from repro.errors import SimulationError


@dataclass(frozen=True)
class Delivery:
    """Outcome of moving one frame across a link.

    Attributes:
        copies: frames that actually arrive, in order — empty when the
            message was dropped, two entries when it was duplicated,
            possibly corrupted bytes.
        elapsed: simulated seconds the transfer occupied the wire
            (including injected delays and duplicate transmissions).
    """

    copies: tuple[bytes, ...]
    elapsed: float


class NetworkModel:
    """Charges transfer times for PS <-> worker messages.

    Attributes:
        config: static link parameters.
        bytes_sent: cumulative payload bytes charged.
        messages: cumulative message count.
    """

    def __init__(self, config: NetworkConfig | None = None):
        self.config = config or NetworkConfig()
        self.bytes_sent = 0
        self.messages = 0

    def transfer_time(self, nbytes: int, concurrent_flows: int = 1) -> float:
        """Seconds for one ``nbytes`` message among ``concurrent_flows``.

        All flows progress together sharing the link, so each flow's
        effective bandwidth is divided by the flow count; latency is paid
        once per message.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        if concurrent_flows < 1:
            raise SimulationError(f"flows must be >= 1, got {concurrent_flows}")
        self.bytes_sent += nbytes
        self.messages += 1
        share = self.config.bandwidth_bytes_per_s / concurrent_flows
        return self.config.rpc_latency_s + nbytes / share

    def burst_transfer_time(self, flows: int, bytes_per_flow: int) -> float:
        """Seconds for ``flows`` simultaneous messages to all complete.

        This is the batch-boundary pattern: every worker sends its pull
        (or push) at once. The link is fully shared, so completion time
        is one latency plus the total bytes over the full bandwidth.
        """
        if flows < 0:
            raise SimulationError(f"negative flow count {flows}")
        if bytes_per_flow < 0:
            raise SimulationError(f"negative per-flow size {bytes_per_flow}")
        if flows == 0:
            return 0.0
        self.bytes_sent += flows * bytes_per_flow
        self.messages += flows
        total = flows * bytes_per_flow
        return self.config.rpc_latency_s + total / self.config.bandwidth_bytes_per_s

    def reset_counters(self) -> None:
        """Zero the traffic counters."""
        self.bytes_sent = 0
        self.messages = 0
