"""Property tests: pipelined training is bit-identical to serial.

The staleness invariant promises that routing pulls through the
lookahead prefetch pipeline changes *when* weights travel, never what
they are. These tests sweep seeds x lookahead depths x backends
(in-process and remote-RPC, the latter with and without injected wire
faults) and require byte-for-byte equality of every final embedding,
every dense parameter, and every per-step loss.
"""

import numpy as np
import pytest

from repro.config import (
    CacheConfig,
    NetworkFaultConfig,
    PrefetchConfig,
    RetryConfig,
    ServerConfig,
)
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.async_trainer import AsynchronousTrainer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam
from repro.dlrm.trainer import SynchronousTrainer
from repro.network.frontend import RemotePSClient

FIELDS, DIM = 6, 8
BATCHES = 10

FAULTS = NetworkFaultConfig(
    drop_rate=0.05, duplicate_rate=0.03, corrupt_rate=0.02, seed=5
)
RETRY = RetryConfig(
    max_attempts=12, attempt_timeout_s=0.05, call_timeout_s=30.0, seed=5
)


def _configs(seed):
    server = ServerConfig(
        num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 26, seed=seed
    )
    cache = CacheConfig(capacity_bytes=48 * DIM * 4 * 2)
    return server, cache


def _backend(kind, seed):
    server_config, cache_config = _configs(seed)
    if kind == "local":
        return OpenEmbeddingServer(server_config, cache_config, PSAdagrad(lr=0.05))
    if kind == "remote":
        return RemotePSClient(server_config, cache_config, PSAdagrad(lr=0.05))
    if kind == "remote_faulty":
        return RemotePSClient(
            server_config,
            cache_config,
            PSAdagrad(lr=0.05),
            faults=FAULTS,
            retry=RETRY,
        )
    raise AssertionError(kind)


def _train_sync(kind, seed, prefetch):
    backend = _backend(kind, seed)
    model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=seed)
    dataset = CriteoSynthetic(num_fields=FIELDS, vocab_per_field=150, seed=seed)
    trainer = SynchronousTrainer(
        backend,
        model,
        dataset,
        num_workers=2,
        batch_size=12,
        dense_optimizer=Adam(1e-2),
        checkpoint_every=4,
        prefetch=prefetch,
    )
    results = trainer.train(BATCHES)
    if trainer.pipeline is not None:
        trainer.pipeline.validate()
    return backend, model, [r.loss for r in results]


def _assert_identical(reference, candidate):
    ref_backend, ref_model, ref_losses = reference
    cand_backend, cand_model, cand_losses = candidate
    ref_state = ref_backend.state_snapshot()
    cand_state = cand_backend.state_snapshot()
    assert set(ref_state) == set(cand_state)
    for key in ref_state:
        np.testing.assert_array_equal(ref_state[key], cand_state[key])
    for a, b in zip(ref_model.dense_state(), cand_model.dense_state()):
        np.testing.assert_array_equal(a, b)
    assert ref_losses == cand_losses


class TestSynchronousEquivalence:
    @pytest.mark.parametrize("seed", [1, 9])
    @pytest.mark.parametrize("lookahead", [0, 1, 4])
    def test_local_pipelined_matches_serial(self, seed, lookahead):
        reference = _train_sync("local", seed, None)
        candidate = _train_sync(
            "local", seed, PrefetchConfig(lookahead=lookahead)
        )
        _assert_identical(reference, candidate)

    @pytest.mark.parametrize("lookahead", [0, 2])
    def test_remote_pipelined_matches_local_serial(self, lookahead):
        reference = _train_sync("local", 3, None)
        candidate = _train_sync(
            "remote", 3, PrefetchConfig(lookahead=lookahead)
        )
        _assert_identical(reference, candidate)

    def test_remote_faulty_pipelined_matches_local_serial(self):
        """Lookahead + retries + wire faults still lands identical weights."""
        reference = _train_sync("local", 4, None)
        candidate = _train_sync(
            "remote_faulty", 4, PrefetchConfig(lookahead=3)
        )
        _assert_identical(reference, candidate)
        stats = candidate[0].reliability()
        assert stats.faults_injected > 0  # the sweep actually hurt

    @pytest.mark.parametrize("patch", [True, False])
    def test_patch_modes_both_exact(self, patch):
        reference = _train_sync("local", 6, None)
        candidate = _train_sync(
            "local", 6, PrefetchConfig(lookahead=2, patch=patch)
        )
        _assert_identical(reference, candidate)

    def test_no_extra_entries_created(self):
        """Horizon clipping: prefetch never materialises future keys."""
        reference = _train_sync("local", 2, None)
        candidate = _train_sync("local", 2, PrefetchConfig(lookahead=8))
        assert (
            reference[0].num_entries == candidate[0].num_entries
        )


class TestAsynchronousEquivalence:
    def _train(self, seed, prefetch):
        backend = _backend("local", seed)
        model = DeepFM(
            FIELDS, DIM, hidden=(16,), use_first_order=False, seed=seed
        )
        dataset = CriteoSynthetic(
            num_fields=FIELDS, vocab_per_field=150, seed=seed
        )
        trainer = AsynchronousTrainer(
            backend,
            model,
            dataset,
            num_workers=2,
            batch_size=8,
            staleness=1,
            dense_optimizer=Adam(1e-2),
            prefetch=prefetch,
        )
        trainer.run_steps(12)
        return backend, model, list(trainer.loss_history)

    @pytest.mark.parametrize("lookahead", [1, 3])
    def test_async_pipelined_matches_serial(self, lookahead):
        _assert_identical(
            self._train(5, None),
            self._train(5, PrefetchConfig(lookahead=lookahead)),
        )


class TestMaintainParity:
    """Satellite: maintain() counters agree across the wire."""

    def _drive(self, backend):
        rng = np.random.default_rng(2)
        rounds = []
        for batch in range(8):
            keys = sorted(rng.choice(80, size=10, replace=False).tolist())
            backend.pull(keys, batch)
            rounds.append(backend.maintain(batch))
            backend.push(
                keys, rng.normal(0, 0.1, (10, DIM)).astype(np.float32), batch
            )
        return rounds

    def test_remote_counters_match_local(self):
        local_rounds = self._drive(_backend("local", 8))
        remote_rounds = self._drive(_backend("remote", 8))
        for local, remote in zip(local_rounds, remote_rounds):
            assert [r.processed for r in local] == [r.processed for r in remote]
            assert [r.loads for r in local] == [r.loads for r in remote]
            assert [r.flushes for r in local] == [r.flushes for r in remote]
            assert [r.evictions for r in local] == [
                r.evictions for r in remote
            ]

    def test_faulty_wire_counters_well_formed(self):
        """Duplicated/retried pulls may replay access records, which can
        only inflate ``processed`` — never lose a round's counters (the
        per-batch reply cache replays them on retried triggers)."""
        local_rounds = self._drive(_backend("local", 8))
        faulty_rounds = self._drive(_backend("remote_faulty", 8))
        assert len(faulty_rounds) == len(local_rounds)
        local_total = sum(r.processed for rnd in local_rounds for r in rnd)
        faulty_total = sum(r.processed for rnd in faulty_rounds for r in rnd)
        assert faulty_total >= local_total

    def test_remote_checkpoint_parity(self):
        local = _backend("local", 8)
        remote = _backend("remote", 8)
        for backend in (local, remote):
            backend.pull([1, 2, 3], 0)
            backend.maintain(0)
            backend.push([1, 2, 3], np.ones((3, DIM), dtype=np.float32), 0)
            assert backend.barrier_checkpoint() == 0
            assert backend.latest_completed_batch == 0


class TestRecoveryWithPrefetch:
    def test_crash_recover_resume_identical(self):
        """A pipelined run crash-recovers to the same weights as serial."""

        def run(prefetch):
            seed = 12
            server_config, cache_config = _configs(seed)
            optimizer = PSAdagrad(lr=0.05)
            backend = OpenEmbeddingServer(server_config, cache_config, optimizer)
            model = DeepFM(
                FIELDS, DIM, hidden=(16,), use_first_order=False, seed=seed
            )
            dataset = CriteoSynthetic(
                num_fields=FIELDS, vocab_per_field=150, seed=seed
            )
            trainer = SynchronousTrainer(
                backend,
                model,
                dataset,
                num_workers=2,
                batch_size=12,
                dense_optimizer=Adam(1e-2),
                checkpoint_every=4,
                prefetch=prefetch,
            )
            trainer.train(9)
            pools, _, dense = trainer.crash()
            model2 = DeepFM(
                FIELDS, DIM, hidden=(16,), use_first_order=False, seed=seed
            )
            recovered = SynchronousTrainer.recover(
                pools,
                dense,
                model=model2,
                dataset=dataset,
                server_config=server_config,
                cache_config=cache_config,
                ps_optimizer=PSAdagrad(lr=0.05),
                num_workers=2,
                batch_size=12,
                dense_optimizer=Adam(1e-2),
                checkpoint_every=4,
                prefetch=prefetch,
            )
            recovered.train(15 - recovered.next_batch)
            return recovered

        serial = run(None)
        pipelined = run(PrefetchConfig(lookahead=3))
        assert pipelined.next_batch == serial.next_batch == 15
        a = serial.backend.state_snapshot()
        b = pipelined.backend.state_snapshot()
        assert set(a) == set(b)
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])
