"""Figure 12: training time vs checkpoint interval (16 GPUs).

Paper overheads vs no-checkpoint at 10/20/30/40-minute intervals:
  PMem-OE (proposed):          2.4 / ~1.2 / ~0.8 / 0.6 %
  PMem-OE (sparse only):       ~0 % at every interval
  PMem-OE (incremental):       21.4 / 19.6 / 17.6 / 16.5 %
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import pytest

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.config import CheckpointConfig, CheckpointMode
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator

PAPER_PROPOSED = {10: 0.024, 20: 0.012, 30: 0.008, 40: 0.006}
PAPER_INCREMENTAL = {10: 0.214, 20: 0.196, 30: 0.176, 40: 0.165}
PAPER_EPOCH_HOURS = 5.33


def test_fig12_checkpoint_interval(benchmark, report):
    def run():
        # Checkpoint overheads compare a fixed-size dense pause against
        # the interval length, so these runs use the FULL profile epoch
        # (not the shortened bench epoch) to keep the ratio faithful.
        from repro.simulation.profiles import DEFAULT_PROFILE

        iters = DEFAULT_PROFILE.iterations(16)
        base = simulate_epoch(SystemKind.PMEM_OE, 16, iterations=iters)
        rows = {}
        for minutes in (10, 20, 30, 40):
            interval = TrainingSimulator.interval_for_epoch_fraction(
                base.sim_seconds, minutes, PAPER_EPOCH_HOURS
            )
            proposed = simulate_epoch(
                SystemKind.PMEM_OE, 16, iterations=iters,
                checkpoint=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval),
            )
            sparse = simulate_epoch(
                SystemKind.PMEM_OE, 16, iterations=iters,
                checkpoint=CheckpointConfig(
                    CheckpointMode.SPARSE_ONLY, interval, include_dense=False
                ),
            )
            incremental = simulate_epoch(
                SystemKind.PMEM_OE, 16, iterations=iters,
                checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
            )
            rows[minutes] = {
                "proposed": proposed.sim_seconds / base.sim_seconds - 1,
                "sparse": sparse.sim_seconds / base.sim_seconds - 1,
                "incremental": incremental.sim_seconds / base.sim_seconds - 1,
                "count": proposed.checkpoints_completed,
            }
        return rows

    rows = run_once(benchmark, run)
    report.title("fig12_ckpt_interval", "Figure 12: checkpoint overhead by interval")
    for minutes, row in rows.items():
        report.row(
            f"proposed    @ {minutes} min",
            f"+{PAPER_PROPOSED[minutes]:.1%}",
            f"+{row['proposed']:.2%}",
            note=f"({row['count']} ckpts)",
        )
        report.row(
            f"sparse only @ {minutes} min", "+0.0%", f"+{row['sparse']:.2%}"
        )
        report.row(
            f"incremental @ {minutes} min",
            f"+{PAPER_INCREMENTAL[minutes]:.1%}",
            f"+{row['incremental']:.2%}",
        )

    for minutes, row in rows.items():
        # Sparse-only is free; proposed is near-zero (dense dump only);
        # incremental is an order of magnitude worse.
        assert row["sparse"] == pytest.approx(0.0, abs=0.005)
        assert row["proposed"] < 0.05
        assert row["incremental"] > 4 * max(row["proposed"], 0.01)
    # Overhead shrinks as the interval grows.
    proposed = [rows[m]["proposed"] for m in (10, 20, 30, 40)]
    incremental = [rows[m]["incremental"] for m in (10, 20, 30, 40)]
    assert proposed == sorted(proposed, reverse=True)
    assert incremental == sorted(incremental, reverse=True)


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if metrics["proposed_overhead"] >= 0.05:
        failures.append(
            f"proposed checkpoint overhead {metrics['proposed_overhead']:+.2%} "
            ">= 5%"
        )
    if abs(metrics["sparse_overhead"]) >= 0.005:
        failures.append("sparse-only checkpointing should be free")
    if metrics["incremental_overhead"] <= 4 * max(
        metrics["proposed_overhead"], 0.01
    ):
        failures.append("incremental should cost 4x+ the proposed mode")
    return failures


@register(
    "fig12_ckpt_interval",
    params=[
        Param("minutes", "int", 20, help="paper-equivalent ckpt interval"),
        Param("workers", "int", 16),
        Param("iterations", "int", 0, help="0 = profile default for workers"),
    ],
    headline={
        "proposed_overhead": Headline(direction="lower", max_regression=0.10,
                                      noise=0.005),
        "incremental_overhead": Headline(direction="lower",
                                         max_regression=0.10),
    },
    check=_check,
)
def entry(*, minutes, workers, iterations):
    """Checkpoint overhead vs no-checkpoint at one interval for the
    proposed / sparse-only / incremental modes."""
    from repro.simulation.profiles import DEFAULT_PROFILE

    iters = iterations or DEFAULT_PROFILE.iterations(workers)
    base = simulate_epoch(SystemKind.PMEM_OE, workers, iterations=iters)
    interval = TrainingSimulator.interval_for_epoch_fraction(
        base.sim_seconds, minutes, PAPER_EPOCH_HOURS
    )
    proposed = simulate_epoch(
        SystemKind.PMEM_OE, workers, iterations=iters,
        checkpoint=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval),
    )
    sparse = simulate_epoch(
        SystemKind.PMEM_OE, workers, iterations=iters,
        checkpoint=CheckpointConfig(
            CheckpointMode.SPARSE_ONLY, interval, include_dense=False
        ),
    )
    incremental = simulate_epoch(
        SystemKind.PMEM_OE, workers, iterations=iters,
        checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
    )
    return {
        "proposed_overhead": proposed.sim_seconds / base.sim_seconds - 1,
        "sparse_overhead": sparse.sim_seconds / base.sim_seconds - 1,
        "incremental_overhead": incremental.sim_seconds / base.sim_seconds - 1,
        "checkpoints": proposed.checkpoints_completed,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig12_ckpt_interval"))
