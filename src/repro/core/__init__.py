"""OpenEmbedding core: the PMem-aware parameter server.

This package implements the paper's primary contribution:

* :mod:`repro.core.cache` — the pipelined DRAM cache with co-designed
  batch-aware checkpointing (Algorithms 1 and 2);
* :mod:`repro.core.ps_node` — a single PS node: pull / push / update on
  top of the cache, PMem store and PS-side optimizer;
* :mod:`repro.core.server` — the distributed facade that hash-partitions
  keys over PS nodes;
* :mod:`repro.core.checkpoint` / :mod:`repro.core.recovery` — checkpoint
  scheduling and crash recovery.
"""

from repro.core.backend import (
    PS_BACKEND_METHODS,
    PS_BACKEND_PROPERTIES,
    READ_BACKEND_METHODS,
    READ_BACKEND_PROPERTIES,
    TRAIN_BACKEND_METHODS,
    ReadBackend,
    TrainBackend,
    aggregate_maintain,
    check_backend,
)
from repro.core.cache import MaintainResult, PipelinedCache, PullResult
from repro.core.serving_backend import (
    LookupResult,
    ReplicaSelector,
    ServingBackend,
    check_serving_backend,
)
from repro.core.checkpoint import CheckpointCoordinator
from repro.core.entry import EmbeddingEntry, Location, pack_handle, unpack_handle
from repro.core.failover import (
    FailoverManager,
    FailureDetector,
    LocalFailoverTransport,
    NodeState,
    PromotionReport,
)
from repro.core.hash_index import HashIndex
from repro.core.lru import LRUList
from repro.core.optimizers import PSAdagrad, PSOptimizer, PSSGD
from repro.core.ps_node import PSNode
from repro.core.queues import AccessQueue, CheckpointRequestQueue
from repro.core.recovery import RecoveryReport, recover_node
from repro.core.replication import RebuildReport, ReplicatedPSNode
from repro.core.server import OpenEmbeddingServer
from repro.core.sharding import HashPartitioner

__all__ = [
    "PSBackend",
    "ReadBackend",
    "TrainBackend",
    "PS_BACKEND_METHODS",
    "PS_BACKEND_PROPERTIES",
    "READ_BACKEND_METHODS",
    "READ_BACKEND_PROPERTIES",
    "TRAIN_BACKEND_METHODS",
    "ServingBackend",
    "LookupResult",
    "ReplicaSelector",
    "check_serving_backend",
    "aggregate_maintain",
    "check_backend",
    "EmbeddingEntry",
    "Location",
    "pack_handle",
    "unpack_handle",
    "HashIndex",
    "LRUList",
    "AccessQueue",
    "CheckpointRequestQueue",
    "PipelinedCache",
    "PullResult",
    "MaintainResult",
    "CheckpointCoordinator",
    "PSNode",
    "PSOptimizer",
    "PSSGD",
    "PSAdagrad",
    "OpenEmbeddingServer",
    "HashPartitioner",
    "RecoveryReport",
    "recover_node",
    "ReplicatedPSNode",
    "RebuildReport",
    "FailureDetector",
    "FailoverManager",
    "LocalFailoverTransport",
    "NodeState",
    "PromotionReport",
]


def __getattr__(name: str):
    # PSBackend is a deprecated alias of TrainBackend; resolving it
    # lazily keeps `import repro.core` warning-free while still warning
    # anyone who actually touches the old name.
    if name == "PSBackend":
        from repro.core import backend as _backend

        return _backend.PSBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
