"""Byzantine-robust gradient aggregation for the asynchronous PS.

"Failure Tolerant Training with Persistent Memory Disaggregation over
CXL" (PAPERS.md) motivates treating *worker misbehavior* — not just
node death — as a fault class the parameter server must survive
without corrupting trained state. The defense layer here follows the
``blades`` benchmark-suite shape: a pluggable :class:`GradientAggregator`
folds one gradient row per contributing worker into the single row that
actually reaches ``optimizer.apply_batch``:

``mean``
    plain averaging — fast, and the baseline a single sign-flipped
    worker demonstrably poisons (the ablation in
    ``benchmarks/bench_ablation_staleness.py``).
``trimmed_mean``
    per-coordinate: sort the rows, drop the ``f`` lowest and ``f``
    highest values, average the rest. Tolerates ``f`` Byzantine rows
    out of ``m >= 2f + 1``.
``median``
    per-coordinate median; the ``f = (m - 1) // 2`` extreme of
    trimming.
``krum``
    Krum-style selection (Blanchard et al., NeurIPS 2017): score every
    row by the summed squared distance to its ``m - f - 2`` nearest
    neighbours and keep the single lowest-scoring row — a gradient
    vouched for by a majority neighbourhood.

The :class:`AggregationBuffer` supplies the rows: pushes are queued
per worker (with the same occurrence-order segment-sum the cache's
fast path uses, so a buffered-then-folded push stays *bitwise* equal
to an unbuffered one when the fold is an identity), and a fold round
fires whenever a quorum ``q = max(1, num_workers - f)`` of workers has
a contribution pending — the ``f`` workers the defense is sized for
may be straggling or dead, and must not be able to stall folding.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "AGGREGATOR_NAMES",
    "AggregationBuffer",
    "FoldedPush",
    "GradientAggregator",
    "Krum",
    "Mean",
    "Median",
    "TrimmedMean",
    "default_byzantine_tolerance",
    "make_aggregator",
]

AGGREGATOR_NAMES = ("none", "mean", "trimmed_mean", "median", "krum")


def default_byzantine_tolerance(num_workers: int) -> int:
    """The largest ``f`` with an honest majority at ``n >= 3f + 2``."""
    return max(0, (num_workers - 2) // 3)


class GradientAggregator:
    """Folds ``rows`` — one gradient estimate per worker — into one row."""

    name = "abstract"

    def fold(self, rows: np.ndarray) -> np.ndarray:
        """``rows`` is ``f32[m, width]`` with ``m >= 1``; returns ``f32[width]``."""
        raise NotImplementedError


class Mean(GradientAggregator):
    """Plain averaging; the identity for ``m == 1`` (bitwise)."""

    name = "mean"

    def fold(self, rows: np.ndarray) -> np.ndarray:
        if len(rows) == 1:
            # sum/1 is an exact identity, but skip the flops anyway.
            return rows[0]
        return np.mean(rows, axis=0, dtype=np.float32)


class TrimmedMean(GradientAggregator):
    """Per-coordinate trimmed mean: drop ``f`` values from each end."""

    name = "trimmed_mean"

    def __init__(self, f: int = 1):
        if f < 0:
            raise ConfigError(f"trimmed_mean f must be >= 0, got {f}")
        self.f = f

    def fold(self, rows: np.ndarray) -> np.ndarray:
        m = len(rows)
        if m == 1:
            return rows[0]
        trim = min(self.f, (m - 1) // 2)
        if trim == 0:
            return np.mean(rows, axis=0, dtype=np.float32)
        ordered = np.sort(rows, axis=0)
        kept = ordered[trim : m - trim]
        return np.mean(kept, axis=0, dtype=np.float32)


class Median(GradientAggregator):
    """Per-coordinate median."""

    name = "median"

    def fold(self, rows: np.ndarray) -> np.ndarray:
        if len(rows) == 1:
            return rows[0]
        return np.median(rows, axis=0).astype(np.float32, copy=False)


class Krum(GradientAggregator):
    """Krum-style selection: keep the best-vouched single row."""

    name = "krum"

    def __init__(self, f: int = 1):
        if f < 0:
            raise ConfigError(f"krum f must be >= 0, got {f}")
        self.f = f

    def fold(self, rows: np.ndarray) -> np.ndarray:
        m = len(rows)
        if m == 1:
            return rows[0]
        # Pairwise squared distances; each row scored by its k nearest
        # *other* rows, k = m - f - 2 clamped to [1, m - 1].
        diffs = rows[:, None, :] - rows[None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", diffs, diffs)
        np.fill_diagonal(dist2, np.inf)
        k = min(max(1, m - self.f - 2), m - 1)
        nearest = np.sort(dist2, axis=1)[:, :k]
        scores = nearest.sum(axis=1)
        return rows[int(np.argmin(scores))]


def make_aggregator(name: str, f: int = 1) -> GradientAggregator | None:
    """Instantiate an aggregator by config name (``"none"`` -> None)."""
    if name == "none":
        return None
    if name == "mean":
        return Mean()
    if name == "trimmed_mean":
        return TrimmedMean(f)
    if name == "median":
        return Median()
    if name == "krum":
        return Krum(f)
    raise ConfigError(
        f"unknown aggregator {name!r} (one of {list(AGGREGATOR_NAMES)})"
    )


@dataclass
class _Contribution:
    """One worker's pre-deduplicated, key-unique push."""

    keys: np.ndarray  # u64[n], unique, occurrence order
    grads: np.ndarray  # f32[n, width]
    batch_id: int


@dataclass
class FoldedPush:
    """One fold round's result, ready for ``cache.update``."""

    keys: np.ndarray  # u64[n]
    grads: np.ndarray  # f32[n, width]
    batch_id: int
    contributors: int = 1


@dataclass
class AggregatorStats:
    pushes_buffered: int = 0
    duplicates_dropped: int = 0
    folds: int = 0
    rows_folded: int = 0


def _segment_sum(keys: np.ndarray, grads: np.ndarray):
    """Occurrence-order per-key sum — the cache fast path's exact idiom,
    so buffering + folding stays bitwise-transparent when the fold is
    an identity."""
    unique, first_idx, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    order = np.argsort(first_idx, kind="stable")
    unique = unique[order]
    remap = np.empty_like(order)
    remap[order] = np.arange(len(order))
    inverse = remap[inverse]
    first_occurrence = np.sort(first_idx)
    agg = np.array(grads[first_occurrence], dtype=np.float32, copy=True)
    dup = np.ones(len(keys), dtype=bool)
    dup[first_occurrence] = False
    if dup.any():
        np.add.at(agg, inverse[dup], grads[dup])
    return unique, agg


class AggregationBuffer:
    """Per-worker push queues + quorum-triggered robust folding.

    Pushes are buffered per worker; whenever at least
    ``q = max(1, num_workers - f)`` workers have a contribution
    pending, one contribution is popped from *every* pending worker and
    folded key-by-key with the aggregator. ``(worker_id, seq)`` replay
    dedup happens here too (``seq=0`` opts out), so duplicated pushes
    are absorbed identically on the local and RPC transports.
    """

    def __init__(
        self,
        aggregator: GradientAggregator,
        num_workers: int,
        f: int = 0,
        dedup_window: int = 1024,
    ):
        if num_workers < 1:
            raise ConfigError("aggregation needs num_workers >= 1")
        if f < 0 or f >= num_workers:
            raise ConfigError(
                f"byzantine tolerance f={f} must be in [0, num_workers)"
            )
        self.aggregator = aggregator
        self.num_workers = num_workers
        self.f = f
        self.quorum = max(1, num_workers - f)
        self._queues: OrderedDict[int, deque[_Contribution]] = OrderedDict()
        self._seen: deque[tuple[int, int]] = deque(maxlen=dedup_window)
        self._seen_set: set[tuple[int, int]] = set()
        self.stats = AggregatorStats()

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def add(
        self,
        worker_id: int | None,
        keys: np.ndarray,
        grads: np.ndarray,
        batch_id: int,
        seq: int = 0,
    ) -> list[FoldedPush]:
        """Buffer one push; returns every fold round it unlocked."""
        wid = 0 if worker_id is None or worker_id < 0 else int(worker_id)
        if seq:
            dedup_key = (wid, int(seq))
            if dedup_key in self._seen_set:
                self.stats.duplicates_dropped += 1
                return []
            if len(self._seen) == self._seen.maxlen and self._seen:
                self._seen_set.discard(self._seen[0])
            self._seen.append(dedup_key)
            self._seen_set.add(dedup_key)
        unique, summed = _segment_sum(
            np.asarray(keys, dtype=np.uint64),
            np.asarray(grads, dtype=np.float32),
        )
        self._queues.setdefault(wid, deque()).append(
            _Contribution(keys=unique, grads=summed, batch_id=int(batch_id))
        )
        self.stats.pushes_buffered += 1
        folded = []
        while self._ready():
            folded.append(self._fold_round())
        return folded

    def flush(self) -> list[FoldedPush]:
        """Fold everything still pending, quorum or not.

        Called on quiesce/checkpoint so a batch-consistent snapshot
        captures every buffered gradient.
        """
        folded = []
        while self.pending:
            folded.append(self._fold_round())
        return folded

    # ------------------------------------------------------------------

    def _ready(self) -> bool:
        pending_workers = sum(1 for q in self._queues.values() if q)
        return pending_workers >= self.quorum

    def _fold_round(self) -> FoldedPush:
        popped = [
            (wid, self._queues[wid].popleft())
            for wid in sorted(self._queues)
            if self._queues[wid]
        ]
        contributions = [contribution for __, contribution in popped]
        batch_id = max(c.batch_id for c in contributions)
        if len(contributions) == 1:
            # Identity fold: apply the pre-summed push untouched so the
            # single-worker path stays bitwise-equal to no buffering.
            only = contributions[0]
            self.stats.folds += 1
            self.stats.rows_folded += len(only.keys)
            return FoldedPush(
                keys=only.keys, grads=only.grads,
                batch_id=batch_id, contributors=1,
            )
        # Union of keys in (worker order, occurrence order) for a
        # deterministic output layout.
        index: OrderedDict[int, list] = OrderedDict()
        for ci, contribution in enumerate(contributions):
            for ki, key in enumerate(contribution.keys.tolist()):
                index.setdefault(key, []).append((ci, ki))
        width = contributions[0].grads.shape[1]
        out_keys = np.fromiter(index, dtype=np.uint64, count=len(index))
        out = np.empty((len(index), width), dtype=np.float32)
        for row, (key, sources) in enumerate(index.items()):
            rows = np.stack(
                [contributions[ci].grads[ki] for ci, ki in sources]
            )
            out[row] = (
                rows[0] if len(rows) == 1 else self.aggregator.fold(rows)
            )
        self.stats.folds += 1
        self.stats.rows_folded += len(out_keys)
        return FoldedPush(
            keys=out_keys, grads=out,
            batch_id=batch_id, contributors=len(contributions),
        )
