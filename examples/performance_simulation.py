"""Performance simulation: compare PS systems as GPU workers scale.

Reproduces the paper's Figure 7 experiment shape at the scaled
benchmark operating point: epoch time of DRAM-PS, PMem-OE, Ori-Cache
and PMem-Hash at 4/8/16 GPU workers, no checkpoints. Expect PMem-OE to
track DRAM-PS within ~10 % while Ori-Cache and PMem-Hash fall away as
workers multiply.

Run:  python examples/performance_simulation.py
"""

from repro.config import CheckpointConfig
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE
from repro.simulation.trainer_sim import TrainingSimulator
from repro.workload.generator import WorkloadGenerator

SYSTEMS = (
    SystemKind.DRAM_PS,
    SystemKind.PMEM_OE,
    SystemKind.ORI_CACHE,
    SystemKind.PMEM_HASH,
)


def simulate_epoch(system: SystemKind, workers: int):
    profile = DEFAULT_PROFILE
    simulator = TrainingSimulator(
        system,
        profile.cluster_config(workers),
        profile.server_config(),
        profile.cache_config(paper_mb=2048),
        CheckpointConfig.none(),
        WorkloadGenerator(profile.workload_config()),
    )
    # A shortened epoch: enough iterations for the cache to reach
    # steady state while keeping the demo quick.
    return simulator.run(max(20, profile.iterations(workers) // 4))


def main() -> None:
    print("simulated epoch time (s) and ratio to DRAM-PS; 2 GB-equivalent cache")
    print(f"{'GPUs':>5} | " + " | ".join(f"{s.value:>18}" for s in SYSTEMS))
    for workers in (4, 8, 16):
        row = {}
        for system in SYSTEMS:
            result = simulate_epoch(system, workers)
            row[system] = result
        base = row[SystemKind.DRAM_PS].sim_seconds
        cells = [
            f"{row[s].sim_seconds:7.2f}s ({row[s].sim_seconds / base:4.2f}x)"
            for s in SYSTEMS
        ]
        print(f"{workers:>5} | " + " | ".join(f"{c:>18}" for c in cells))
    oe = row[SystemKind.PMEM_OE]
    print(f"\nPMem-OE miss rate at 16 GPUs: {oe.miss_rate:.2%}; "
          f"deferred maintenance fully hidden behind GPU compute: "
          f"{oe.maintain_inline_seconds == 0.0}")


if __name__ == "__main__":
    main()
