"""Batch workload generation for synchronous DLRM training.

Each training sample performs ``features_per_sample`` embedding lookups
drawn from the access distribution; a worker's per-batch pull request
carries the *deduplicated* key set (standard embedding-lookup
batching). The generator is deterministic given its seed.
"""

from __future__ import annotations

import numpy as np

from repro.config import WorkloadConfig
from repro.errors import ConfigError
from repro.workload.distributions import BandedSkewDistribution, TABLE2_BANDS


class WorkloadGenerator:
    """Draws per-worker, per-batch key sets from a skewed distribution.

    Args:
        config: key-space size, features per sample, skew temperature.
        distribution: override the access distribution; defaults to the
            Table II-calibrated banded distribution at the config's skew
            temperature.
    """

    def __init__(
        self,
        config: WorkloadConfig | None = None,
        distribution=None,
    ):
        self.config = config or WorkloadConfig()
        if distribution is None:
            distribution = BandedSkewDistribution(
                self.config.num_keys,
                TABLE2_BANDS,
                temperature=self.config.skew,
                seed=self.config.seed,
            )
        self.distribution = distribution

    def sample_batch_keys(self, batch_size: int, deduplicate: bool = True) -> np.ndarray:
        """Keys one worker's batch pulls.

        Args:
            batch_size: samples in the batch.
            deduplicate: return unique keys (the PS request payload);
                False returns the raw per-lookup stream (trace analysis).
        """
        if batch_size <= 0:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        raw = self.distribution.sample_keys(
            batch_size * self.config.features_per_sample
        )
        if deduplicate:
            return np.unique(raw)
        return raw

    def sample_worker_batches(
        self, num_workers: int, batch_size: int
    ) -> list[np.ndarray]:
        """One deduplicated key set per worker for a synchronous step."""
        if num_workers <= 0:
            raise ConfigError(f"num_workers must be >= 1, got {num_workers}")
        return [self.sample_batch_keys(batch_size) for __ in range(num_workers)]

    def access_stream(self, num_batches: int, batch_size: int) -> np.ndarray:
        """A flat stream of raw (non-deduplicated) accesses for analysis."""
        if num_batches <= 0:
            raise ConfigError(f"num_batches must be >= 1, got {num_batches}")
        chunks = [
            self.sample_batch_keys(batch_size, deduplicate=False)
            for __ in range(num_batches)
        ]
        return np.concatenate(chunks)
