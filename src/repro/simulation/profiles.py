"""The scaled benchmark operating point shared by all experiments.

The paper's testbed trains a 500 GB / 2.1 B-entry model with 4096-sample
batches (~tens of thousands of unique keys per worker-batch). Running
that verbatim through a Python functional simulation is infeasible, so
every benchmark uses one consistent scale-down, defined here:

* **model**: 500 k keys at dim 64 (128 MB of weights) — ~4000x fewer
  keys, same Table II skew;
* **batches**: 64 samples x 4 lookups => ~220 unique keys per
  worker-batch, preserving the paper's ratio of cache capacity to
  per-batch working set (a "2 GB of 500 GB" cache is ~10x one batch's
  unique keys in both worlds);
* **network**: bandwidth scaled down by the same ~4000x request-volume
  factor so the network:GPU time ratio of an iteration matches the
  testbed's;
* **cache sizes**: specified as paper-equivalent megabytes of a 500 GB
  model, converted by :func:`cache_bytes_for_paper_mb`.

Checkpoint intervals are expressed as a fraction of the measured epoch
(see :meth:`TrainingSimulator.interval_for_epoch_fraction`), keeping
"every 20 minutes of a 5.3-hour epoch" meaningful at this scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CacheConfig, ClusterConfig, NetworkConfig, ServerConfig, WorkloadConfig

PAPER_MODEL_GB = 500.0
"""The real workload's model size the scaled cache sizes refer to."""

PAPER_EPOCH_HOURS = 5.33
"""PMem-OE's epoch length on the testbed (Table V)."""

PAPER_CHECKPOINT_MINUTES = 20.0
"""The default checkpoint interval (Section VI-A)."""


@dataclass(frozen=True)
class BenchProfile:
    """One consistent scaled configuration for the benchmark suite."""

    num_keys: int = 500_000
    embedding_dim: int = 64
    batch_size: int = 64
    features_per_sample: int = 4
    workload_seed: int = 1
    #: total worker-iterations per simulated epoch; a run with W workers
    #: executes ``epoch_worker_iterations / W`` synchronous steps.
    epoch_worker_iterations: int = 16 * 240
    #: scaled interconnect (see module docstring).
    network: NetworkConfig = field(
        default_factory=lambda: NetworkConfig(bandwidth_bytes_per_s=60e6)
    )

    @property
    def model_bytes(self) -> int:
        return self.num_keys * self.embedding_dim * 4

    def server_config(self, num_nodes: int = 1, **overrides) -> ServerConfig:
        defaults = dict(
            num_nodes=num_nodes,
            embedding_dim=self.embedding_dim,
            pmem_capacity_bytes=64 << 30,
        )
        defaults.update(overrides)
        return ServerConfig(**defaults)

    def cluster_config(self, num_workers: int, **overrides) -> ClusterConfig:
        defaults = dict(
            num_workers=num_workers,
            batch_size=self.batch_size,
            network=self.network,
        )
        defaults.update(overrides)
        return ClusterConfig(**defaults)

    def workload_config(self, skew: float = 1.0) -> WorkloadConfig:
        return WorkloadConfig(
            num_keys=self.num_keys,
            features_per_sample=self.features_per_sample,
            skew=skew,
            seed=self.workload_seed,
        )

    def cache_bytes_for_paper_mb(self, paper_mb: float) -> int:
        """Convert 'X MB of a 500 GB model' to scaled cache bytes."""
        fraction = paper_mb / (PAPER_MODEL_GB * 1024.0)
        return max(1, int(fraction * self.model_bytes))

    def cache_config(self, paper_mb: float = 2048.0, **overrides) -> CacheConfig:
        """Cache config at a paper-equivalent size (default: the 2 GB
        operating point of Sections VI-C3 onward)."""
        defaults = dict(capacity_bytes=self.cache_bytes_for_paper_mb(paper_mb))
        defaults.update(overrides)
        return CacheConfig(**defaults)

    def iterations(self, num_workers: int) -> int:
        """Synchronous steps for one epoch with ``num_workers`` workers."""
        return max(1, self.epoch_worker_iterations // num_workers)


DEFAULT_PROFILE = BenchProfile()
