"""Unit tests for the lookahead prefetch pipeline."""

import numpy as np
import pytest

from repro.config import CacheConfig, PrefetchConfig, ServerConfig
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.prefetch import PrefetchPipeline
from repro.errors import ConfigError, ServerError
from repro.simulation.clock import SimClock

DIM = 8


def make_backend(clock=None):
    return OpenEmbeddingServer(
        ServerConfig(num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 22),
        CacheConfig(capacity_bytes=1 << 18),
    )


def stream(batch_id: int) -> np.ndarray:
    """Deterministic toy key stream: batch b touches keys 2b .. 2b+3."""
    return np.arange(2 * batch_id, 2 * batch_id + 4).reshape(2, 2)


def make_pipeline(lookahead=2, patch=True, cap=None, **kwargs):
    backend = make_backend()
    config = PrefetchConfig(
        lookahead=lookahead, patch=patch, max_buffer_entries=cap
    )
    return PrefetchPipeline(backend, config, DIM, stream, **kwargs), backend


class TestConfig:
    def test_lookahead_must_be_non_negative(self):
        with pytest.raises(ConfigError):
            PrefetchConfig(lookahead=-1)

    def test_buffer_cap_must_be_positive(self):
        with pytest.raises(ConfigError):
            PrefetchConfig(lookahead=1, max_buffer_entries=0)

    def test_enabled(self):
        assert not PrefetchConfig(lookahead=0).enabled
        assert PrefetchConfig(lookahead=1).enabled

    def test_pipeline_rejects_bad_dim(self):
        backend = make_backend()
        with pytest.raises(ConfigError):
            PrefetchPipeline(backend, PrefetchConfig(), 0, stream)

    def test_pipeline_rejects_negative_gpu_time(self):
        backend = make_backend()
        with pytest.raises(ConfigError):
            PrefetchPipeline(
                backend, PrefetchConfig(), DIM, stream, gpu_batch_time_s=-1.0
            )

    def test_pipeline_requires_full_backend(self):
        class NotABackend:
            pass

        with pytest.raises(TypeError):
            PrefetchPipeline(NotABackend(), PrefetchConfig(), DIM, stream)


class TestStepProtocol:
    def test_gather_requires_begin_batch(self):
        pipeline, _ = make_pipeline()
        with pytest.raises(ServerError, match="not buffered"):
            pipeline.gather(stream(0))

    def test_gather_rejects_non_matrix(self):
        pipeline, _ = make_pipeline()
        pipeline.begin_batch(0, stream(0))
        with pytest.raises(ConfigError, match="2-D"):
            pipeline.gather(stream(0).reshape(-1))

    def test_gather_matches_direct_pull(self):
        pipeline, backend = make_pipeline()
        reference = make_backend()
        keys = stream(0)
        pipeline.begin_batch(0, keys)
        rows = pipeline.gather(keys)
        expected = reference.pull(keys.reshape(-1).tolist(), 0).weights
        np.testing.assert_array_equal(
            rows, expected.reshape(*keys.shape, DIM)
        )

    def test_prefetch_fills_next_window(self):
        pipeline, _ = make_pipeline(lookahead=2)
        pipeline.begin_batch(0, stream(0))
        pipeline.gather(stream(0))
        pipeline.run_overlap(0)
        # window = keys of batches 1 and 2 = {2..7}; {2,3} already
        # buffered from batch 0, so only {4..7} are prefetched.
        assert pipeline.stats.prefetch_keys == 4
        assert pipeline.stats.deduped_keys == 2
        pipeline.end_batch(0)
        pipeline.begin_batch(1, stream(1))
        assert pipeline.stats.demand_keys == 4  # batch 0 only

    def test_push_invalidates_buffered_keys(self):
        pipeline, _ = make_pipeline(lookahead=1, patch=False)
        pipeline.begin_batch(0, stream(0))
        pipeline.run_overlap(0)
        grads = np.ones((4, DIM), dtype=np.float32)
        pipeline.push([2, 3, 4, 5], grads, 0)
        assert pipeline.stats.invalidated_keys > 0
        pipeline.end_batch(0)
        pipeline.validate()  # no stale key survives in the buffer
        # lazily re-pulled on the next demand round
        pipeline.begin_batch(1, stream(1))
        assert pipeline.stats.demand_keys > 4

    def test_eager_patch_restores_window_keys(self):
        pipeline, _ = make_pipeline(lookahead=1, patch=True)
        pipeline.begin_batch(0, stream(0))
        pipeline.run_overlap(0)
        pipeline.push([2, 3], np.ones((2, DIM), dtype=np.float32), 0)
        pipeline.end_batch(0)
        assert pipeline.stats.patched_keys == 2
        pipeline.validate()
        # batch 1 = keys {2..5}, all restored or prefetched: no demand.
        before = pipeline.stats.demand_keys
        pipeline.begin_batch(1, stream(1))
        assert pipeline.stats.demand_keys == before

    def test_buffer_pruned_to_window(self):
        pipeline, _ = make_pipeline(lookahead=1)
        pipeline.begin_batch(0, stream(0))
        pipeline.run_overlap(0)
        pipeline.end_batch(0)
        # window of batch 0 is batch 1's keys {2..5}
        assert pipeline.buffered_keys == 4

    def test_buffer_cap_limits_prefetch(self):
        pipeline, _ = make_pipeline(lookahead=4, cap=6)
        pipeline.begin_batch(0, stream(0))
        pipeline.run_overlap(0)
        assert pipeline.buffered_keys <= 6

    def test_horizon_clips_window(self):
        pipeline, backend = make_pipeline(lookahead=8)
        pipeline.horizon = 1
        pipeline.begin_batch(0, stream(0))
        pipeline.run_overlap(0)
        pipeline.end_batch(0)
        # only batch 1's keys may exist beyond batch 0's
        assert backend.num_entries == 6

    def test_lookahead_zero_is_serial(self):
        pipeline, _ = make_pipeline(lookahead=0)
        pipeline.begin_batch(0, stream(0))
        pipeline.run_overlap(0)
        pipeline.end_batch(0)
        assert pipeline.stats.prefetch_keys == 0
        assert pipeline.buffered_keys == 0  # nothing survives the batch

    def test_validate_raises_on_stale_buffer(self):
        pipeline, _ = make_pipeline(lookahead=1)
        pipeline.begin_batch(0, stream(0))
        pipeline._pushed.add(2)  # simulate a missed invalidation
        with pytest.raises(ServerError, match="staleness"):
            pipeline.validate()


class TestOverlapTiming:
    def test_overlap_charges_max_of_ps_and_gpu(self):
        clock = SimClock()
        backend = make_backend()
        pipeline = PrefetchPipeline(
            backend,
            PrefetchConfig(lookahead=2),
            DIM,
            stream,
            clock=clock,
            gpu_batch_time_s=0.5,
        )
        pipeline.begin_batch(0, stream(0))
        start = clock.now
        pipeline.run_overlap(0)
        # The local backend charges no clock time, so the window costs
        # exactly the GPU slice and all PS work is "hidden".
        assert clock.now == pytest.approx(start + 0.5)

    def test_serial_mode_charges_gpu_after_maintain(self):
        clock = SimClock()
        backend = make_backend()
        pipeline = PrefetchPipeline(
            backend,
            PrefetchConfig(lookahead=0),
            DIM,
            stream,
            clock=clock,
            gpu_batch_time_s=0.25,
        )
        pipeline.begin_batch(0, stream(0))
        pipeline.run_overlap(0)
        assert clock.now == pytest.approx(0.25)
        assert pipeline.stats.overlap_hidden_seconds == 0.0


class TestClockPrimitive:
    def test_advance_overlapping_hidden(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance_overlapping(4.0, 3.0)  # ended at 7.0, in the past
        assert clock.now == 10.0

    def test_advance_overlapping_extends(self):
        clock = SimClock()
        clock.advance(2.0)
        clock.advance_overlapping(1.0, 5.0)
        assert clock.now == 6.0

    def test_advance_overlapping_rejects_future_start(self):
        from repro.errors import ClockError

        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance_overlapping(1.0, 1.0)

    def test_advance_overlapping_rejects_negative(self):
        from repro.errors import ClockError

        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance_overlapping(0.0, -1.0)
