"""Synchronous DLRM training simulation (the evaluation's engine).

A :class:`TrainingSimulator` couples

* a **functional backend** — the real cache/PS data structures running
  in metadata-only mode, producing exact hit/miss/flush/eviction
  streams for the configured workload, and
* the **cost model** (:class:`repro.simulation.cluster.PSCostModel`) —
  which prices each phase of every iteration in simulated seconds,

plus checkpoint scheduling on the simulated clock. Epoch times,
overhead percentages and miss rates for Figures 3 and 6-13 all come out
of this class.

Scaling note: benchmarks run a scaled-down model (fewer keys, smaller
batches) with the paper's skew preserved; checkpoint intervals are
specified as a fraction of the measured epoch so that "a checkpoint
every 20 minutes of a 5-hour epoch" keeps its meaning at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config import (
    CacheConfig,
    CheckpointConfig,
    CheckpointMode,
    ClusterConfig,
    PrefetchConfig,
    ServerConfig,
)
from repro.core.backend import aggregate_maintain
from repro.core.ps_node import PSNode
from repro.core.sharding import make_partitioner
from repro.baselines.dram_ps import DRAMPSNode
from repro.baselines.pmem_hash import PMemHashNode
from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry, collect_bundle
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.calibration import Calibration, DEFAULT_CALIBRATION
from repro.simulation.clock import PeriodicTimer, SimClock
from repro.simulation.cluster import IterationCounts, PSCostModel, SystemKind
from repro.simulation.device import PMEM_SPEC
from repro.simulation.metrics import RequestTrace
from repro.workload.generator import WorkloadGenerator


@dataclass
class TrainingRunResult:
    """Outcome of one simulated training run."""

    system: SystemKind
    num_workers: int
    iterations: int
    sim_seconds: float
    #: per-phase totals over the whole run
    net_seconds: float = 0.0
    pull_service_seconds: float = 0.0
    gpu_seconds: float = 0.0
    maintain_inline_seconds: float = 0.0
    maintain_deferred_seconds: float = 0.0
    push_service_seconds: float = 0.0
    checkpoint_pause_seconds: float = 0.0
    checkpoints_completed: int = 0
    #: live-reshard pause(s) and volume (``--reshard-at`` runs)
    migration_pause_seconds: float = 0.0
    migration_keys_moved: int = 0
    migration_keys_total: int = 0
    migrations_completed: int = 0
    miss_rate: float = 0.0
    total_requests: int = 0
    #: lookahead pulls issued inside the overlap window
    prefetch_requests: int = 0
    #: simulated seconds of prefetch work priced into the overlap slot
    prefetch_overlapped_seconds: float = 0.0
    #: MTTF-driven node kills that fired during the run
    failures_injected: int = 0
    #: kills answered by hot failover (``replicas=2``)
    failovers_completed: int = 0
    #: client-visible outage time across all failovers (lease + switch)
    failover_pause_seconds: float = 0.0
    #: background re-replication work (overlapped, not a pause)
    rereplication_seconds: float = 0.0
    #: kills answered by checkpoint recovery (``replicas=1``)
    recovery_pause_seconds: float = 0.0
    trace: RequestTrace | None = None

    @property
    def seconds_per_iteration(self) -> float:
        return self.sim_seconds / self.iterations if self.iterations else 0.0


class TrainingSimulator:
    """Simulates synchronous data-parallel DLRM training on one system.

    Args:
        system: which Table III system to simulate.
        cluster: workers / batch size / GPU time / threads / network.
        server: embedding dim, PS node count.
        cache: DRAM cache config (hybrids only).
        checkpoint: checkpoint mode and interval in *simulated seconds*
            (use :meth:`interval_for_epoch_fraction` to scale).
        workload: key-access generator.
        prefetch: lookahead prefetch over the pull path
            (PMem-OE with the pipelined cache only): demand pulls on
            the critical path shrink to buffer misses, the next
            ``lookahead`` batches' deduplicated keys are pulled inside
            the overlap slot, and pushed keys are invalidated/patched
            exactly as in :class:`repro.dlrm.prefetch.PrefetchPipeline`.
        use_cache: Figure 9 ablation switch (hybrids only).
        reshard_at: perform one live reshard after this many completed
            iterations (elasticity ablation). The pause is priced by
            :meth:`repro.simulation.cluster.PSCostModel.price_migration`
            over the keys whose owner changes between the current and
            target partitioner (``server.partitioner`` decides ring vs
            modulo — the modulo run shows the near-total remap a naive
            partitioner costs); subsequent iterations are priced on the
            new node count.
        reshard_to: target PS node count of the reshard (default:
            ``server.num_nodes + 1``, i.e. scale-out by one).
        record_trace: keep a per-request timestamp trace (Figure 2).
        tracer: span sink on the *simulated* clock. When enabled, every
            iteration emits phase spans on per-layer tracks (worker /
            gpu / maintainer / checkpoint), so the exported Chrome
            trace shows deferred maintenance and prefetch riding under
            GPU compute — Figure 7 as a timeline.
        registry: labeled-metrics registry. When given, the simulator
            feeds per-phase latency histograms
            (``repro_pull_latency_seconds`` etc.), cumulative
            ``repro_phase_seconds_total{phase=...}`` counters, and — at
            run end — the backend's stat bundle via
            :func:`repro.obs.registry.collect_bundle`.
    """

    def __init__(
        self,
        system: SystemKind,
        cluster: ClusterConfig | None = None,
        server: ServerConfig | None = None,
        cache: CacheConfig | None = None,
        checkpoint: CheckpointConfig | None = None,
        workload: WorkloadGenerator | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        *,
        prefetch: PrefetchConfig | None = None,
        use_cache: bool = True,
        reshard_at: int | None = None,
        reshard_to: int | None = None,
        mttf_s: float | None = None,
        mttf_seed: int = 0,
        record_trace: bool = False,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.system = system
        self.cluster = cluster or ClusterConfig()
        self.server = server or ServerConfig()
        self.cache_config = cache or CacheConfig()
        self.checkpoint_config = checkpoint or CheckpointConfig.none()
        self.workload = workload or WorkloadGenerator()
        self.cal = calibration
        self.use_cache = use_cache
        self.clock = SimClock()
        self.trace = RequestTrace(enabled=record_trace)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None and tracer.clock is None:
            # Simulated runs timestamp spans on the simulated clock so
            # exported timelines line up with priced phase durations.
            tracer.clock = self.clock
        self.registry = registry
        pipelined = self.cache_config.pipelined and system == SystemKind.PMEM_OE
        self.cost_model = PSCostModel(
            system,
            self.cluster,
            self.server,
            calibration,
            pipelined=pipelined,
            use_cache=use_cache,
            maintainer_threads=self.cache_config.maintainer_threads,
        )
        self.prefetch = prefetch or PrefetchConfig()
        if self.prefetch.enabled:
            if system != SystemKind.PMEM_OE or not pipelined or not use_cache:
                raise ConfigError(
                    "prefetch requires the PMem-OE system with its "
                    "pipelined cache enabled (the overlap slot the "
                    "lookahead pulls hide in)"
                )
        self.backend = self._build_backend()
        self._dirty_since_ckpt: set[int] = set()
        self._key_stream: list[list[int]] = []
        self._buffered: set[int] = set()
        self._keys_seen: set[int] = set()
        self.reshard_at = reshard_at
        self.reshard_to = reshard_to
        self._resharded = False
        if reshard_at is not None:
            if reshard_at < 1:
                raise ConfigError(
                    f"reshard_at must be >= 1, got {reshard_at}"
                )
            if self.reshard_to is None:
                self.reshard_to = self.server.num_nodes + 1
            if self.reshard_to < 1:
                raise ConfigError(
                    f"reshard_to must be >= 1, got {self.reshard_to}"
                )
            if self.reshard_to == self.server.num_nodes:
                raise ConfigError(
                    "reshard_to equals the current node count "
                    f"({self.reshard_to}); nothing to migrate"
                )
        elif reshard_to is not None:
            raise ConfigError("reshard_to requires reshard_at")
        if mttf_s is not None and mttf_s <= 0:
            raise ConfigError(f"mttf_s must be positive, got {mttf_s}")
        self.mttf_s = mttf_s
        self.mttf_seed = mttf_seed
        self._kill_injector = None
        self._validate_checkpoint_mode()

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, iterations: int) -> TrainingRunResult:
        """Simulate ``iterations`` synchronous steps and return totals."""
        if iterations <= 0:
            raise ConfigError(f"iterations must be >= 1, got {iterations}")
        result = TrainingRunResult(
            system=self.system,
            num_workers=self.cluster.num_workers,
            iterations=iterations,
            sim_seconds=0.0,
            trace=self.trace if self.trace.enabled else None,
        )
        timer = None
        if self.checkpoint_config.mode != CheckpointMode.NONE:
            timer = PeriodicTimer(self.checkpoint_config.interval_seconds)

        for batch_id in range(iterations):
            counts = self._run_functional_iteration(batch_id, iterations - 1)
            self._keys_seen.update(self._key_stream[batch_id])
            timing = self.cost_model.price_iteration(counts)
            start = self.clock.now
            self.trace.record(start, RequestTrace.PULL, counts.requests)
            overlap_at = start + timing.net_pull + timing.pull_service
            if counts.prefetch_requests:
                self.trace.record(
                    overlap_at, RequestTrace.PULL, counts.prefetch_requests
                )
            push_at = (
                overlap_at
                + max(
                    timing.gpu,
                    timing.maintain_deferred + timing.prefetch_overlapped,
                )
                + timing.maintain_inline
            )
            push_requests = (
                counts.requests
                if counts.push_requests is None
                else counts.push_requests
            )
            self.trace.record(push_at, RequestTrace.UPDATE, push_requests)
            if self.tracer.enabled:
                self._emit_iteration_spans(
                    batch_id, counts, timing, start, overlap_at, push_at
                )
            if self.registry is not None:
                self._observe_iteration(timing)
            self.clock.advance(timing.total)

            result.net_seconds += timing.net_pull + timing.net_push
            result.pull_service_seconds += timing.pull_service
            result.gpu_seconds += timing.gpu
            result.maintain_inline_seconds += timing.maintain_inline
            result.maintain_deferred_seconds += timing.maintain_deferred
            result.push_service_seconds += timing.push_service
            result.total_requests += counts.requests
            result.prefetch_requests += counts.prefetch_requests
            result.prefetch_overlapped_seconds += timing.prefetch_overlapped

            if timer is not None and timer.due(self.clock.now):
                ckpt_at = self.clock.now
                pause = self._execute_checkpoint(batch_id)
                self.clock.advance(pause)
                result.checkpoint_pause_seconds += pause
                result.checkpoints_completed += 1
                if self.tracer.enabled:
                    self.tracer.add_span(
                        "checkpoint.pause",
                        start=ckpt_at,
                        duration=pause,
                        track="checkpoint",
                        batch=batch_id,
                        mode=self.checkpoint_config.mode.value,
                    )
                if self.registry is not None:
                    self.registry.histogram(
                        "repro_checkpoint_pause_seconds"
                    ).observe(pause)
                    self.registry.counter(
                        "repro_phase_seconds_total",
                        {"phase": "checkpoint_pause"},
                    ).add(pause)

            if (
                self.reshard_at is not None
                and not self._resharded
                and batch_id + 1 >= self.reshard_at
            ):
                self._execute_reshard(batch_id, result)

            if self.mttf_s is not None:
                self._poll_failures(batch_id, iterations, result)

        result.sim_seconds = self.clock.now
        result.miss_rate = self._miss_rate()
        if self.registry is not None:
            collect_bundle(
                self.registry,
                self.backend.metrics,
                {"system": self.system.value},
            )
        return result

    def _emit_iteration_spans(
        self, batch_id, counts, timing, start, overlap_at, push_at
    ) -> None:
        """Emit one iteration's phase layout as per-track spans.

        The worker track carries the critical path (pull, inline
        maintenance remainder, push); the gpu and maintainer tracks
        carry the overlap window's concurrent work — in a Chrome-trace
        viewer the deferred maintenance and lookahead prefetch visibly
        ride underneath the GPU-compute span (paper Figure 7).
        """
        tracer = self.tracer
        pull = timing.net_pull + timing.pull_service
        if pull > 0:
            tracer.add_span(
                "iter.pull",
                start=start,
                duration=pull,
                track="worker",
                batch=batch_id,
                requests=counts.requests,
                hits=counts.hits,
                misses=counts.misses,
            )
        if timing.gpu > 0:
            tracer.add_span(
                "gpu.compute",
                start=overlap_at,
                duration=timing.gpu,
                track="gpu",
                batch=batch_id,
            )
        if timing.maintain_deferred > 0:
            tracer.add_span(
                "maintain.deferred",
                start=overlap_at,
                duration=timing.maintain_deferred,
                track="maintainer",
                batch=batch_id,
                processed=counts.maintain_processed,
                flushes=counts.maintain_flushes,
            )
        if timing.prefetch_overlapped > 0:
            tracer.add_span(
                "prefetch.pull",
                start=overlap_at + timing.maintain_deferred,
                duration=timing.prefetch_overlapped,
                track="maintainer",
                batch=batch_id,
                keys=counts.prefetch_requests,
            )
        if timing.maintain_inline > 0:
            middle = max(
                timing.gpu,
                timing.maintain_deferred + timing.prefetch_overlapped,
            )
            tracer.add_span(
                "maintain.inline",
                start=overlap_at + middle,
                duration=timing.maintain_inline,
                track="worker",
                batch=batch_id,
                processed=counts.maintain_processed,
            )
        push = timing.net_push + timing.push_service
        if push > 0:
            tracer.add_span(
                "iter.push",
                start=push_at,
                duration=push,
                track="worker",
                batch=batch_id,
            )

    def _observe_iteration(self, timing) -> None:
        """Feed one iteration's phase prices into the registry."""
        registry = self.registry
        registry.histogram("repro_pull_latency_seconds").observe(
            timing.net_pull + timing.pull_service
        )
        registry.histogram("repro_push_latency_seconds").observe(
            timing.net_push + timing.push_service
        )
        registry.histogram("repro_maintain_latency_seconds").observe(
            timing.maintain_deferred + timing.maintain_inline
        )
        registry.histogram("repro_iteration_seconds").observe(timing.total)
        for phase, seconds in (
            ("net_pull", timing.net_pull),
            ("pull_service", timing.pull_service),
            ("gpu", timing.gpu),
            ("maintain_deferred", timing.maintain_deferred),
            ("maintain_inline", timing.maintain_inline),
            ("prefetch_overlapped", timing.prefetch_overlapped),
            ("net_push", timing.net_push),
            ("push_service", timing.push_service),
        ):
            if seconds:
                registry.counter(
                    "repro_phase_seconds_total", {"phase": phase}
                ).add(seconds)

    @staticmethod
    def interval_for_epoch_fraction(
        epoch_seconds: float, paper_interval_minutes: float, paper_epoch_hours: float
    ) -> float:
        """Scale a paper checkpoint interval to a simulated epoch.

        "Every 20 minutes of a 5.33-hour epoch" becomes the same
        *fraction* of whatever the simulated epoch lasts.
        """
        if epoch_seconds <= 0 or paper_interval_minutes <= 0 or paper_epoch_hours <= 0:
            raise ConfigError("epoch/interval inputs must be positive")
        fraction = (paper_interval_minutes / 60.0) / paper_epoch_hours
        return epoch_seconds * fraction

    # ------------------------------------------------------------------
    # functional iteration
    # ------------------------------------------------------------------

    def _batch_keys(self, batch_id: int) -> list[int]:
        """Flat key list (duplicates kept) of global batch ``batch_id``.

        Batches are sampled lazily in order, so the generated stream is
        identical whether or not future batches are peeked early.
        """
        while len(self._key_stream) <= batch_id:
            keys: list[int] = []
            for batch in self.workload.sample_worker_batches(
                self.cluster.num_workers, self.cluster.batch_size
            ):
                keys.extend(batch.tolist())
            self._key_stream.append(keys)
        return self._key_stream[batch_id]

    def _run_functional_iteration(
        self, batch_id: int, horizon: int
    ) -> IterationCounts:
        keys = self._batch_keys(batch_id)
        if self.prefetch.enabled:
            return self._run_prefetch_iteration(batch_id, keys, horizon)
        pull = self.backend.pull(keys, batch_id)
        maintain = aggregate_maintain(self.backend.maintain(batch_id))
        self.backend.push(keys, None, batch_id)
        if self.checkpoint_config.mode == CheckpointMode.INCREMENTAL:
            self._dirty_since_ckpt.update(keys)
        loads = maintain.loads
        flushes = maintain.flushes
        evictions = maintain.evictions
        processed = maintain.processed
        if not self.use_cache and self.system in (
            SystemKind.PMEM_OE,
            SystemKind.ORI_CACHE,
        ):
            # Cache-disabled ablation: hit/miss accounting is moot; the
            # cost model treats every request as a PMem access.
            return IterationCounts(
                requests=len(keys),
                hits=0,
                misses=len(keys) - pull.created,
                created=pull.created,
                maintain_processed=processed,
                maintain_loads=0,
                maintain_flushes=0,
                maintain_evictions=0,
            )
        return IterationCounts(
            requests=len(keys),
            hits=pull.hits,
            misses=pull.misses,
            created=pull.created,
            maintain_processed=processed,
            maintain_loads=loads,
            maintain_flushes=flushes,
            maintain_evictions=evictions,
        )

    def _run_prefetch_iteration(
        self, batch_id: int, keys: list[int], horizon: int
    ) -> IterationCounts:
        """One iteration through the lookahead-buffer discipline.

        Mirrors :class:`repro.dlrm.prefetch.PrefetchPipeline` step for
        step on the metadata backend — demand pulls tag ``batch_id``,
        prefetch/patch pulls tag ``batch_id + 1`` after the maintenance
        round, pushes invalidate, eager patching restores — so the
        priced op streams are exactly the functional pipeline's.
        """
        unique: list[int] = []
        seen: set[int] = set()
        for key in keys:
            if key not in seen:
                seen.add(key)
                unique.append(key)
        demand = [k for k in unique if k not in self._buffered]
        pull = self.backend.pull(demand, batch_id)
        self._buffered.update(demand)
        maintain = aggregate_maintain(self.backend.maintain(batch_id))

        window: set[int] = set()
        last = min(batch_id + self.prefetch.lookahead, horizon)
        for future in range(batch_id + 1, last + 1):
            window.update(self._batch_keys(future))
        candidates = sorted(window - self._buffered)
        cap = self.prefetch.max_buffer_entries
        if cap is not None:
            candidates = candidates[: max(0, cap - len(self._buffered))]
        pf_requests = pf_hits = pf_misses = pf_created = 0
        if candidates:
            pf = self.backend.pull(candidates, batch_id + 1)
            self._buffered.update(candidates)
            pf_requests += len(candidates)
            pf_hits += pf.hits
            pf_misses += pf.misses
            pf_created += pf.created

        self.backend.push(keys, None, batch_id)
        if self.checkpoint_config.mode == CheckpointMode.INCREMENTAL:
            self._dirty_since_ckpt.update(keys)

        pushed = seen
        self._buffered -= pushed
        if self.prefetch.patch:
            to_patch = sorted(pushed & window)
            if to_patch:
                patch = self.backend.pull(to_patch, batch_id + 1)
                self._buffered.update(to_patch)
                pf_requests += len(to_patch)
                pf_hits += patch.hits
                pf_misses += patch.misses
                pf_created += patch.created
        self._buffered &= window

        return IterationCounts(
            requests=len(demand),
            hits=pull.hits,
            misses=pull.misses,
            created=pull.created,
            maintain_processed=maintain.processed,
            maintain_loads=maintain.loads,
            maintain_flushes=maintain.flushes,
            maintain_evictions=maintain.evictions,
            prefetch_requests=pf_requests,
            prefetch_hits=pf_hits,
            prefetch_misses=pf_misses,
            prefetch_created=pf_created,
            push_requests=len(keys),
        )

    # ------------------------------------------------------------------
    # live resharding
    # ------------------------------------------------------------------

    def _execute_reshard(self, batch_id: int, result: TrainingRunResult) -> None:
        """Price one live reshard and re-shard the cost model.

        Follows the quiesce-at-barrier protocol of
        :class:`repro.core.migration.ShardMigrator`: training pauses,
        the dirty cache is flushed (the barrier checkpoint), every key
        whose owner changes between the old and new partitioner is read
        from source PMem, shipped, written on the target and indexed,
        then training resumes on the new node count. With the ring
        partitioner the moved set is ~``1/m`` of resident keys; with
        modulo it is ~``(m-1)/m`` — the contrast ``--reshard-at``
        exists to show.
        """
        old = make_partitioner(
            self.server.partitioner,
            self.server.num_nodes,
            self.server.ring_vnodes,
        )
        new = make_partitioner(
            self.server.partitioner,
            self.reshard_to,
            self.server.ring_vnodes,
        )
        keys_total = len(self._keys_seen)
        keys_moved = sum(
            1 for key in self._keys_seen if old.node_of(key) != new.node_of(key)
        )
        timing = self.cost_model.price_migration(
            keys_moved=keys_moved,
            flushed_entries=self.backend.num_entries,
        )
        start = self.clock.now
        self.clock.advance(timing.total)
        result.migration_pause_seconds += timing.total
        result.migration_keys_moved += keys_moved
        result.migration_keys_total = keys_total
        result.migrations_completed += 1
        self._resharded = True
        # Iterations after the reshard are priced on the new shard count.
        self.server = replace(self.server, num_nodes=self.reshard_to)
        self.cost_model = PSCostModel(
            self.system,
            self.cluster,
            self.server,
            self.cal,
            pipelined=self.cost_model.pipelined,
            use_cache=self.use_cache,
            maintainer_threads=self.cache_config.maintainer_threads,
        )
        if self.tracer.enabled:
            self.tracer.add_span(
                "migration.pause",
                start=start,
                duration=timing.total,
                track="migration",
                batch=batch_id,
                partitioner=self.server.partitioner,
                keys_moved=keys_moved,
                keys_total=keys_total,
                to_nodes=self.reshard_to,
            )
        if self.registry is not None:
            self.registry.histogram(
                "repro_migration_pause_seconds"
            ).observe(timing.total)
            self.registry.counter(
                "repro_phase_seconds_total", {"phase": "migration_pause"}
            ).add(timing.total)
            self.registry.counter("repro_migration_keys_moved_total").add(
                keys_moved
            )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def _poll_failures(
        self, batch_id: int, iterations: int, result: TrainingRunResult
    ) -> None:
        """Fire any MTTF-scheduled node kills that are now due.

        The Poisson schedule is sampled lazily after the first priced
        iteration (the horizon needs an iteration-time estimate) and
        polled between iterations — a kill therefore lands mid-run,
        exactly where the chaos soak drops them on the functional path.
        """
        from repro.failure.injection import NodeKillInjector, NodeKillSchedule

        if self._kill_injector is None:
            per_iter = self.clock.now / (batch_id + 1)
            horizon = max(per_iter * iterations * 3.0, self.mttf_s * 3.0)
            self._kill_injector = NodeKillInjector(
                NodeKillSchedule.poisson(
                    self.mttf_s,
                    horizon,
                    self.server.num_nodes,
                    seed=self.mttf_seed,
                )
            )
        for __, victim in self._kill_injector.due(self.clock.now):
            self._execute_failure(victim, result)

    def _execute_failure(self, victim: int, result: TrainingRunResult) -> None:
        """Price one node death: hot failover or checkpoint recovery.

        ``replicas=2`` pays the bounded unavailability window (lease
        wait-out + role switch) and queues background re-replication;
        ``replicas=1`` pays the full checkpoint-recovery rebuild — the
        paper's ~380 s at 2.1 B entries, scaled to this run's residency.
        """
        result.failures_injected += 1
        entries = max(1, len(self._keys_seen) // max(1, self.server.num_nodes))
        at = self.clock.now
        if self.server.replicas == 2:
            timing = self.cost_model.price_failover(
                resident_entries=entries, lease_s=self.server.lease_s
            )
            pause = timing.unavailability
            result.failovers_completed += 1
            result.failover_pause_seconds += pause
            result.rereplication_seconds += timing.rereplication
            kind = "failover"
        else:
            from repro.core.recovery import estimate_recovery_seconds

            pause = estimate_recovery_seconds(
                entries=entries,
                versions=entries,
                entry_bytes=self.server.entry_bytes,
                calibration=self.cal,
            )
            result.recovery_pause_seconds += pause
            kind = "recovery"
        self.clock.advance(pause)
        if self.tracer.enabled:
            self.tracer.add_span(
                f"failure.{kind}",
                start=at,
                duration=pause,
                track="failure",
                node=victim,
            )
        if self.registry is not None:
            name = (
                "repro_failover_unavailability_seconds"
                if kind == "failover"
                else "repro_recovery_pause_seconds"
            )
            self.registry.histogram(name).observe(pause)
            self.registry.counter(
                "repro_failures_injected_total", {"node": str(victim)}
            ).add(1)

    def _execute_checkpoint(self, batch_id: int) -> float:
        """Fire one checkpoint; returns the training pause in seconds."""
        mode = self.checkpoint_config.mode
        pause = 0.0
        if mode in (CheckpointMode.BATCH_AWARE, CheckpointMode.SPARSE_ONLY):
            # The sparse snapshot piggybacks on cache maintenance: the
            # request is queued and completion happens inside later
            # maintain() rounds, whose flush traffic is priced in the
            # (overlapped) deferred slot -> no training pause at all.
            if isinstance(self.backend, PSNode):
                if batch_id > self.backend.coordinator.last_completed and (
                    self.backend.coordinator.max_pending() or -1
                ) < batch_id:
                    self.backend.coordinator.request(batch_id)
        elif mode == CheckpointMode.INCREMENTAL:
            # Synchronous incremental dump of the dirty set; when the
            # checkpoint device is the PMem the training system lives
            # on, the dump's writes contend with training I/O.
            dirty = len(self._dirty_since_ckpt)
            eb = self.server.entry_bytes
            dump = dirty * (
                eb / PMEM_SPEC.write_bw + self.cal.incremental_entry_dump_s
            )
            if self.system in (SystemKind.PMEM_OE, SystemKind.ORI_CACHE):
                dump *= self.cal.incremental_interference_factor
            else:
                dump *= self.cal.incremental_dram_ps_factor
            pause += dump
            self._dirty_since_ckpt.clear()
        if self.checkpoint_config.include_dense:
            pause += self._dense_pause()
        return pause

    def _dense_pause(self) -> float:
        """TensorFlow's dense-model checkpoint: one GPU dumps the MLP.

        The dense part is <1 % of the model (Section VI-A); its dump
        goes over the network to backup storage and pauses training,
        independent of worker count (only one GPU dumps).
        """
        dense_bytes = self.cal.dense_model_fraction * self._model_bytes()
        return dense_bytes / self.cal.dense_ckpt_bw

    def _model_bytes(self) -> int:
        return self.workload.config.num_keys * self.server.entry_bytes

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _build_backend(self):
        if self.system in (SystemKind.PMEM_OE, SystemKind.ORI_CACHE):
            return PSNode(
                0,
                self.server,
                self.cache_config,
                metadata_only=True,
            )
        if self.system in (SystemKind.DRAM_PS, SystemKind.TF_PS):
            return DRAMPSNode(self.server, metadata_only=True)
        if self.system == SystemKind.PMEM_HASH:
            return PMemHashNode(self.server, metadata_only=True)
        raise ConfigError(f"no backend for system {self.system}")

    def _validate_checkpoint_mode(self) -> None:
        mode = self.checkpoint_config.mode
        if mode in (CheckpointMode.BATCH_AWARE, CheckpointMode.SPARSE_ONLY):
            if self.system not in (SystemKind.PMEM_OE,):
                raise ConfigError(
                    f"{mode.value} checkpointing requires the PMem-OE system "
                    f"(co-designed with its pipelined cache), got {self.system}"
                )

    def _miss_rate(self) -> float:
        metrics = self.backend.metrics
        accesses = metrics.cache.hits + metrics.cache.misses
        if accesses == 0:
            return 0.0
        return metrics.cache.misses / accesses
