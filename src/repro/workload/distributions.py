"""Access-skew distributions over embedding keys.

Two families:

* :class:`BandedSkewDistribution` — piecewise-uniform over rank bands,
  calibrated so the generated trace reproduces Table II exactly
  (top 0.05 % of entries -> 85.7 % of accesses, etc.). A *temperature*
  knob produces the "more skew" / "less skew" variants of Figure 11
  while keeping the total access count fixed, as the paper does.
* :class:`ExponentialRankDistribution` — pure exponential decay over
  sorted ranks, the model the paper fits in Figure 10.

Ranks are mapped to key ids through a deterministic pseudo-random
permutation so that hot keys are scattered across the id (and therefore
shard) space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.sharding import mix64
from repro.errors import ConfigError

#: (fraction of keys, fraction of accesses) per band, head first — the
#: increments of the paper's Table II plus the residual tail.
TABLE2_BANDS: tuple[tuple[float, float], ...] = (
    (0.0005, 0.857),  # top 0.05 %      -> 85.7 % cumulative
    (0.0005, 0.038),  # next, to 0.1 %  -> 89.5 %
    (0.0090, 0.062),  # next, to 1 %    -> 95.7 %
    (0.9900, 0.043),  # remaining 99 %  ->  4.3 %
)


class RankPermutation:
    """Deterministic bijection rank <-> key id over ``[0, n)``.

    Uses a fixed random permutation derived from the seed; hot ranks
    land on uniformly scattered key ids.
    """

    def __init__(self, num_keys: int, seed: int = 0):
        if num_keys <= 0:
            raise ConfigError(f"num_keys must be >= 1, got {num_keys}")
        rng = np.random.default_rng((seed, 0xC0FFEE))
        self._rank_to_key = rng.permutation(num_keys)

    def keys_for_ranks(self, ranks: np.ndarray) -> np.ndarray:
        return self._rank_to_key[ranks]

    @property
    def num_keys(self) -> int:
        return len(self._rank_to_key)


class BandedSkewDistribution:
    """Piecewise-uniform rank distribution matched to Table II.

    Args:
        num_keys: key-space size.
        bands: ``(key_fraction, access_mass)`` pairs, hottest first;
            fractions and masses must each sum to ~1.
        temperature: skew knob. Band masses are raised to this power and
            renormalised: ``t > 1`` concentrates accesses into the head
            ("more skew"), ``t < 1`` spreads them out ("less skew"),
            ``t = 1`` reproduces the bands exactly.
        seed: RNG seed (sampling and the rank permutation).
    """

    def __init__(
        self,
        num_keys: int,
        bands: tuple[tuple[float, float], ...] = TABLE2_BANDS,
        temperature: float = 1.0,
        seed: int = 0,
    ):
        if temperature <= 0:
            raise ConfigError(f"temperature must be positive, got {temperature}")
        key_fracs = np.array([b[0] for b in bands], dtype=np.float64)
        masses = np.array([b[1] for b in bands], dtype=np.float64)
        if not math.isclose(key_fracs.sum(), 1.0, rel_tol=1e-6):
            raise ConfigError(f"band key fractions sum to {key_fracs.sum()}, want 1")
        if not math.isclose(masses.sum(), 1.0, rel_tol=1e-6):
            raise ConfigError(f"band masses sum to {masses.sum()}, want 1")
        masses = masses**temperature
        masses /= masses.sum()
        self.num_keys = num_keys
        self.temperature = temperature
        self._band_mass = masses
        self._band_cum_mass = np.cumsum(masses)
        # Rank boundaries of each band; every band holds >= 1 rank.
        edges = np.round(np.cumsum(key_fracs) * num_keys).astype(np.int64)
        edges = np.maximum(edges, np.arange(1, len(bands) + 1))
        edges[-1] = num_keys
        self._band_hi = edges
        self._band_lo = np.concatenate([[0], edges[:-1]])
        self._rng = np.random.default_rng((seed, 0xBAD5EED))
        self._permutation = RankPermutation(num_keys, seed)

    def sample_ranks(self, n: int) -> np.ndarray:
        """Draw ``n`` ranks: pick a band by mass, then uniform inside."""
        u = self._rng.random(n)
        band = np.searchsorted(self._band_cum_mass, u, side="right")
        band = np.minimum(band, len(self._band_mass) - 1)
        lo = self._band_lo[band]
        hi = self._band_hi[band]
        return lo + (self._rng.random(n) * (hi - lo)).astype(np.int64)

    def sample_keys(self, n: int) -> np.ndarray:
        """Draw ``n`` key ids."""
        return self._permutation.keys_for_ranks(self.sample_ranks(n))

    def top_fraction_share(self, key_fraction: float) -> float:
        """Analytic access mass of the hottest ``key_fraction`` of keys.

        The Table II check: ``top_fraction_share(0.0005) == 0.857`` at
        temperature 1.
        """
        if not 0 < key_fraction <= 1:
            raise ConfigError(f"key_fraction must be in (0, 1], got {key_fraction}")
        target_rank = key_fraction * self.num_keys
        share = 0.0
        for i, mass in enumerate(self._band_mass):
            lo, hi = self._band_lo[i], self._band_hi[i]
            if target_rank >= hi:
                share += mass
            elif target_rank > lo:
                share += mass * (target_rank - lo) / (hi - lo)
        return share

    def with_temperature(self, temperature: float, seed: int = 0) -> "BandedSkewDistribution":
        """A skew variant over the same key space (Figure 11)."""
        bands = tuple(
            (float(hi - lo) / self.num_keys, float(mass))
            for lo, hi, mass in zip(self._band_lo, self._band_hi, self._band_mass)
        )
        return BandedSkewDistribution(
            self.num_keys, bands, temperature=temperature, seed=seed
        )


class ExponentialRankDistribution:
    """Exponential-decay access distribution: ``P(rank r) ~ exp(-rate * r/N)``.

    This is the model of Figure 10; ``rate`` is the decay parameter the
    paper adjusts to generate more/less skewed workloads.
    """

    def __init__(self, num_keys: int, rate: float, seed: int = 0):
        if num_keys <= 0:
            raise ConfigError(f"num_keys must be >= 1, got {num_keys}")
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        self.num_keys = num_keys
        self.rate = rate
        self._norm = 1.0 - math.exp(-rate)
        self._rng = np.random.default_rng((seed, 0xE4B0))
        self._permutation = RankPermutation(num_keys, seed)

    def sample_ranks(self, n: int) -> np.ndarray:
        """Inverse-CDF sampling of the truncated exponential."""
        u = self._rng.random(n)
        x = -np.log1p(-u * self._norm) / self.rate  # in [0, 1)
        ranks = (x * self.num_keys).astype(np.int64)
        return np.minimum(ranks, self.num_keys - 1)

    def sample_keys(self, n: int) -> np.ndarray:
        return self._permutation.keys_for_ranks(self.sample_ranks(n))

    def top_fraction_share(self, key_fraction: float) -> float:
        """Analytic access mass of the hottest ``key_fraction`` of keys."""
        if not 0 < key_fraction <= 1:
            raise ConfigError(f"key_fraction must be in (0, 1], got {key_fraction}")
        return (1.0 - math.exp(-self.rate * key_fraction)) / self._norm

    def pdf_at_rank_fraction(self, x: np.ndarray) -> np.ndarray:
        """Relative access frequency at rank fraction ``x`` (for plots)."""
        return self.rate * np.exp(-self.rate * np.asarray(x)) / self._norm


def fit_exponential_rate(frequencies: np.ndarray) -> tuple[float, float]:
    """Fit ``freq(r) = a * exp(-b * r/N)`` to sorted access frequencies.

    The paper's Figure 10 method: sort features by access frequency and
    fit an exponential-decay curve. Returns ``(a, b)`` from a linear
    least-squares fit in log space, weighted by frequency so the head —
    where virtually all accesses live — dominates the fit.

    Args:
        frequencies: access counts sorted descending (zeros are skipped).
    """
    freqs = np.asarray(frequencies, dtype=np.float64)
    if freqs.ndim != 1 or len(freqs) < 2:
        raise ConfigError("need a 1-D frequency array with >= 2 entries")
    n = len(freqs)
    mask = freqs > 0
    x = (np.arange(n)[mask]) / n
    y = np.log(freqs[mask])
    w = freqs[mask]
    sw = w.sum()
    mx = (w * x).sum() / sw
    my = (w * y).sum() / sw
    cov = (w * (x - mx) * (y - my)).sum()
    var = (w * (x - mx) ** 2).sum()
    if var == 0:
        raise ConfigError("degenerate frequency data (single rank)")
    slope = cov / var
    intercept = my - slope * mx
    return math.exp(intercept), -slope
