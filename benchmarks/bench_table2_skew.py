"""Table II: access-pattern skew of the DLRM workload.

Generates the synthetic workload trace and reports what share of
accesses the hottest 0.05 % / 0.1 % / 1 % of the key space receives —
the paper's 85.7 % / 89.5 % / 95.7 %.
"""

from benchmarks.conftest import run_once
from repro.simulation.profiles import DEFAULT_PROFILE
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import AccessTraceAnalyzer

PAPER = {0.0005: 0.857, 0.001: 0.895, 0.01: 0.957}


def test_table2_access_skew(benchmark, report):
    profile = DEFAULT_PROFILE

    def run():
        generator = WorkloadGenerator(profile.workload_config())
        stream = generator.access_stream(num_batches=200, batch_size=256)
        analyzer = AccessTraceAnalyzer(stream)
        return analyzer.skew_report(
            key_fractions=tuple(PAPER), of_keyspace=profile.num_keys
        )

    skew = run_once(benchmark, run)
    report.title("table2_skew", "Table II: share of accesses to top entries")
    report.line(f"  trace: {skew.total_accesses} accesses, "
                f"{skew.distinct_keys} distinct of {profile.num_keys} keys")
    for fraction, paper_share in PAPER.items():
        measured = skew.top_shares[fraction]
        report.row(
            f"top {fraction:.2%} of entries",
            f"{paper_share:.1%}",
            f"{measured:.1%}",
        )
        assert abs(measured - paper_share) < 0.02
