"""'PMem-Hash': entries directly in a PMem hash, no DRAM cache.

Section III-B builds this from Intel's libpmemobj concurrent hash map
to show the raw penalty of putting the parameter server on PMem: every
pull reads PMem and every push is a PMem read-modify-write, all on the
critical path.

Observation 2's consistency point is also embodied here: updates land
in place with no version retention, so although every write is durable,
a crash mid-stream leaves a *mix* of batches — there is no batch id to
recover to. :meth:`crash` and :meth:`surviving_state` let tests
demonstrate that the surviving state is not batch-consistent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import ServerConfig
from repro.core.cache import MaintainResult, PullResult
from repro.core.optimizers import PSOptimizer, PSSGD
from repro.core.serving_backend import LookupResult
from repro.errors import CheckpointError, KeyNotFoundError, ServerError
from repro.pmem.pool import PmemPool
from repro.simulation.metrics import Metrics


class PMemHashNode:
    """All-PMem parameter server (no cache, no checkpoint support)."""

    def __init__(
        self,
        server_config: ServerConfig | None = None,
        optimizer: PSOptimizer | None = None,
        metadata_only: bool = False,
        pool: PmemPool | None = None,
    ):
        self.server_config = server_config or ServerConfig()
        self.optimizer = optimizer or PSSGD()
        self.metadata_only = metadata_only
        self.metrics = Metrics()
        dim = self.server_config.embedding_dim
        self.entry_bytes = (dim + self.optimizer.state_width(dim)) * 4
        # Note: not `pool or ...` — an empty PmemPool is falsy (__len__).
        self.pool = (
            pool
            if pool is not None
            else PmemPool(self.server_config.pmem_capacity_bytes)
        )
        self.latest_completed_batch = -1

    # ------------------------------------------------------------------
    # PS protocol
    # ------------------------------------------------------------------

    def pull(self, keys: Sequence[int], batch_id: int) -> PullResult:
        """Serve a pull; every existing key is a PMem read."""
        dim = self.server_config.embedding_dim
        value_mode = not self.metadata_only
        out = np.empty((len(keys), dim), dtype=np.float32) if value_mode else None
        created = 0
        for i, key in enumerate(keys):
            pool_key = ("entry", key)
            if pool_key not in self.pool:
                if not self.server_config.auto_create:
                    raise KeyNotFoundError(key)
                self._create(key)
                created += 1
            if out is not None:
                stored = self.pool.read(pool_key)
                out[i] = stored[:dim]
        self.metrics.pulls += len(keys)
        self.metrics.cache.misses += len(keys) - created  # all PMem reads
        self.metrics.entries_created += created
        return PullResult(
            weights=out, hits=0, misses=len(keys) - created, created=created
        )

    def maintain(self, batch_id: int) -> list[MaintainResult]:
        """No cache tier; returns an empty shard list."""
        return []

    @property
    def latest_serving_snapshot(self) -> int:
        """Newest nominally-servable batch (Observation 2 caveat applies).

        PMem-Hash has no version retention: every write is durable the
        moment it lands, so there is nothing newer to wait for — but
        there is also no *older* state to pin to, and concurrent pushes
        mean a "snapshot" here is only as consistent as the in-place
        writes happen to be. :meth:`lookup` documents the caveat.
        """
        return self.latest_completed_batch

    @property
    def checkpoints_completed(self) -> int:
        """Every completed batch is immediately durable here, so the
        "checkpoint" count is simply the number of completed batches."""
        return self.latest_completed_batch + 1

    def lookup(
        self, keys: Sequence[int], snapshot_id: int | None = None
    ) -> LookupResult:
        """Read live pool state (NOT batch-consistent — Observation 2).

        The snapshot pin is validated for range but cannot actually pin:
        with in-place updates and no versioning, the rows returned are
        whatever batch each entry last saw. This is the baseline's
        consistency gap that OpenEmbedding's versioned store closes.
        Missing keys serve the deterministic key-seeded initializer.

        Raises:
            ServerError: metadata-only node.
            CheckpointError: ``snapshot_id`` is negative or newer than
                any completed batch.
        """
        if self.metadata_only:
            raise ServerError("lookup requires a value-mode node")
        latest = self.latest_completed_batch
        if snapshot_id is None:
            snapshot_id = latest
        if snapshot_id < 0 or snapshot_id > latest:
            raise CheckpointError(
                f"snapshot {snapshot_id} is not a completed batch "
                f"(newest completed: {latest})"
            )
        cfg = self.server_config
        dim = cfg.embedding_dim
        n = len(keys)
        weights = np.empty((n, dim), dtype=np.float32)
        hits = cold = 0
        for i, key in enumerate(keys):
            pool_key = ("entry", int(key))
            if pool_key in self.pool:
                stored = self.pool.read(pool_key)
                weights[i] = stored[:dim]
                hits += 1
            else:
                rng = np.random.default_rng((cfg.seed, int(key)))
                weights[i] = rng.uniform(
                    -cfg.initializer_scale, cfg.initializer_scale, dim
                ).astype(np.float32)
                cold += 1
        self.metrics.serving_lookups += 1
        self.metrics.serving_rows += n
        self.metrics.serving_cold_rows += cold
        return LookupResult(
            weights=weights,
            snapshot_id=snapshot_id,
            hits=hits,
            cold=cold,
            row_snapshots=np.full(n, snapshot_id, dtype=np.int64),
        )

    def push(
        self, keys: Sequence[int], grads: np.ndarray | None, batch_id: int
    ) -> int:
        """In-place PMem read-modify-write per updated entry."""
        dim = self.server_config.embedding_dim
        value_mode = not self.metadata_only
        if value_mode and grads is None:
            raise ServerError("value-mode PMem-Hash requires gradients on push")
        aggregated: dict[int, np.ndarray | None] = {}
        for i, key in enumerate(keys):
            if ("entry", key) not in self.pool:
                raise KeyNotFoundError(key)
            if not value_mode:
                aggregated[key] = None
            elif key in aggregated:
                aggregated[key] = aggregated[key] + grads[i]
            else:
                aggregated[key] = np.array(grads[i], copy=True)
        for key, grad in aggregated.items():
            pool_key = ("entry", key)
            if value_mode:
                stored = self.pool.read(pool_key)
                weights = stored[:dim]
                state = stored[dim:] if stored.size > dim else None
                self.optimizer.apply(weights, state, grad)
                self.pool.write(pool_key, stored, nbytes=self.entry_bytes)
            else:
                self.pool.write(pool_key, None, nbytes=self.entry_bytes)
            self.metrics.pmem_flush_entries += 1
        # Distinct entries updated, matching the return value (duplicate
        # keys in one push aggregate into a single update).
        self.metrics.updates += len(aggregated)
        self.latest_completed_batch = max(self.latest_completed_batch, batch_id)
        return len(aggregated)

    # ------------------------------------------------------------------
    # checkpoint control (PSBackend surface; Observation 2's caveat)
    # ------------------------------------------------------------------

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        """Every write is already durable — but NOT batch-consistent.

        This baseline has no versioning, so a "checkpoint" adds nothing:
        the call validates its arguments and returns the batch id, and
        what a crash leaves behind is whatever mix of batches the
        in-place writes produced (Observation 2).

        Raises:
            CheckpointError: no trained batch to (nominally) snapshot.
        """
        if batch_id is None:
            batch_id = self.latest_completed_batch
        if batch_id < 0:
            raise CheckpointError("no completed batch to checkpoint")
        return batch_id

    def barrier_checkpoint(self, batch_id: int | None = None) -> int:
        """Same caveat as :meth:`request_checkpoint`."""
        return self.request_checkpoint(batch_id)

    def complete_pending_checkpoints(self) -> None:
        """No-op: nothing is ever pending."""

    # ------------------------------------------------------------------
    # crash behaviour (Observation 2)
    # ------------------------------------------------------------------

    def crash(self) -> PmemPool:
        """Power loss: everything written is durable — but unversioned."""
        self.pool.crash()
        return self.pool

    def surviving_state(self) -> dict[int, np.ndarray]:
        """The post-crash contents: whatever batch each entry last saw.

        There is no checkpoint id and no way to roll back — tests use
        this to show the state mixes batches (not batch-consistent).
        """
        state: dict[int, np.ndarray] = {}
        dim = self.server_config.embedding_dim
        for pool_key, value in self.pool.items():
            if isinstance(pool_key, tuple) and pool_key and pool_key[0] == "entry":
                if value is not None:
                    state[pool_key[1]] = np.array(value[:dim], copy=True)
        return state

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return len(self.pool)

    def read_weights(self, key: int) -> np.ndarray:
        stored = self.pool.read(("entry", key))
        return np.array(stored[: self.server_config.embedding_dim], copy=True)

    def state_snapshot(self) -> dict[int, np.ndarray]:
        return self.surviving_state()

    def _create(self, key: int) -> None:
        if self.metadata_only:
            self.pool.write(("entry", key), None, nbytes=self.entry_bytes)
            return
        cfg = self.server_config
        rng = np.random.default_rng((cfg.seed, key))
        weights = rng.uniform(
            -cfg.initializer_scale, cfg.initializer_scale, cfg.embedding_dim
        ).astype(np.float32)
        opt_state = self.optimizer.init_state(cfg.embedding_dim)
        stored = weights if opt_state is None else np.concatenate([weights, opt_state])
        self.pool.write(("entry", key), stored, nbytes=self.entry_bytes)
