"""The perf-regression gate: committed baselines vs current runs.

``evaluate_gate`` loads the baseline and current ``BENCH_<name>.json``
trajectories, pairs runs **by cell fingerprint** (never by file order),
and compares each headline metric declared in the registry under its
:class:`~repro.bench.registry.Headline` policy:

* the *good* direction (``higher`` / ``lower``) decides which way a
  move counts as a regression;
* ``max_regression`` is the tolerated fractional move the bad way;
* ``noise`` is an absolute floor — moves smaller than it are ignored
  regardless of the fraction (wall-clock jitter on small values);
* boolean metrics gate exactly: any flip of a ``True`` baseline to
  ``False`` is a regression, thresholds do not apply;
* a headline metric present in the baseline but missing from the
  current run **fails** (silent metric loss must not pass a gate).

When a cell has repeats, the best value per side is compared
(best-of-N absorbs one-sided noise without hiding real regressions).
The verdict is a machine-readable ``repro-bench-gate-v1`` dict; exit
codes are pinned: 0 pass, 1 regression, 2 usage/IO error.
"""

from __future__ import annotations

import pathlib

from repro.bench.records import Trajectory
from repro.bench.registry import REGISTRY, BenchRegistry, Headline
from repro.errors import ConfigError

__all__ = ["GATE_SCHEMA", "evaluate_gate", "render_gate"]

GATE_SCHEMA = "repro-bench-gate-v1"


def _best(values, direction: str):
    """Best-of across repeats: the most favourable observed value."""
    numeric = [value for value in values if not isinstance(value, bool)]
    booleans = [value for value in values if isinstance(value, bool)]
    if booleans and not numeric:
        return any(booleans)
    if not numeric:
        return None
    return max(numeric) if direction == "higher" else min(numeric)


def _collect(trajectory: Trajectory, metric: str, direction: str, scale: str):
    """fingerprint -> (best metric value, representative params)."""
    per_cell: dict[str, list] = {}
    params: dict[str, dict] = {}
    for run in trajectory.ok_runs(scale=scale):
        if metric in run.metrics:
            per_cell.setdefault(run.fingerprint, []).append(run.metrics[metric])
            params.setdefault(run.fingerprint, run.params)
    return {
        fingerprint: (_best(values, direction), params[fingerprint])
        for fingerprint, values in per_cell.items()
    }


def _compare(baseline, current, policy: Headline):
    """One cell, one metric -> (status, detail) where status is
    'pass' | 'regression' | 'improved' | 'within-noise'."""
    if isinstance(baseline, bool) or isinstance(current, bool):
        if bool(baseline) and not bool(current):
            return "regression", "boolean metric flipped to False"
        return "pass", "boolean metric held"
    delta = current - baseline
    bad = -delta if policy.direction == "higher" else delta
    if abs(delta) <= policy.noise:
        return "within-noise", f"|Δ|={abs(delta):.4g} <= noise {policy.noise:.4g}"
    if bad <= 0:
        return "improved" if bad < 0 else "pass", f"Δ={delta:+.4g}"
    scale = abs(baseline) if baseline else 1.0
    fraction = bad / scale
    if fraction > policy.max_regression:
        return (
            "regression",
            f"moved {fraction:.1%} the wrong way "
            f"(limit {policy.max_regression:.1%})",
        )
    return "pass", f"Δ={delta:+.4g} ({fraction:.1%} <= {policy.max_regression:.1%})"


def evaluate_gate(
    baseline_dir,
    current_dir,
    registry: BenchRegistry | None = None,
    scale: str = "smoke",
    benches=None,
) -> dict:
    """Compare current trajectories against committed baselines.

    Gates every registered benchmark with headline metrics whose
    baseline trajectory exists (restrict with ``benches``). Returns the
    ``repro-bench-gate-v1`` verdict dict; ``verdict["ok"]`` is the gate
    outcome.
    """
    registry = registry if registry is not None else REGISTRY
    baseline_dir = pathlib.Path(baseline_dir)
    current_dir = pathlib.Path(current_dir)
    if not baseline_dir.is_dir():
        raise ConfigError(f"baseline dir {baseline_dir} does not exist")
    if not current_dir.is_dir():
        raise ConfigError(f"current dir {current_dir} does not exist")

    names = list(benches) if benches else registry.names()
    checks = []
    gated_benches = []
    for name in names:
        spec = registry.get(name)
        if not spec.headline:
            continue
        baseline_path = Trajectory.path_for(baseline_dir, name)
        if not baseline_path.is_file():
            continue
        gated_benches.append(name)
        baseline = Trajectory.load(baseline_path)
        current_path = Trajectory.path_for(current_dir, name)
        if not current_path.is_file():
            checks.append(
                {
                    "bench": name,
                    "metric": None,
                    "cell": None,
                    "params": None,
                    "status": "regression",
                    "baseline": None,
                    "current": None,
                    "detail": f"no current trajectory {current_path.name}",
                }
            )
            continue
        current = Trajectory.load(current_path)
        for metric, policy in sorted(spec.headline.items()):
            base_cells = _collect(baseline, metric, policy.direction, scale)
            cur_cells = _collect(current, metric, policy.direction, scale)
            if not base_cells:
                continue  # baseline never recorded this metric at this scale
            for fingerprint, (base_value, params) in sorted(base_cells.items()):
                entry = {
                    "bench": name,
                    "metric": metric,
                    "cell": fingerprint,
                    "params": params,
                    "baseline": base_value,
                }
                if fingerprint not in cur_cells:
                    entry.update(
                        status="regression",
                        current=None,
                        detail="cell missing from current run "
                        "(headline metric lost or cell errored)",
                    )
                else:
                    cur_value = cur_cells[fingerprint][0]
                    status, detail = _compare(base_value, cur_value, policy)
                    entry.update(status=status, current=cur_value, detail=detail)
                checks.append(entry)

    regressions = [check for check in checks if check["status"] == "regression"]
    return {
        "schema": GATE_SCHEMA,
        "scale": scale,
        "baseline_dir": str(baseline_dir),
        "current_dir": str(current_dir),
        "benches": gated_benches,
        "checks": checks,
        "counts": {
            "total": len(checks),
            "pass": sum(1 for c in checks if c["status"] == "pass"),
            "improved": sum(1 for c in checks if c["status"] == "improved"),
            "within_noise": sum(1 for c in checks if c["status"] == "within-noise"),
            "regressions": len(regressions),
        },
        "ok": not regressions,
    }


def render_gate(verdict: dict) -> str:
    """Human-readable gate report (the machine truth is the dict)."""
    lines = [
        f"perf gate [{verdict['scale']}] "
        f"baseline={verdict['baseline_dir']} current={verdict['current_dir']}",
    ]
    if not verdict["checks"]:
        lines.append("  no gated benchmarks matched (nothing to compare)")
    for check in verdict["checks"]:
        marker = {
            "pass": "ok",
            "improved": "up",
            "within-noise": "~=",
            "regression": "XX",
        }[check["status"]]
        metric = check["metric"] or "<trajectory>"
        cell = (check["cell"] or "")[:8]
        lines.append(
            f"  [{marker}] {check['bench']}.{metric} {cell} "
            f"{check['baseline']} -> {check['current']}: {check['detail']}"
        )
    counts = verdict["counts"]
    lines.append(
        f"  {counts['total']} checks: {counts['pass']} pass, "
        f"{counts['improved']} improved, {counts['within_noise']} within noise, "
        f"{counts['regressions']} regressions"
    )
    lines.append("PASS" if verdict["ok"] else "FAIL: performance regression")
    return "\n".join(lines)
