"""Crash-schedule generation and injection for recovery testing.

A :class:`FailureInjector` wraps a trainer-like object (anything with
``step()`` and ``crash()``) and kills it at scheduled batch boundaries,
which is where the paper's synchronous-training crash model puts
process deaths: between two atomic simulator calls. Property-based
tests drive it with hypothesis-generated schedules to show recovery
restores the checkpointed batch bit-for-bit at *any* crash point.

:class:`WorkerFaultProfile` widens the scenario space from *node death*
to *worker misbehavior* (the ``blades``-style taxonomy): stragglers
(delayed compute), delayed and duplicated gradient pushes, and
Byzantine gradients (sign-flip, scaled noise, zero-drop). All draws are
seeded per ``(seed, worker)`` so a hostile run is exactly reproducible,
and the async trainer applies them at scheduler-step granularity (the
SimClock-driven analogue of the batch-boundary crash model above).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, CrashError


@dataclass(frozen=True)
class CrashSchedule:
    """Batch ids after which a crash fires (sorted, each fires once)."""

    crash_after_batches: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(b < 0 for b in self.crash_after_batches):
            raise ConfigError("crash batch ids must be non-negative")
        ordered = tuple(sorted(self.crash_after_batches))
        object.__setattr__(self, "crash_after_batches", ordered)

    @classmethod
    def random(
        cls, num_batches: int, failures: int, seed: int = 0
    ) -> "CrashSchedule":
        """Uniformly random distinct crash points in ``[0, num_batches)``."""
        if num_batches <= 0:
            raise ConfigError("num_batches must be positive")
        if failures < 0 or failures > num_batches:
            raise ConfigError("failures must be in [0, num_batches]")
        rng = np.random.default_rng((seed, 0xFA11))
        points = rng.choice(num_batches, size=failures, replace=False)
        return cls(tuple(int(p) for p in points))

    @classmethod
    def poisson(
        cls, num_batches: int, mttf_batches: float, seed: int = 0
    ) -> "CrashSchedule":
        """Memoryless failures with a mean of ``mttf_batches`` between them."""
        if mttf_batches <= 0:
            raise ConfigError("mttf_batches must be positive")
        rng = np.random.default_rng((seed, 0xFA22))
        points = []
        t = 0.0
        while True:
            t += rng.exponential(mttf_batches)
            if t >= num_batches:
                break
            points.append(int(t))
        return cls(tuple(sorted(set(points))))


class FailureInjector:
    """Runs a trainer under a crash schedule.

    Usage::

        injector = FailureInjector(schedule)
        for batch in range(n):
            if injector.should_crash(batch):
                survivors = trainer.crash()
                trainer = recover(survivors, ...)
            trainer.step()
    """

    def __init__(self, schedule: CrashSchedule):
        self.schedule = schedule
        self._pending = list(schedule.crash_after_batches)
        self.crashes_fired = 0

    def should_crash(self, batch_id: int) -> bool:
        """True exactly once for each scheduled crash point <= batch_id."""
        if self._pending and batch_id >= self._pending[0]:
            self._pending.pop(0)
            self.crashes_fired += 1
            return True
        return False

    def raise_if_scheduled(self, batch_id: int) -> None:
        """Alternative style: raise :class:`CrashError` at crash points."""
        if self.should_crash(batch_id):
            raise CrashError(f"injected crash after batch {batch_id}", batch_id=batch_id)

    @property
    def remaining(self) -> int:
        return len(self._pending)


@dataclass(frozen=True)
class NodeKillSchedule:
    """Simulated-time instants at which one PS node dies.

    Unlike :class:`CrashSchedule` (whole-process deaths at batch
    boundaries), this targets *single PS shards* at arbitrary points in
    continuous simulated time — the chaos soak polls
    :class:`NodeKillInjector` between protocol operations, so a kill
    lands mid-batch: after a pull but before the matching push, or
    between the push hitting the primary and the reply reaching the
    worker.

    ``kill_times`` are seconds on the shared
    :class:`~repro.simulation.clock.SimClock`; ``victims`` names the
    shard that dies at each instant (same length).
    """

    kill_times: tuple[float, ...]
    victims: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.kill_times) != len(self.victims):
            raise ConfigError("kill_times and victims must have equal length")
        if any(t < 0 for t in self.kill_times):
            raise ConfigError("kill times must be non-negative")
        if any(v < 0 for v in self.victims):
            raise ConfigError("victim node ids must be non-negative")
        order = sorted(range(len(self.kill_times)), key=lambda i: self.kill_times[i])
        object.__setattr__(
            self, "kill_times", tuple(self.kill_times[i] for i in order)
        )
        object.__setattr__(self, "victims", tuple(self.victims[i] for i in order))

    @classmethod
    def poisson(
        cls,
        mttf_seconds: float,
        horizon_seconds: float,
        num_nodes: int,
        seed: int = 0,
        max_kills: int | None = None,
    ) -> "NodeKillSchedule":
        """MTTF-driven kills with seeded uniform victim choice."""
        from repro.failure.mttf import sample_failure_times

        if num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        times = sample_failure_times(mttf_seconds, horizon_seconds, seed)
        if max_kills is not None:
            times = times[:max_kills]
        rng = np.random.default_rng((seed, 0xFA44))
        victims = tuple(int(rng.integers(0, num_nodes)) for _ in times)
        return cls(times, victims)

    def __len__(self) -> int:
        return len(self.kill_times)


class NodeKillInjector:
    """Clock-polled dispenser of due node kills.

    The soak calls :meth:`due` with the current simulated time between
    operations; each scheduled kill is returned exactly once, in time
    order. The injector never touches the cluster itself — the caller
    owns the kill (``node.fail_primary()`` or a full ``crash()``) so
    local, remote, and faulty-wire soaks share one schedule.
    """

    def __init__(self, schedule: NodeKillSchedule):
        self.schedule = schedule
        self._next = 0
        self.kills_fired = 0

    def due(self, now: float) -> list[tuple[float, int]]:
        """All ``(kill_time, victim)`` pairs with ``kill_time <= now``
        not yet dispensed."""
        fired: list[tuple[float, int]] = []
        while (
            self._next < len(self.schedule.kill_times)
            and self.schedule.kill_times[self._next] <= now
        ):
            fired.append(
                (
                    self.schedule.kill_times[self._next],
                    self.schedule.victims[self._next],
                )
            )
            self._next += 1
            self.kills_fired += 1
        return fired

    def peek_next(self) -> tuple[float, int] | None:
        """The next scheduled kill, or ``None`` when exhausted."""
        if self._next >= len(self.schedule.kill_times):
            return None
        return (
            self.schedule.kill_times[self._next],
            self.schedule.victims[self._next],
        )

    @property
    def remaining(self) -> int:
        return len(self.schedule.kill_times) - self._next


#: Byzantine gradient corruption modes (:class:`WorkerFaultProfile`).
BYZANTINE_MODES = ("none", "sign_flip", "scaled_noise", "zero_drop")


@dataclass(frozen=True)
class WorkerFaultProfile:
    """One worker's misbehavior model for hostile-worker chaos runs.

    Attributes:
        straggle_prob: per-turn probability the worker stalls instead
            of computing (its scheduler turns are skipped while asleep).
        straggle_steps: how many scheduler steps one stall lasts.
        delay_prob: per-push probability the push waits ``delay_steps``
            extra scheduler steps beyond the trainer's base staleness.
        delay_steps: extra delay per delayed push.
        duplicate_prob: per-push probability the push is sent twice
            with the *same* ``(worker_id, seq)`` identity — the dedup
            windows (RPC service reply cache, aggregation buffer) must
            absorb the copy on every transport.
        byzantine: gradient corruption mode — ``"none"``,
            ``"sign_flip"`` (push ``-scale * g``), ``"scaled_noise"``
            (push ``scale * g`` + seeded Gaussian noise) or
            ``"zero_drop"`` (push zeros with probability
            ``zero_drop_prob``, else the honest gradient). A Byzantine
            worker corrupts only its *embedding* pushes — the PS-side
            defense layer is what the chaos harness isolates — and its
            dense gradients are zeroed so the shared MLP is not
            poisoned outside the PS's jurisdiction.
        byzantine_scale: magnitude multiplier for the corrupt modes.
        zero_drop_prob: probability a ``zero_drop`` push is zeroed.
        seed: base seed; the per-worker RNG is
            ``default_rng((seed, 0xB12A, worker_id))``.
    """

    straggle_prob: float = 0.0
    straggle_steps: int = 4
    delay_prob: float = 0.0
    delay_steps: int = 2
    duplicate_prob: float = 0.0
    byzantine: str = "none"
    byzantine_scale: float = 1.0
    zero_drop_prob: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("straggle_prob", "delay_prob", "duplicate_prob", "zero_drop_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.straggle_steps < 1 or self.delay_steps < 1:
            raise ConfigError("straggle_steps and delay_steps must be >= 1")
        if self.byzantine not in BYZANTINE_MODES:
            raise ConfigError(
                f"byzantine must be one of {BYZANTINE_MODES}, got {self.byzantine!r}"
            )

    def rng_for(self, worker_id: int) -> np.random.Generator:
        """The worker's private, reproducible fault RNG."""
        return np.random.default_rng((self.seed, 0xB12A, worker_id))

    @property
    def is_byzantine(self) -> bool:
        return self.byzantine != "none"

    @property
    def is_hostile(self) -> bool:
        """Any misbehavior at all (used for fleet accounting)."""
        return (
            self.is_byzantine
            or self.straggle_prob > 0
            or self.delay_prob > 0
            or self.duplicate_prob > 0
        )

    def corrupt(
        self, grads: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply the Byzantine mode to one push's embedding gradients."""
        if self.byzantine == "sign_flip":
            return (-self.byzantine_scale) * grads
        if self.byzantine == "scaled_noise":
            noise = rng.normal(0.0, 1.0, grads.shape).astype(np.float32)
            return self.byzantine_scale * grads + noise
        if self.byzantine == "zero_drop":
            if rng.random() < self.zero_drop_prob:
                return np.zeros_like(grads)
            return grads
        return grads


def hostile_fleet(
    num_workers: int,
    byzantine_workers: int,
    mode: str = "sign_flip",
    *,
    scale: float = 1.0,
    straggler_workers: int = 0,
    straggle_prob: float = 0.3,
    duplicate_prob: float = 0.0,
    delay_prob: float = 0.0,
    seed: int = 0,
) -> dict[int, WorkerFaultProfile]:
    """Standard hostile-fleet layout for chaos runs and ablations.

    The *first* ``byzantine_workers`` ids are Byzantine (mode/scale as
    given); the next ``straggler_workers`` ids straggle; duplicate and
    delay probabilities, when set, apply to every hostile worker.
    Honest workers get no profile at all.
    """
    if byzantine_workers + straggler_workers > num_workers:
        raise ConfigError(
            f"{byzantine_workers} byzantine + {straggler_workers} stragglers "
            f"> {num_workers} workers"
        )
    fleet: dict[int, WorkerFaultProfile] = {}
    for worker in range(byzantine_workers):
        fleet[worker] = WorkerFaultProfile(
            byzantine=mode,
            byzantine_scale=scale,
            duplicate_prob=duplicate_prob,
            delay_prob=delay_prob,
            seed=seed,
        )
    for worker in range(
        byzantine_workers, byzantine_workers + straggler_workers
    ):
        fleet[worker] = WorkerFaultProfile(
            straggle_prob=straggle_prob,
            duplicate_prob=duplicate_prob,
            delay_prob=delay_prob,
            seed=seed,
        )
    return fleet
