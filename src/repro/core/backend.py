"""The formal parameter-server backend protocol.

Every embedding store a trainer can run against — the in-process
:class:`~repro.core.server.OpenEmbeddingServer`, the wire-level
:class:`~repro.network.frontend.RemotePSClient`, and the baselines in
:mod:`repro.baselines` — implements :class:`PSBackend`. Trainers, the
prefetch pipeline and the simulators accept *only* this protocol, so
any conforming backend is interchangeable; tests assert that training
the same model over different backends yields bit-identical weights.

The protocol is structural (:class:`typing.Protocol`): backends do not
inherit from it, they merely expose the right surface, which
``isinstance(backend, PSBackend)`` verifies at runtime thanks to
``@runtime_checkable``.

``maintain`` returns ``list[MaintainResult]`` — one element per shard —
on every backend. Baselines without deferred maintenance return an
empty list (nothing was maintained), and the remote client wires the
per-shard counts back through the Maintain RPC; use
:func:`aggregate_maintain` to collapse any backend's return value into
one summed :class:`~repro.core.cache.MaintainResult`.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.cache import MaintainResult, PullResult

#: Method names every backend must expose (used by conformance tests).
PS_BACKEND_METHODS = (
    "pull",
    "push",
    "maintain",
    "request_checkpoint",
    "barrier_checkpoint",
    "complete_pending_checkpoints",
    "state_snapshot",
)

#: Read-only attributes every backend must expose.
PS_BACKEND_PROPERTIES = (
    "num_entries",
    "latest_completed_batch",
)


@runtime_checkable
class PSBackend(Protocol):
    """Structural protocol of an embedding parameter server.

    The synchronous-batch contract (Figure 5):

    1. ``pull(keys, b)`` for every worker of batch ``b`` — never
       reorders the cache;
    2. ``maintain(b)`` once all of batch ``b``'s pulls are in — the
       deferred cache-maintenance round;
    3. ``push(keys, grads, b)`` applies the batch's gradients.

    Checkpoint control (``request_checkpoint`` queues, completion is
    opportunistic; ``barrier_checkpoint`` forces completion) and
    introspection (``num_entries``, ``state_snapshot``,
    ``latest_completed_batch``) round out the surface.
    """

    def pull(self, keys: Sequence[int], batch_id: int) -> PullResult:
        """Gather weights for ``keys``, in request order."""
        ...

    def push(
        self, keys: Sequence[int], grads: np.ndarray | None, batch_id: int
    ) -> int:
        """Apply gradients for ``keys``; returns distinct entries updated."""
        ...

    def maintain(self, batch_id: int) -> list[MaintainResult]:
        """Run the deferred maintenance round; one result per shard."""
        ...

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        """Queue a checkpoint of ``batch_id`` (default: newest trained)."""
        ...

    def barrier_checkpoint(self, batch_id: int | None = None) -> int:
        """Checkpoint and synchronously complete (a training barrier)."""
        ...

    def complete_pending_checkpoints(self) -> None:
        """Force every queued checkpoint to complete."""
        ...

    def state_snapshot(self) -> dict[int, np.ndarray]:
        """Live weights of every key (testing / equivalence checks)."""
        ...

    @property
    def num_entries(self) -> int:
        """Distinct embedding entries stored."""
        ...

    @property
    def latest_completed_batch(self) -> int:
        """Newest batch whose updates fully applied (-1 before training)."""
        ...


_EMPTY = MaintainResult(
    processed=0, loads=0, flushes=0, evictions=0, checkpoints_completed=0
)


def aggregate_maintain(
    results: Iterable[MaintainResult] | MaintainResult | None,
) -> MaintainResult:
    """Collapse a backend's ``maintain`` return into one summed result.

    Accepts the protocol's ``list[MaintainResult]``, a bare
    :class:`MaintainResult` (single-shard components such as
    :class:`~repro.core.ps_node.PSNode`), or ``None`` (legacy
    maintenance-free backends), so callers can account maintenance work
    uniformly without caring which backend produced it.
    """
    if results is None:
        return _EMPTY
    if isinstance(results, MaintainResult):
        return results
    processed = loads = flushes = evictions = completed = 0
    for result in results:
        processed += result.processed
        loads += result.loads
        flushes += result.flushes
        evictions += result.evictions
        completed += result.checkpoints_completed
    return MaintainResult(
        processed=processed,
        loads=loads,
        flushes=flushes,
        evictions=evictions,
        checkpoints_completed=completed,
    )


def check_backend(backend: object) -> PSBackend:
    """Validate ``backend`` against the protocol; returns it typed.

    Raises:
        TypeError: the object is missing part of the surface, with the
            missing names spelled out (friendlier than a bare
            ``isinstance`` failure).
    """
    missing = [
        name
        for name in (*PS_BACKEND_METHODS, *PS_BACKEND_PROPERTIES)
        if not hasattr(backend, name)
    ]
    if missing:
        raise TypeError(
            f"{type(backend).__name__} does not implement PSBackend; "
            f"missing: {', '.join(sorted(missing))}"
        )
    return backend  # type: ignore[return-value]
