"""A Keras-like model API (the paper's framework integration).

Section V-C: *"We have our own embedding class that inherits from
Keras's embedding layer, and replace the embedding related operators
with our own"*. This module mirrors that developer experience: you
declare a :class:`PSEmbeddingLayer` inside a :class:`Model`, call
``compile`` and ``fit``, and the embedding traffic transparently goes
through OpenEmbedding's pull/maintain/push operators.

It is a thin veneer over :class:`repro.dlrm.trainer.SynchronousTrainer`
— the examples use it; the heavy lifting and the tests live below it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSAdagrad, PSOptimizer
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam, DenseOptimizer
from repro.dlrm.trainer import SynchronousTrainer
from repro.errors import ConfigError


class PSEmbeddingLayer:
    """Declarative embedding layer backed by an OpenEmbedding server.

    Args:
        num_fields: categorical fields the layer embeds.
        dim: embedding dimension.
        num_nodes: PS shards to deploy.
        cache: DRAM cache config for each shard.
        ps_optimizer: PS-side update rule (default Adagrad, the common
            choice for sparse CTR features).
    """

    def __init__(
        self,
        num_fields: int,
        dim: int,
        num_nodes: int = 1,
        cache: CacheConfig | None = None,
        ps_optimizer: PSOptimizer | None = None,
        pmem_capacity_bytes: int = 1 << 30,
        seed: int = 0,
    ):
        self.num_fields = num_fields
        self.dim = dim
        self.server_config = ServerConfig(
            num_nodes=num_nodes,
            embedding_dim=dim,
            pmem_capacity_bytes=pmem_capacity_bytes,
            seed=seed,
        )
        self.cache_config = cache or CacheConfig(capacity_bytes=1 << 20)
        self.ps_optimizer = ps_optimizer or PSAdagrad()
        self.server = OpenEmbeddingServer(
            self.server_config, self.cache_config, self.ps_optimizer
        )


@dataclass
class FitHistory:
    """Per-batch training losses, Keras-``History``-style."""

    losses: list[float]

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def mean_loss(self, last_n: int | None = None) -> float:
        window = self.losses[-last_n:] if last_n else self.losses
        return float(np.mean(window)) if window else float("nan")


class Model:
    """A DeepFM with a PS-backed embedding layer, Keras-style.

    Usage::

        layer = PSEmbeddingLayer(num_fields=26, dim=16, num_nodes=2)
        model = Model(layer, hidden=(64, 32))
        model.compile(optimizer=Adam(1e-3))
        history = model.fit(dataset, batches=200, batch_size=64, workers=2)
        model.save_checkpoint()
    """

    def __init__(
        self,
        embedding_layer: PSEmbeddingLayer,
        hidden: tuple[int, ...] = (64, 32),
        seed: int = 0,
    ):
        self.embedding_layer = embedding_layer
        self.deepfm = DeepFM(
            num_fields=embedding_layer.num_fields,
            dim=embedding_layer.dim,
            hidden=hidden,
            use_first_order=False,
            seed=seed,
        )
        self._trainer: SynchronousTrainer | None = None
        self._optimizer: DenseOptimizer | None = None

    def compile(self, optimizer: DenseOptimizer | None = None) -> None:
        """Attach the dense optimizer (loss is BCE-with-logits)."""
        self._optimizer = optimizer or Adam()

    def fit(
        self,
        dataset: CriteoSynthetic,
        batches: int,
        batch_size: int = 64,
        workers: int = 2,
        checkpoint_every: int | None = None,
    ) -> FitHistory:
        """Train for ``batches`` synchronous steps.

        Repeated calls continue training where the previous call left
        off (same trainer, advancing batch ids).
        """
        if self._optimizer is None:
            raise ConfigError("call compile() before fit()")
        if self._trainer is None:
            self._trainer = SynchronousTrainer(
                self.embedding_layer.server,
                self.deepfm,
                dataset,
                num_workers=workers,
                batch_size=batch_size,
                dense_optimizer=self._optimizer,
                checkpoint_every=checkpoint_every,
            )
        results = self._trainer.train(batches)
        return FitHistory(losses=[r.loss for r in results])

    def predict_proba(self, keys: np.ndarray) -> np.ndarray:
        """Click probabilities for a (batch, fields) key matrix.

        Inference pulls read-only through the same cache path (version
        bookkeeping uses the last trained batch id).
        """
        trainer = self._require_trainer()
        batch_id = max(trainer.next_batch - 1, 0)
        embeddings = trainer.embedding.pull(keys, batch_id)
        self.embedding_layer.server.maintain(batch_id)
        return self.deepfm.predict_proba(embeddings)

    def save_checkpoint(self) -> int:
        """Synchronous checkpoint of dense + sparse state."""
        return self._require_trainer().barrier_checkpoint()

    @property
    def trainer(self) -> SynchronousTrainer:
        return self._require_trainer()

    def _require_trainer(self) -> SynchronousTrainer:
        if self._trainer is None:
            raise ConfigError("model has not been fit yet")
        return self._trainer
