"""Access-trace analysis (Section III's workload characterisation).

Given a raw access stream, compute:

* the Table II view — what share of accesses the top X % of entries
  receive;
* the Figure 10 view — sorted access frequencies and an exponential
  fit;
* basic dedup/burst statistics used by the motivation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.workload.distributions import fit_exponential_rate


@dataclass(frozen=True)
class SkewReport:
    """Table II-style skew summary of a trace."""

    total_accesses: int
    distinct_keys: int
    #: ``key_fraction -> access share`` for the requested fractions.
    top_shares: dict[float, float]


class AccessTraceAnalyzer:
    """Computes skew statistics over a raw access stream."""

    def __init__(self, accesses: np.ndarray):
        accesses = np.asarray(accesses)
        if accesses.ndim != 1 or len(accesses) == 0:
            raise ConfigError("need a non-empty 1-D access stream")
        self.accesses = accesses
        __, counts = np.unique(accesses, return_counts=True)
        #: Access frequencies sorted descending (Figure 10's y-axis).
        self.sorted_frequencies = np.sort(counts)[::-1]

    @property
    def total_accesses(self) -> int:
        return len(self.accesses)

    @property
    def distinct_keys(self) -> int:
        return len(self.sorted_frequencies)

    def top_share(self, key_fraction: float, of_keyspace: int | None = None) -> float:
        """Share of accesses going to the hottest ``key_fraction`` of keys.

        Args:
            key_fraction: e.g. ``0.0005`` for Table II's "Top 0.05 %".
            of_keyspace: compute the fraction over this key-space size
                instead of the number of *distinct accessed* keys — the
                paper's denominator is the full 2.1 B-entry table.
        """
        if not 0 < key_fraction <= 1:
            raise ConfigError(f"key_fraction must be in (0, 1], got {key_fraction}")
        base = of_keyspace if of_keyspace is not None else self.distinct_keys
        top_n = max(1, int(round(key_fraction * base)))
        top_n = min(top_n, self.distinct_keys)
        return float(self.sorted_frequencies[:top_n].sum()) / self.total_accesses

    def skew_report(
        self,
        key_fractions: tuple[float, ...] = (0.0005, 0.001, 0.01),
        of_keyspace: int | None = None,
    ) -> SkewReport:
        """The Table II summary for this trace."""
        return SkewReport(
            total_accesses=self.total_accesses,
            distinct_keys=self.distinct_keys,
            top_shares={
                fraction: self.top_share(fraction, of_keyspace)
                for fraction in key_fractions
            },
        )

    def fit_exponential(self) -> tuple[float, float]:
        """Fit ``freq = a * exp(-b * rank/N)`` (Figure 10's method)."""
        return fit_exponential_rate(self.sorted_frequencies)

    def frequency_curve(self, points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """Downsampled (rank_fraction, frequency) curve for reporting."""
        n = self.distinct_keys
        if points <= 0:
            raise ConfigError(f"points must be >= 1, got {points}")
        idx = np.unique(np.linspace(0, n - 1, min(points, n)).astype(np.int64))
        return idx / n, self.sorted_frequencies[idx].astype(np.float64)
