"""Typed parameter spaces and declarative sweep grids."""

import json

import pytest

from repro.bench import Axis, Grid, Param, expand_grid, load_grid, parse_grid
from repro.errors import ConfigError


class TestParam:
    def test_coerce_int(self):
        assert Param("n", "int", 4).coerce("7") == 7

    def test_coerce_float_from_int(self):
        value = Param("f", "float", 1.0).coerce(3)
        assert value == 3.0 and isinstance(value, float)

    def test_coerce_bool_strings(self):
        param = Param("b", "bool", False)
        assert param.coerce("true") is True
        assert param.coerce("0") is False
        assert param.coerce(True) is True

    def test_bool_rejects_garbage(self):
        with pytest.raises(ConfigError):
            Param("b", "bool", False).coerce("maybe")

    def test_int_normalizes_bool(self):
        value = Param("n", "int", 0).coerce(True)
        assert value == 1 and not isinstance(value, bool)

    def test_choices_enforced(self):
        param = Param("dim", "int", 16, choices=(16, 64))
        assert param.coerce(64) == 64
        with pytest.raises(ConfigError):
            param.coerce(32)

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigError):
            Param("x", "complex")

    def test_uncoercible_value(self):
        with pytest.raises(ConfigError):
            Param("n", "int", 0).coerce("not-a-number")


class TestExpandGrid:
    def test_plain_cross_product(self):
        grid = Grid().axis("a", 1, 2).axis("b", "x", "y")
        cells = grid.cells()
        assert len(cells) == 4
        assert {"a": 1, "b": "x"} in cells
        assert {"a": 2, "b": "y"} in cells

    def test_conditional_axis_only_applies_where_condition_holds(self):
        grid = (
            Grid()
            .axis("bench", "prefetch", "hotpath")
            .axis("lookahead", 0, 2, when={"bench": "prefetch"})
        )
        cells = grid.cells()
        # prefetch fans out over lookahead; hotpath collapses to one cell.
        assert len(cells) == 3
        prefetch = [c for c in cells if c["bench"] == "prefetch"]
        hotpath = [c for c in cells if c["bench"] == "hotpath"]
        assert sorted(c["lookahead"] for c in prefetch) == [0, 2]
        assert hotpath == [{"bench": "hotpath"}]

    def test_nested_conditionals(self):
        grid = (
            Grid()
            .axis("bench", "a", "b")
            .axis("mode", "fast", "slow", when={"bench": "a"})
            .axis("depth", 1, 2, when={"mode": "slow"})
        )
        with pytest.raises(ConfigError):
            # "depth" conditions on "mode", which bench=b cells lack.
            grid.cells()

    def test_nested_conditionals_with_full_chain(self):
        grid = (
            Grid()
            .axis("mode", "slow")
            .axis("depth", 1, 2, when={"mode": "slow"})
            .axis("width", 8, 16, when={"depth": [2]})
        )
        cells = grid.cells()
        # depth=1 | depth=2/width=8 | depth=2/width=16
        assert len(cells) == 3
        assert {"mode": "slow", "depth": 1} in cells
        assert {"mode": "slow", "depth": 2, "width": 16} in cells

    def test_never_matching_condition_collapses_axis(self):
        grid = (
            Grid()
            .axis("bench", "a")
            .axis("k", 1, 2, when={"bench": "never"})
        )
        # the axis applies nowhere -> the cell passes through untouched
        assert grid.cells() == [{"bench": "a"}]

    def test_dedup_keeps_first_occurrence(self):
        axes = [
            Axis("a", (1,)),
            Axis("b", (1, 2), when=(("a", (99,)),)),
        ]
        # condition never holds -> both b-values collapse to the same cell
        cells = expand_grid(axes)
        assert cells == [{"a": 1}]

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ConfigError):
            expand_grid([Axis("a", (1,)), Axis("a", (2,))])

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            Axis("a", ())


class TestParseGrid:
    def test_inline_with_condition(self):
        grid = parse_grid("bench=prefetch,hotpath; lookahead[bench=prefetch]=0,2,4")
        cells = grid.cells()
        assert len(cells) == 4
        assert {"bench": "hotpath"} in cells
        assert {"bench": "prefetch", "lookahead": 4} in cells

    def test_type_inference(self):
        grid = parse_grid("n=1,2; f=0.5; flag=true,false; s=abc")
        cells = grid.cells()
        cell = cells[0]
        assert isinstance(cell["n"], int)
        assert isinstance(cell["f"], float)
        assert isinstance(cell["flag"], bool)
        assert cell["s"] == "abc"

    def test_pipe_separated_condition_values(self):
        grid = parse_grid("bench=a,b,c; k[bench=a|b]=1,2")
        cells = grid.cells()
        assert {"bench": "c"} in cells
        assert {"bench": "a", "k": 1} in cells
        assert {"bench": "b", "k": 2} in cells
        assert len(cells) == 5

    def test_unclosed_condition_rejected(self):
        with pytest.raises(ConfigError):
            parse_grid("k[bench=a=1,2")

    def test_clause_without_equals_rejected(self):
        with pytest.raises(ConfigError):
            parse_grid("bench")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError):
            parse_grid("; ;")

    def test_no_values_rejected(self):
        with pytest.raises(ConfigError):
            parse_grid("a=")


class TestLoadGrid:
    def test_json_roundtrip(self, tmp_path):
        payload = {
            "name": "ci-smoke",
            "axes": [
                {"name": "bench", "values": ["prefetch", "hotpath"]},
                {
                    "name": "lookahead",
                    "values": [0, 2],
                    "when": {"bench": ["prefetch"]},
                },
            ],
        }
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(payload))
        grid = load_grid(path)
        assert grid.name == "ci-smoke"
        assert len(grid.cells()) == 3

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError):
            load_grid(path)

    def test_missing_axes_rejected(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"name": "x"}))
        with pytest.raises(ConfigError):
            load_grid(path)

    def test_axis_without_values_rejected(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"axes": [{"name": "a"}]}))
        with pytest.raises(ConfigError):
            load_grid(path)
