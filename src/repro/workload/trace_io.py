"""Trace persistence and replay.

The paper's analysis is built on a recorded production trace. This
module lets users do the same with this library: record per-batch key
sets, save them to a compact ``.npz`` file, and replay them through the
training simulator in place of the synthetic generator.

File format: one flat int64 key array plus batch offsets (ragged
batches), a key-space size, and a format version.
"""

from __future__ import annotations

import pathlib
from typing import Sequence

import numpy as np

from repro.config import WorkloadConfig
from repro.errors import ConfigError

_FORMAT_VERSION = 1


def save_trace(
    path: str | pathlib.Path,
    batches: Sequence[np.ndarray],
    num_keys: int,
) -> None:
    """Persist a list of per-batch key arrays.

    Args:
        path: destination ``.npz`` file.
        batches: one int array of keys per batch (ragged lengths fine).
        num_keys: the key-space size the trace was drawn from.
    """
    if not batches:
        raise ConfigError("cannot save an empty trace")
    if num_keys <= 0:
        raise ConfigError("num_keys must be positive")
    arrays = [np.asarray(batch, dtype=np.int64) for batch in batches]
    for array in arrays:
        if array.ndim != 1:
            raise ConfigError("each batch must be a 1-D key array")
        if len(array) and (array.min() < 0 or array.max() >= num_keys):
            raise ConfigError("trace contains keys outside [0, num_keys)")
    flat = np.concatenate(arrays) if arrays else np.array([], dtype=np.int64)
    offsets = np.cumsum([0] + [len(a) for a in arrays]).astype(np.int64)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        keys=flat,
        offsets=offsets,
        num_keys=np.int64(num_keys),
    )


def load_trace(path: str | pathlib.Path) -> tuple[list[np.ndarray], int]:
    """Load a trace saved by :func:`save_trace`.

    Returns ``(batches, num_keys)``.

    Raises:
        ConfigError: wrong format or version.
    """
    with np.load(path) as data:
        try:
            version = int(data["version"])
            flat = data["keys"]
            offsets = data["offsets"]
            num_keys = int(data["num_keys"])
        except KeyError as missing:
            raise ConfigError(f"not a trace file: missing field {missing}") from None
    if version != _FORMAT_VERSION:
        raise ConfigError(f"unsupported trace version {version}")
    batches = [
        flat[offsets[i] : offsets[i + 1]].copy() for i in range(len(offsets) - 1)
    ]
    return batches, num_keys


class TraceReplayGenerator:
    """Replays a recorded trace through the workload interface.

    Drop-in for :class:`~repro.workload.generator.WorkloadGenerator` in
    the training simulator: each synchronous step consumes the next
    ``num_workers`` recorded batches (wrapping around at the end).
    """

    def __init__(self, batches: list[np.ndarray], num_keys: int):
        if not batches:
            raise ConfigError("replay needs at least one batch")
        self.batches = [np.asarray(b, dtype=np.int64) for b in batches]
        self.config = WorkloadConfig(num_keys=num_keys)
        self._cursor = 0
        self.wrapped = 0

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "TraceReplayGenerator":
        batches, num_keys = load_trace(path)
        return cls(batches, num_keys)

    def _next_batch(self) -> np.ndarray:
        batch = self.batches[self._cursor]
        self._cursor += 1
        if self._cursor == len(self.batches):
            self._cursor = 0
            self.wrapped += 1
        return batch

    def sample_batch_keys(self, batch_size: int, deduplicate: bool = True) -> np.ndarray:
        """Next recorded batch (sizes come from the recording)."""
        batch = self._next_batch()
        if deduplicate:
            return np.unique(batch)
        return batch.copy()

    def sample_worker_batches(
        self, num_workers: int, batch_size: int
    ) -> list[np.ndarray]:
        """One recorded (deduplicated) batch per worker."""
        return [np.unique(self._next_batch()) for __ in range(num_workers)]

    def access_stream(self, num_batches: int, batch_size: int) -> np.ndarray:
        """Flat raw stream of the next ``num_batches`` recorded batches."""
        return np.concatenate([self._next_batch() for __ in range(num_batches)])


def record_synthetic_trace(
    generator,
    num_batches: int,
    batch_size: int,
) -> list[np.ndarray]:
    """Materialise a synthetic workload as a replayable trace."""
    if num_batches <= 0:
        raise ConfigError("num_batches must be positive")
    return [
        generator.sample_batch_keys(batch_size, deduplicate=False)
        for __ in range(num_batches)
    ]
