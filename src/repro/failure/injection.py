"""Crash-schedule generation and injection for recovery testing.

A :class:`FailureInjector` wraps a trainer-like object (anything with
``step()`` and ``crash()``) and kills it at scheduled batch boundaries,
which is where the paper's synchronous-training crash model puts
process deaths: between two atomic simulator calls. Property-based
tests drive it with hypothesis-generated schedules to show recovery
restores the checkpointed batch bit-for-bit at *any* crash point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, CrashError


@dataclass(frozen=True)
class CrashSchedule:
    """Batch ids after which a crash fires (sorted, each fires once)."""

    crash_after_batches: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(b < 0 for b in self.crash_after_batches):
            raise ConfigError("crash batch ids must be non-negative")
        ordered = tuple(sorted(self.crash_after_batches))
        object.__setattr__(self, "crash_after_batches", ordered)

    @classmethod
    def random(
        cls, num_batches: int, failures: int, seed: int = 0
    ) -> "CrashSchedule":
        """Uniformly random distinct crash points in ``[0, num_batches)``."""
        if num_batches <= 0:
            raise ConfigError("num_batches must be positive")
        if failures < 0 or failures > num_batches:
            raise ConfigError("failures must be in [0, num_batches]")
        rng = np.random.default_rng((seed, 0xFA11))
        points = rng.choice(num_batches, size=failures, replace=False)
        return cls(tuple(int(p) for p in points))

    @classmethod
    def poisson(
        cls, num_batches: int, mttf_batches: float, seed: int = 0
    ) -> "CrashSchedule":
        """Memoryless failures with a mean of ``mttf_batches`` between them."""
        if mttf_batches <= 0:
            raise ConfigError("mttf_batches must be positive")
        rng = np.random.default_rng((seed, 0xFA22))
        points = []
        t = 0.0
        while True:
            t += rng.exponential(mttf_batches)
            if t >= num_batches:
                break
            points.append(int(t))
        return cls(tuple(sorted(set(points))))


class FailureInjector:
    """Runs a trainer under a crash schedule.

    Usage::

        injector = FailureInjector(schedule)
        for batch in range(n):
            if injector.should_crash(batch):
                survivors = trainer.crash()
                trainer = recover(survivors, ...)
            trainer.step()
    """

    def __init__(self, schedule: CrashSchedule):
        self.schedule = schedule
        self._pending = list(schedule.crash_after_batches)
        self.crashes_fired = 0

    def should_crash(self, batch_id: int) -> bool:
        """True exactly once for each scheduled crash point <= batch_id."""
        if self._pending and batch_id >= self._pending[0]:
            self._pending.pop(0)
            self.crashes_fired += 1
            return True
        return False

    def raise_if_scheduled(self, batch_id: int) -> None:
        """Alternative style: raise :class:`CrashError` at crash points."""
        if self.should_crash(batch_id):
            raise CrashError(f"injected crash after batch {batch_id}", batch_id=batch_id)

    @property
    def remaining(self) -> int:
        return len(self._pending)
