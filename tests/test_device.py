"""Device models: Table I characteristics and burst arithmetic."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.simulation.device import (
    DRAM_SPEC,
    GB,
    MemoryDevice,
    PMEM_SPEC,
    SSD_SPEC,
    DeviceSpec,
)


class TestTableOneSpecs:
    """The specs encode Table I exactly."""

    def test_dram_bandwidth(self):
        assert DRAM_SPEC.read_bw == 115 * GB
        assert DRAM_SPEC.write_bw == 79 * GB

    def test_pmem_bandwidth(self):
        assert PMEM_SPEC.read_bw == 39 * GB
        assert PMEM_SPEC.write_bw == 14 * GB

    def test_latencies(self):
        assert DRAM_SPEC.read_latency == pytest.approx(81e-9)
        assert PMEM_SPEC.read_latency == pytest.approx(305e-9)
        assert SSD_SPEC.read_latency > 10_000e-9  # ">10000 ns"

    def test_pmem_read_is_about_a_third_of_dram(self):
        # "the read and write throughput of PMem is only one-third and
        # one-fifth of that in DRAM"
        assert DRAM_SPEC.read_bw / PMEM_SPEC.read_bw == pytest.approx(115 / 39)
        assert DRAM_SPEC.write_bw / PMEM_SPEC.write_bw == pytest.approx(79 / 14)

    def test_device_ordering(self):
        assert DRAM_SPEC.read_bw > PMEM_SPEC.read_bw > SSD_SPEC.read_bw
        assert DRAM_SPEC.read_latency < PMEM_SPEC.read_latency < SSD_SPEC.read_latency


class TestDeviceSpec:
    def test_read_time_is_latency_plus_transfer(self):
        spec = DeviceSpec("t", read_bw=100.0, write_bw=50.0, read_latency=1.0, write_latency=2.0)
        assert spec.read_time(200) == pytest.approx(1.0 + 2.0)
        assert spec.write_time(200) == pytest.approx(2.0 + 4.0)

    def test_streams_share_bandwidth(self):
        spec = DeviceSpec("t", read_bw=100.0, write_bw=50.0, read_latency=0.0, write_latency=0.0)
        assert spec.read_time(100, streams=4) == pytest.approx(4.0)

    def test_zero_bytes_costs_latency_only(self):
        assert DRAM_SPEC.read_time(0) == pytest.approx(DRAM_SPEC.read_latency)

    def test_negative_bytes_rejected(self):
        with pytest.raises(SimulationError):
            DRAM_SPEC.read_time(-1)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            DeviceSpec("bad", read_bw=0, write_bw=1, read_latency=0, write_latency=0)


class TestBurst:
    def test_latency_bound_small_ops(self):
        # 64 tiny ops on 8 threads: 8 rounds of latency dominate.
        t = PMEM_SPEC.burst_read_time(ops=64, bytes_per_op=8, threads=8)
        assert t == pytest.approx(8 * PMEM_SPEC.read_latency)

    def test_bandwidth_bound_large_ops(self):
        t = DRAM_SPEC.burst_read_time(ops=4, bytes_per_op=GB, threads=4)
        assert t == pytest.approx(4 * GB / DRAM_SPEC.read_bw)

    def test_zero_ops_is_free(self):
        assert PMEM_SPEC.burst_read_time(0, 64, 4) == 0.0
        assert PMEM_SPEC.burst_write_time(0, 64, 4) == 0.0

    def test_more_threads_never_slower(self):
        t1 = PMEM_SPEC.burst_read_time(1000, 256, 1)
        t8 = PMEM_SPEC.burst_read_time(1000, 256, 8)
        assert t8 <= t1

    def test_write_slower_than_read_on_pmem(self):
        ops, size = 1000, 4096
        read = PMEM_SPEC.burst_read_time(ops, size, 4)
        write = PMEM_SPEC.burst_write_time(ops, size, 4)
        assert write > read


class TestMemoryDevice:
    def test_counters_accumulate(self):
        dev = MemoryDevice(DRAM_SPEC)
        dev.read(100)
        dev.read(200)
        dev.write(50)
        assert dev.bytes_read == 300
        assert dev.bytes_written == 50
        assert dev.read_ops == 2
        assert dev.write_ops == 1

    def test_burst_counts_all_ops(self):
        dev = MemoryDevice(PMEM_SPEC)
        dev.burst_read(10, 64, 4)
        assert dev.read_ops == 10
        assert dev.bytes_read == 640

    def test_busy_seconds_tracks_time(self):
        dev = MemoryDevice(PMEM_SPEC)
        elapsed = dev.read(1 << 20)
        assert dev.busy_seconds == pytest.approx(elapsed)

    def test_effective_bandwidth_below_spec(self):
        dev = MemoryDevice(PMEM_SPEC)
        dev.read(4096)
        assert 0 < dev.effective_read_bw() < PMEM_SPEC.read_bw

    def test_reset_counters(self):
        dev = MemoryDevice(DRAM_SPEC)
        dev.read(100)
        dev.reset_counters()
        assert dev.bytes_read == 0
        assert dev.busy_seconds == 0.0
