"""Parallel experiment-sweep harness with machine-readable trajectories.

``repro.bench`` turns the repository's ``benchmarks/bench_*.py``
scripts into a *registry* of typed, sweepable experiment entries and
gives them three shared services:

* **Sweeps** — :class:`SweepRunner` expands a declarative parameter
  :class:`Grid` (conditional axes included) into cells with
  deterministic derived seeds, fans them out over a process pool with
  per-run failure isolation, and records results.
* **Trajectories** — every run becomes a schema-versioned
  ``repro-bench-v1`` :class:`RunRecord` appended to
  ``benchmarks/results/BENCH_<name>.json`` with environment and git
  provenance (:class:`Trajectory`, :func:`validate_trajectory`).
* **The gate** — :func:`evaluate_gate` pairs current runs against
  committed baselines by cell fingerprint and fails on headline-metric
  regressions beyond per-metric :class:`Headline` thresholds.

CLI entry points: ``repro sweep`` and ``repro bench list|run|gate``.
"""

from repro.bench.gate import GATE_SCHEMA, evaluate_gate, render_gate
from repro.bench.records import (
    BENCH_SCHEMA,
    RunRecord,
    Trajectory,
    cell_fingerprint,
    derive_seed,
    environment_info,
    validate_trajectory,
)
from repro.bench.registry import (
    REGISTRY,
    BenchRegistry,
    BenchSpec,
    Headline,
    discover,
    register,
)
from repro.bench.runner import (
    SweepCell,
    SweepResult,
    SweepRunner,
    default_results_dir,
)
from repro.bench.space import Axis, Grid, Param, expand_grid, load_grid, parse_grid

__all__ = [
    "Axis",
    "BENCH_SCHEMA",
    "BenchRegistry",
    "BenchSpec",
    "GATE_SCHEMA",
    "Grid",
    "Headline",
    "Param",
    "REGISTRY",
    "RunRecord",
    "SweepCell",
    "SweepResult",
    "SweepRunner",
    "Trajectory",
    "cell_fingerprint",
    "default_results_dir",
    "derive_seed",
    "discover",
    "environment_info",
    "evaluate_gate",
    "expand_grid",
    "load_grid",
    "parse_grid",
    "register",
    "render_gate",
    "validate_trajectory",
]
