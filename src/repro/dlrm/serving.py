"""Model export and read-only serving.

Production DLRM deployments (the paper's 4Paradigm scenarios serve
real-time recommendations) separate *training* — the PS with its cache,
versions and checkpoints — from *serving* — an immutable snapshot
answering lookups. This module provides that boundary:

* :func:`export_model` — freeze a trained model (all embedding entries
  + dense parameters) into one ``.npz`` artifact;
* :class:`InferenceSession` — load an artifact and serve predictions
  with no PS, no versions and no training machinery.

The export round-trip is exact: a session's predictions equal the live
trainer's for the same inputs (tested bitwise).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.errors import ConfigError, ServerError

_FORMAT_VERSION = 1


def _pinned_snapshot(server) -> dict[int, np.ndarray] | None:
    """Checkpoint-pinned embedding table, or None if unsupported.

    The preferred export path: barrier-checkpoint the server (bitwise
    flush of any cached dirty rows), then read every owned key through
    the snapshot-pinned ``lookup`` API — the same torn-row-free read
    path online serving uses. Falls back to None when the server lacks
    the serving surface or has not trained any batch yet.
    """
    required = ("lookup", "owned_keys", "barrier_checkpoint")
    if any(not callable(getattr(server, name, None)) for name in required):
        return None
    latest_batch = getattr(server, "latest_completed_batch", -1)
    if latest_batch < 0:
        return None
    snapshot_id = getattr(server, "latest_serving_snapshot", -1)
    if snapshot_id < latest_batch:
        # There is trained state newer than the newest checkpoint:
        # barrier so the export pin captures it bitwise.
        snapshot_id = server.barrier_checkpoint()
    keys = sorted(server.owned_keys())
    result = server.lookup(keys, snapshot_id)
    return {int(k): result.weights[i] for i, k in enumerate(keys)}


def export_model(
    path: str | pathlib.Path,
    server,
    model,
) -> int:
    """Freeze ``server``'s embeddings and ``model``'s dense state.

    Servers with the serving read surface (``lookup`` / ``owned_keys``)
    are exported *checkpoint-pinned*: a barrier checkpoint is taken and
    every row is read at that pin, so the artifact is snapshot-
    consistent even if training keeps running. Servers without it fall
    back to ``state_snapshot()`` (training/debug-only, assumes the
    server is quiescent).

    Args:
        path: destination ``.npz``.
        server: any PS backend (OpenEmbedding or a baseline).
        model: a DeepFM/DLRM exposing ``dense_state()``.

    Returns the number of embedding entries exported.

    Raises:
        ServerError: the server holds no entries (nothing was trained).
    """
    if getattr(server, "num_entries", 0) == 0:
        raise ServerError("server holds no embedding entries to export")
    snapshot = _pinned_snapshot(server)
    if snapshot is None:
        snapshot = server.state_snapshot()
    if not snapshot:
        raise ServerError("server holds no embedding entries to export")
    keys = np.array(sorted(snapshot), dtype=np.int64)
    dim = len(next(iter(snapshot.values())))
    weights = np.stack([snapshot[int(k)] for k in keys]).astype(np.float32)
    arrays = {
        "version": np.int64(_FORMAT_VERSION),
        "keys": keys,
        "weights": weights,
        "dim": np.int64(dim),
        "model_kind": np.bytes_(type(model).__name__.encode()),
    }
    # Cold-start metadata: initialisation is seeded by (server seed,
    # key), so a serving session can regenerate the exact vector any
    # unseen key would get on the live PS — the same contract the
    # online lookup path uses for cold rows.
    server_config = getattr(server, "server_config", None)
    if server_config is not None:
        arrays["init_seed"] = np.int64(server_config.seed)
        arrays["init_scale"] = np.float64(server_config.initializer_scale)
    for i, tensor in enumerate(model.dense_state()):
        arrays[f"dense_{i}"] = tensor
    arrays["dense_count"] = np.int64(len(model.dense_state()))
    np.savez_compressed(path, **arrays)
    return len(keys)


class InferenceSession:
    """Read-only serving over an exported artifact.

    Args:
        path: artifact from :func:`export_model`.
        model: a fresh model instance of the same architecture; its
            dense parameters are overwritten from the artifact.
        default_weight: embedding returned for keys absent from the
            export (a cold-start key). By default the session
            regenerates the trainer's deterministic key-seeded
            initialisation (stored in the artifact), so serving matches
            the live PS even on unseen ids; pass an explicit vector
            (e.g. zeros) to override.
    """

    def __init__(self, path: str | pathlib.Path, model, default_weight=None):
        with np.load(path) as data:
            try:
                version = int(data["version"])
                keys = data["keys"]
                weights = data["weights"]
                self.dim = int(data["dim"])
                dense_count = int(data["dense_count"])
                dense_state = [data[f"dense_{i}"] for i in range(dense_count)]
                exported_kind = bytes(data["model_kind"]).decode()
            except KeyError as missing:
                raise ConfigError(
                    f"not a model artifact: missing field {missing}"
                ) from None
            self._init_seed = int(data["init_seed"]) if "init_seed" in data else None
            self._init_scale = (
                float(data["init_scale"]) if "init_scale" in data else 0.0
            )
        if version != _FORMAT_VERSION:
            raise ConfigError(f"unsupported artifact version {version}")
        if exported_kind != type(model).__name__:
            raise ConfigError(
                f"artifact holds a {exported_kind}, got a {type(model).__name__}"
            )
        self.model = model
        model.load_dense_state([np.array(t, copy=True) for t in dense_state])
        self._table: dict[int, np.ndarray] = {
            int(k): weights[i] for i, k in enumerate(keys)
        }
        self.default_weight = None
        if default_weight is not None:
            self.default_weight = np.asarray(default_weight, dtype=np.float32)
            if self.default_weight.shape != (self.dim,):
                raise ConfigError(
                    f"default weight shape {self.default_weight.shape}, "
                    f"want ({self.dim},)"
                )
        elif self._init_seed is None:
            self.default_weight = np.zeros(self.dim, dtype=np.float32)
        self.cold_lookups = 0
        self.snapshot_id = None  # artifact sessions are not pinned

    @classmethod
    def from_backend(cls, backend, model, default_weight=None) -> "InferenceSession":
        """Build a session directly from a live backend, no artifact.

        Reads every owned key through the snapshot-pinned ``lookup``
        API at the backend's newest completed checkpoint — the same
        torn-row-free path online serving uses — so the session is a
        consistent cut even while training continues. The model's dense
        parameters are used as-is (it is the live, trained model).

        Args:
            backend: any :class:`~repro.core.backend.ReadBackend` that
                also exposes ``owned_keys()``.
            model: the trained DeepFM/DLRM to serve with.
            default_weight: override for cold keys (see ``__init__``).

        Raises:
            ServerError: the backend holds no entries, or has no
                completed checkpoint to pin to.
        """
        from repro.core.backend import check_backend

        check_backend(backend, role="read")
        if not callable(getattr(backend, "owned_keys", None)):
            raise ServerError(
                f"{type(backend).__name__} does not expose owned_keys(); "
                "use export_model with a file artifact instead"
            )
        if backend.num_entries == 0:
            raise ServerError("backend holds no embedding entries to serve")
        snapshot_id = backend.latest_serving_snapshot
        if snapshot_id < 0:
            raise ServerError(
                "backend has no completed checkpoint to pin the session to"
            )
        keys = sorted(backend.owned_keys())
        result = backend.lookup(keys, snapshot_id)
        session = cls.__new__(cls)
        session.dim = int(result.weights.shape[1])
        session.model = model
        session._table = {
            int(k): np.array(result.weights[i], copy=True)
            for i, k in enumerate(keys)
        }
        server_config = getattr(backend, "server_config", None)
        session._init_seed = (
            int(server_config.seed) if server_config is not None else None
        )
        session._init_scale = (
            float(server_config.initializer_scale)
            if server_config is not None
            else 0.0
        )
        session.default_weight = None
        if default_weight is not None:
            session.default_weight = np.asarray(default_weight, dtype=np.float32)
            if session.default_weight.shape != (session.dim,):
                raise ConfigError(
                    f"default weight shape {session.default_weight.shape}, "
                    f"want ({session.dim},)"
                )
        elif session._init_seed is None:
            session.default_weight = np.zeros(session.dim, dtype=np.float32)
        session.cold_lookups = 0
        session.snapshot_id = snapshot_id
        return session

    def _cold_weight(self, key: int) -> np.ndarray:
        """The vector an unseen key would have on the live PS."""
        if self.default_weight is not None:
            return self.default_weight
        rng = np.random.default_rng((self._init_seed, key))
        return rng.uniform(-self._init_scale, self._init_scale, self.dim).astype(
            np.float32
        )

    @property
    def num_entries(self) -> int:
        return len(self._table)

    def lookup(self, key_matrix: np.ndarray) -> np.ndarray:
        """(batch, fields, dim) embeddings; unseen keys get the default."""
        key_matrix = np.asarray(key_matrix)
        if key_matrix.ndim != 2:
            raise ConfigError(f"key matrix must be 2-D, got {key_matrix.shape}")
        out = np.empty((*key_matrix.shape, self.dim), dtype=np.float32)
        for index, key in np.ndenumerate(key_matrix):
            weight = self._table.get(int(key))
            if weight is None:
                weight = self._cold_weight(int(key))
                self.cold_lookups += 1
            out[index] = weight
        return out

    def predict_proba(
        self, key_matrix: np.ndarray, dense: np.ndarray | None = None
    ) -> np.ndarray:
        """Click probabilities for a batch of key rows."""
        embeddings = self.lookup(key_matrix)
        if getattr(self.model, "uses_dense_features", False):
            if dense is None:
                raise ConfigError("this model requires dense features")
            return self.model.predict_proba(embeddings, dense)
        return self.model.predict_proba(embeddings)
