"""Hot failover vs checkpoint recovery under an MTTF kill schedule.

The paper's only failure answer is offline recovery: rescan PMem,
discard versions past the Checkpointed Batch ID, rebuild the hash index
— ~380 s at 2.1 B entries (Figure 14). This bench prices the
availability layer the extension adds on top:

* **detection** is bounded by the lease (``ServerConfig.lease_s``): the
  client waits out the remainder before it may declare death;
* **promotion** is a role switch to the synchronous backup —
  :data:`repro.core.replication.FAILOVER_SECONDS`, independent of model
  size;
* **re-replication** of a fresh backup rides the heartbeat rounds in
  the background, off the training critical path.

So the client-visible outage is ``lease + promotion`` (~1 s at the
default lease) against the paper's ~380 s — and unlike recovery, the
failover loses *nothing*: post-checkpoint batches survive on the
backup.

The live half runs the MTTF chaos soak (``tests/harness/chaos.py``):
Poisson-scheduled kills land mid-batch while a deterministic workload
trains, promotions answer them, and the final weights are compared
bitwise against a fault-free replay.

Run under pytest-benchmark for the full report, or standalone for CI:

    python benchmarks/bench_failover.py --smoke

Smoke mode runs a short 2-kill soak over all three transports
(in-process, RPC, RPC over a lossy wire) and exits non-zero if any
soak loses an update, regresses a checkpoint id, or blows the
unavailability bound.
"""

from __future__ import annotations

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.bench import Headline, Param, register
from repro.core.replication import (
    FAILOVER_SECONDS,
    replication_vs_recovery_seconds,
)
from repro.failure.mttf import expected_lost_work_seconds, young_interval_seconds

PAPER_ENTRIES = 2_100_000_000
PAPER_RECOVERY_S = 380.2  # Figure 14, PMem-OE scan + rebuild
LEASE_S = 0.5


def soak_line(result, label: str) -> str:
    from tests.harness.chaos import percentile

    p99 = percentile(result.unavailability_seconds, 99)
    return (
        f"  {label:<10} kills={result.kills} promotions={len(result.promotions)} "
        f"double_faults={result.double_faults} absorbed={result.absorbed_kills} "
        f"p99_unavail={p99:.3f}s (bound {result.unavailability_bound_s:.3f}s) "
        f"rebuilt={result.rebuilds_completed}/{len(result.backend.nodes)}"
    )


def run_soaks(kills: int, batches: int):
    """The three-transport chaos soak; returns ``(results, failures)``."""
    from tests.harness.chaos import assert_soak_survived, run_chaos_soak

    scenarios = [
        ("local", dict(seed=0)),
        ("remote", dict(remote=True, seed=1)),
        ("faulty", dict(remote=True, faulty=True, seed=2, mttf_s=2.0)),
    ]
    results = []
    failures = 0
    for label, kwargs in scenarios:
        result = run_chaos_soak(kills=kills, batches=batches, **kwargs)
        try:
            assert_soak_survived(result, min_kills=kills)
            verdict = "ok"
        except AssertionError as exc:
            verdict = f"FAIL: {exc}"
            failures += 1
        results.append((label, result, verdict))
    return results, failures


def test_failover_vs_recovery(benchmark, report):
    from benchmarks.conftest import run_once

    def run():
        failover, recovery = replication_vs_recovery_seconds(
            entries=PAPER_ENTRIES, entry_bytes=4 * 64
        )
        soaks, failures = run_soaks(kills=3, batches=30)
        return failover, recovery, soaks, failures

    failover, recovery, soaks, failures = run_once(benchmark, run)
    unavailability = LEASE_S + FAILOVER_SECONDS
    interval = young_interval_seconds(15.0, 12.0 * 3600)
    lost = expected_lost_work_seconds(interval, 12.0 * 3600)

    report.title("failover", "Extension: MTTF chaos soak — detection + hot failover")
    report.row(
        "recovery per failure", f"{PAPER_RECOVERY_S} s (Fig 14)", f"{recovery:.1f} s"
    )
    report.row(
        "failover unavailability", "O(seconds)",
        f"{unavailability:.1f} s (lease {LEASE_S} + promote {FAILOVER_SECONDS})",
    )
    report.row(
        "recovery -> failover", "-", f"{recovery / unavailability:.0f}x less downtime"
    )
    report.row(
        "Young interval (12h MTTF)", "sqrt(2*C*MTTF)",
        f"{interval:.0f} s ({lost:.0f} s lost/failure)",
    )
    report.line()
    report.line("  chaos soak: 3 Poisson kills per transport, bitwise-exact finish")
    for label, result, verdict in soaks:
        report.line(soak_line(result, label) + f" [{verdict}]")
    assert failures == 0, "a chaos soak lost updates or blew its bound"


# --- registry entry -------------------------------------------------------


@register(
    "failover",
    params=[
        Param("kills", "int", 3, help="Poisson kills per transport soak"),
        Param("batches", "int", 30),
    ],
    smoke={"kills": 2, "batches": 24},
    headline={
        "all_survived": Headline(),
        # Analytic model: deterministic, gate tightly.
        "recovery_vs_failover_x": Headline(direction="higher", max_regression=0.05),
    },
    check=lambda metrics, params: (
        []
        if metrics["all_survived"]
        else ["a chaos soak lost updates or blew its unavailability bound"]
    ),
)
def entry(*, kills, batches):
    """Three-transport MTTF chaos soak plus the recovery-vs-failover
    downtime ratio from the analytic model."""
    __, recovery = replication_vs_recovery_seconds(
        entries=PAPER_ENTRIES, entry_bytes=4 * 64
    )
    unavailability = LEASE_S + FAILOVER_SECONDS
    results, failures = run_soaks(kills=kills, batches=batches)
    return {
        "all_survived": failures == 0,
        "soak_failures": failures,
        "kills_total": sum(result.kills for __, result, __ in results),
        "promotions": sum(len(result.promotions) for __, result, __ in results),
        "recovery_vs_failover_x": recovery / unavailability,
        "recovery_seconds": recovery,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("failover"))
