"""SimClock and PeriodicTimer."""

import pytest

from repro.errors import ClockError
from repro.simulation.clock import PeriodicTimer, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_returns_new_time(self):
        assert SimClock().advance(3.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_advance_zero_is_noop(self):
        clock = SimClock(1.0)
        clock.advance(0.0)
        assert clock.now == 1.0

    def test_advance_to_absolute(self):
        clock = SimClock()
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.0)

    def test_advance_to_current_is_noop(self):
        clock = SimClock(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_reset(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.reset()
        assert clock.now == 0.0


class TestPeriodicTimer:
    def test_not_due_before_period(self):
        timer = PeriodicTimer(10.0)
        assert timer.due(9.99) == 0

    def test_due_once_after_period(self):
        timer = PeriodicTimer(10.0)
        assert timer.due(10.0) == 1

    def test_multiple_periods_collapse(self):
        timer = PeriodicTimer(10.0)
        assert timer.due(35.0) == 3
        assert timer.due(35.0) == 0

    def test_phase_advances(self):
        timer = PeriodicTimer(10.0)
        timer.due(10.0)
        assert timer.next_fire == pytest.approx(20.0)

    def test_start_offset(self):
        timer = PeriodicTimer(10.0, start=5.0)
        assert timer.due(10.0) == 0
        assert timer.due(15.0) == 1

    def test_invalid_period(self):
        with pytest.raises(ClockError):
            PeriodicTimer(0.0)
