"""Checkpoint coordination (the *checkpoint manager* of Figure 4).

The coordinator owns the checkpoint request queue and the durable
*Checkpointed Batch ID*. Requests are issued manually or by the
periodic checkpoint thread; completion is detected inside cache
maintenance (Algorithm 2) and delegated back here, which then

1. atomically persists the checkpointed batch id in the PMem root,
2. pops the request queue, and
3. tells the space manager which versions must now be retained and
   recycles the rest.
"""

from __future__ import annotations

from repro.errors import CheckpointError
from repro.core.queues import CheckpointRequestQueue
from repro.pmem.space import NO_CHECKPOINT, VersionedEntryStore
from repro.simulation.clock import PeriodicTimer


class CheckpointCoordinator:
    """Tracks requested / on-going / completed checkpoints for one node.

    Attributes:
        queue: pending checkpoint batch ids (head = on-going).
        last_completed: batch id of the newest durable checkpoint, read
            back from the PMem root at construction so a recovered node
            resumes with the right barrier.
    """

    def __init__(self, store: VersionedEntryStore, cluster_mode: bool = False):
        self.store = store
        self.cluster_mode = cluster_mode
        self.queue = CheckpointRequestQueue()
        self.last_completed = store.checkpointed_batch_id()
        self.completed_count = 0
        self._external_barrier: int | None = None
        #: cluster mode: completed checkpoint ids not yet confirmed
        #: superseded by the external (cluster-wide) barrier.
        self._completed_history: list[int] = (
            [] if self.last_completed < 0 else [self.last_completed]
        )
        self._sync_barriers()

    def set_external_barrier(self, batch_id: int | None) -> None:
        """Retain versions needed by a *cluster-wide* checkpoint.

        In a sharded deployment a checkpoint is only globally successful
        once every node completed it; a node that races ahead must keep
        the versions of every checkpoint it completed until the cluster
        confirms a newer one is globally done — otherwise completing a
        local checkpoint N+1 would recycle N's versions while N is still
        the only batch every shard can restore. The server facade
        maintains this barrier (the cluster-wide completed minimum);
        history at or above it stays retained.
        """
        self._external_barrier = batch_id
        if batch_id is not None:
            self._completed_history = [
                h for h in self._completed_history if h >= batch_id
            ]
        self._sync_barriers()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------

    def request(self, batch_id: int) -> None:
        """Queue a checkpoint of the state as of ``batch_id``.

        Raises:
            CheckpointError: ``batch_id`` is not newer than the last
                completed checkpoint (nothing to do) or than a queued
                request.
        """
        if batch_id <= self.last_completed:
            raise CheckpointError(
                f"checkpoint {batch_id} not newer than completed "
                f"{self.last_completed}"
            )
        self.queue.push(batch_id)
        self._sync_barriers()

    def head(self) -> int | None:
        """Batch id of the on-going checkpoint, or None when idle."""
        return self.queue.head()

    def max_pending(self) -> int | None:
        """Largest queued checkpoint id.

        Algorithm 2 compares entry versions against the queue *head*;
        with more than one checkpoint outstanding that under-flushes (an
        entry with ``head < version <= tail`` would advance without its
        state becoming durable for the later checkpoint). The cache
        therefore flushes against this larger barrier — a conservative
        superset of the paper that coincides with it whenever at most
        one checkpoint is outstanding (the paper's operating regime).
        """
        pending = self.queue.pending()
        return pending[-1] if pending else None

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def complete_head(self) -> int:
        """Finish the on-going checkpoint (Algorithm 2 lines 25-27).

        Returns the completed batch id.
        """
        batch_id = self.queue.pop()
        self.store.set_checkpointed_batch_id(batch_id)
        self.last_completed = batch_id
        self.completed_count += 1
        self._completed_history.append(batch_id)
        self._sync_barriers()
        self.store.recycle()
        return batch_id

    def complete_all_pending(self) -> list[int]:
        """Complete every queued checkpoint.

        Valid only once the caller has made all pending snapshots
        durable (e.g. after a full cache flush at a training barrier).
        """
        completed = []
        while self.queue.head() is not None:
            completed.append(self.complete_head())
        return completed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def has_completed_any(self) -> bool:
        return self.last_completed != NO_CHECKPOINT

    def _sync_barriers(self) -> None:
        """Push the retention barrier set down to the space manager.

        Standalone (the default): pending requests + the last completed
        checkpoint. Cluster mode: pending requests + every completed
        checkpoint the external barrier has not yet superseded — the
        conservative set a shard must keep while the cluster-wide
        minimum lags its own progress.
        """
        barriers = set(self.queue.pending())
        if self.cluster_mode:
            barriers.update(self._completed_history)
        elif self.last_completed != NO_CHECKPOINT:
            barriers.add(self.last_completed)
        if self._external_barrier is not None and self._external_barrier >= 0:
            barriers.add(self._external_barrier)
        self.store.set_retention_barriers(tuple(barriers))


class PeriodicCheckpointer:
    """The periodic checkpoint thread (Figure 5, right).

    Call :meth:`maybe_request` after each batch with the simulated time;
    when an interval boundary passed, it requests a checkpoint of the
    latest completed batch — the paper's automatic trigger.
    """

    def __init__(self, coordinator: CheckpointCoordinator, interval_seconds: float):
        self.coordinator = coordinator
        self.timer = PeriodicTimer(interval_seconds)
        self.requests_issued = 0

    def maybe_request(self, now: float, latest_completed_batch: int) -> bool:
        """Request a checkpoint if the interval elapsed.

        Multiple elapsed intervals collapse into one request (snapshots
        of the same batch id are indistinguishable). A request already
        queued for ``latest_completed_batch`` makes this a no-op.
        """
        if self.timer.due(now) == 0:
            return False
        if latest_completed_batch <= self.coordinator.last_completed:
            return False
        pending = self.coordinator.queue.pending()
        if pending and pending[-1] >= latest_completed_batch:
            return False
        self.coordinator.request(latest_completed_batch)
        self.requests_issued += 1
        return True
