"""Dense layers and MLP: numeric gradient checks."""

import numpy as np
import pytest

from repro.dlrm.layers import MLP, Dense, binary_cross_entropy
from repro.errors import ConfigError


def numeric_grad(f, x, eps=1e-4):
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        up = f()
        x[idx] = orig - eps
        down = f()
        x[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_linear(self):
        layer = Dense(2, 1, activation="linear")
        layer.weight[...] = np.array([[1.0], [2.0]], dtype=np.float32)
        layer.bias[...] = 0.5
        out = layer.forward(np.array([[1.0, 1.0]], dtype=np.float32))
        assert out[0, 0] == pytest.approx(3.5)

    def test_relu_clips(self):
        layer = Dense(1, 1, activation="relu")
        layer.weight[...] = -1.0
        layer.bias[...] = 0.0
        out = layer.forward(np.array([[2.0]], dtype=np.float32))
        assert out[0, 0] == 0.0

    def test_sigmoid_range(self):
        layer = Dense(3, 2, activation="sigmoid", rng=np.random.default_rng(0))
        out = layer.forward(np.random.default_rng(1).normal(size=(5, 3)).astype(np.float32))
        assert np.all((out > 0) & (out < 1))

    def test_backward_before_forward_rejected(self):
        with pytest.raises(ConfigError):
            Dense(2, 2).backward(np.zeros((1, 2), dtype=np.float32))

    def test_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, activation="relu", rng=rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        target_grad = rng.normal(size=(4, 2)).astype(np.float32)

        def loss():
            return float((layer.forward(x) * target_grad).sum())

        layer.zero_grad()
        layer.forward(x)
        layer.backward(target_grad)
        numeric = numeric_grad(loss, layer.weight)
        assert np.allclose(layer.grad_weight, numeric, atol=1e-2)

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        layer = Dense(3, 2, activation="linear", rng=rng)
        x = rng.normal(size=(2, 3)).astype(np.float32)
        target_grad = rng.normal(size=(2, 2)).astype(np.float32)

        def loss():
            return float((layer.forward(x) * target_grad).sum())

        layer.forward(x)
        grad_x = layer.backward(target_grad)
        numeric = numeric_grad(loss, x)
        assert np.allclose(grad_x, numeric, atol=1e-2)

    def test_invalid_activation(self):
        with pytest.raises(ConfigError):
            Dense(1, 1, activation="tanh")


class TestMLP:
    def test_shapes(self):
        mlp = MLP([8, 16, 4, 1])
        out = mlp.forward(np.zeros((5, 8), dtype=np.float32))
        assert out.shape == (5, 1)

    def test_parameter_count(self):
        mlp = MLP([2, 3, 1])
        assert mlp.num_parameters == (2 * 3 + 3) + (3 * 1 + 1)

    def test_state_roundtrip(self):
        mlp = MLP([2, 3, 1], rng=np.random.default_rng(1))
        state = mlp.state()
        for param in mlp.parameters():
            param += 1.0
        mlp.load_state(state)
        for param, saved in zip(mlp.parameters(), state):
            assert np.array_equal(param, saved)

    def test_state_is_a_copy(self):
        mlp = MLP([2, 1])
        state = mlp.state()
        mlp.parameters()[0][...] += 1.0
        assert not np.array_equal(state[0], mlp.parameters()[0])

    def test_load_state_shape_mismatch(self):
        mlp = MLP([2, 1])
        other = MLP([3, 1])
        with pytest.raises(ConfigError):
            mlp.load_state(other.state())

    def test_full_backprop_matches_numeric(self):
        rng = np.random.default_rng(4)
        mlp = MLP([3, 4, 1], rng=rng)
        x = rng.normal(size=(2, 3)).astype(np.float32)

        def loss():
            return float(mlp.forward(x).sum())

        mlp.zero_grad()
        mlp.forward(x)
        mlp.backward(np.ones((2, 1), dtype=np.float32))
        first_weight = mlp.layers[0].weight
        numeric = numeric_grad(loss, first_weight)
        assert np.allclose(mlp.layers[0].grad_weight, numeric, atol=1e-2)

    def test_too_few_sizes(self):
        with pytest.raises(ConfigError):
            MLP([4])


class TestBCE:
    def test_loss_at_zero_logit(self):
        loss, __ = binary_cross_entropy(
            np.zeros(4, dtype=np.float32), np.array([0, 1, 0, 1])
        )
        assert loss == pytest.approx(np.log(2), rel=1e-5)

    def test_gradient_sign(self):
        __, grad = binary_cross_entropy(
            np.zeros(2, dtype=np.float32), np.array([1.0, 0.0])
        )
        assert grad[0] < 0  # push logit up for positive label
        assert grad[1] > 0

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(size=6).astype(np.float32)
        labels = (rng.random(6) < 0.5).astype(np.float32)

        def loss():
            return binary_cross_entropy(logits, labels)[0]

        __, grad = binary_cross_entropy(logits, labels)
        numeric = numeric_grad(loss, logits)
        assert np.allclose(grad, numeric, atol=1e-3)

    def test_extreme_logits_stable(self):
        loss, grad = binary_cross_entropy(
            np.array([500.0, -500.0], dtype=np.float32), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss)
        assert np.all(np.isfinite(grad))

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            binary_cross_entropy(np.zeros(2), np.zeros(3))
