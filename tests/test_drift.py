"""Temporal drift workload: rotation mechanics and cache impact."""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig, WorkloadConfig
from repro.core.ps_node import PSNode
from repro.errors import ConfigError
from repro.workload.drift import DriftingWorkload


def make_workload(drift=0.2, batches_per_day=4, num_keys=10_000, seed=2):
    return DriftingWorkload(
        WorkloadConfig(num_keys=num_keys, features_per_sample=4, seed=seed),
        drift_fraction=drift,
        batches_per_day=batches_per_day,
    )


class TestRotation:
    def test_no_rotation_within_a_day(self):
        workload = make_workload(batches_per_day=10)
        before = workload.current_hot_keys()
        workload.sample_worker_batches(5, 16)
        assert np.array_equal(before, workload.current_hot_keys())
        assert workload.day == 0

    def test_rotation_at_day_boundary(self):
        workload = make_workload(drift=0.5, batches_per_day=4)
        before = workload.current_hot_keys()
        workload.sample_worker_batches(4, 16)
        assert workload.day == 1
        assert workload.rotations == 1
        after = workload.current_hot_keys()
        assert not np.array_equal(before, after)

    def test_mapping_stays_a_bijection(self):
        workload = make_workload(drift=0.9, batches_per_day=1, num_keys=500)
        for __ in range(10):
            workload.sample_batch_keys(8)
        mapping = workload.distribution._permutation._rank_to_key
        assert sorted(mapping.tolist()) == list(range(500))

    def test_skew_marginals_preserved(self):
        """Drift moves WHICH keys are hot, not HOW hot the head is."""
        workload = make_workload(drift=0.5, batches_per_day=2, num_keys=50_000)
        for __ in range(10):
            workload.sample_batch_keys(32)
        stream = workload.distribution.sample_keys(100_000)
        __, counts = np.unique(stream, return_counts=True)
        counts = np.sort(counts)[::-1]
        head = counts[: max(1, int(0.0005 * 50_000))].sum() / counts.sum()
        assert head == pytest.approx(0.857, abs=0.02)

    def test_zero_drift_is_static(self):
        workload = make_workload(drift=0.0, batches_per_day=1)
        before = workload.current_hot_keys()
        for __ in range(5):
            workload.sample_batch_keys(8)
        assert np.array_equal(before, workload.current_hot_keys())

    def test_deterministic_given_seed(self):
        a = make_workload(seed=7)
        b = make_workload(seed=7)
        for __ in range(6):
            assert np.array_equal(a.sample_batch_keys(16), b.sample_batch_keys(16))

    def test_validation(self):
        with pytest.raises(ConfigError):
            make_workload(drift=1.5)
        with pytest.raises(ConfigError):
            make_workload(batches_per_day=0)
        with pytest.raises(ConfigError):
            make_workload().sample_batch_keys(0)


class TestCacheUnderDrift:
    def test_miss_rate_spikes_then_readapts(self):
        """After a hot-set rotation LRU misses spike, then recovers as
        the new hot keys populate the cache."""
        num_keys = 20_000
        workload = DriftingWorkload(
            WorkloadConfig(num_keys=num_keys, features_per_sample=8, seed=3),
            drift_fraction=0.6,
            batches_per_day=40,
        )
        node = PSNode(
            0,
            ServerConfig(embedding_dim=4, pmem_capacity_bytes=1 << 26, seed=3),
            CacheConfig(capacity_bytes=400 * 4 * 4),  # ~2% of keys
            metadata_only=True,
        )
        cold_per_batch = []
        for batch in range(80):  # day boundary at batch 40
            keys = workload.sample_batch_keys(64).tolist()
            result = node.pull(keys, batch)
            node.maintain(batch)
            node.push(keys, None, batch)
            # "Cold" = anything not served from DRAM: PMem misses plus
            # first-ever accesses (rotated-in hot keys are often new).
            cold_per_batch.append(1.0 - result.hits / result.accesses)
        steady_before = float(np.mean(cold_per_batch[25:40]))
        spike = float(np.mean(cold_per_batch[40:44]))
        steady_after = float(np.mean(cold_per_batch[60:80]))
        assert spike > steady_before * 1.5  # the rotation hurts
        assert steady_after < spike  # LRU adapts to the new hot set
