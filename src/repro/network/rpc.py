"""RPC channel and server dispatcher over the simulated link.

A :class:`RpcChannel` is one worker's connection to one PS node. The
link is a first-class failure domain: the channel frames a request,
moves it over a (possibly faulty) link, waits up to a per-attempt
timeout for the reply, and retries with exponential backoff + jitter
under a per-call budget — all charged to the shared simulated clock.
Budget exhaustion raises :class:`~repro.errors.RpcTimeoutError`.

Wire-error discipline: :meth:`RpcServer.dispatch` never lets a handler
exception cross the link as a raw Python exception. Failures become
error-coded :class:`~repro.network.messages.StatusResponse` frames,
and the channel re-raises them client-side as the matching typed error
(:class:`CheckpointError`, :class:`KeyNotFoundError`, ...). Damaged
frames (``ERR_MESSAGE``) are the one retryable wire error — the client
still holds the pristine frame.

Traffic statistics accumulate per channel on *both* success and
failure paths, so benchmarks report the bytes a lossy deployment would
actually move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.config import RetryConfig
from repro.errors import (
    CheckpointError,
    FailoverError,
    KeyNotFoundError,
    NodeDeadError,
    ReproError,
    RpcTimeoutError,
    ServerError,
    ShardRoutingError,
    StalenessError,
)
from repro.network.messages import (
    MessageError,
    StatusResponse,
    TraceContext,
    decode_envelope,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.clock import SimClock
from repro.simulation.network import Delivery, NetworkModel

# ----------------------------------------------------------------------
# wire-error discipline: exception <-> status-code mapping
# ----------------------------------------------------------------------

#: Ordered (class, code) pairs; the first isinstance match wins, so
#: subclasses must precede their bases.
_CODE_FOR_ERROR: tuple[tuple[type, int], ...] = (
    (CheckpointError, StatusResponse.ERR_CHECKPOINT),
    (KeyNotFoundError, StatusResponse.ERR_KEY_NOT_FOUND),
    (ShardRoutingError, StatusResponse.ERR_ROUTING),
    (MessageError, StatusResponse.ERR_MESSAGE),
    (FailoverError, StatusResponse.ERR_FAILOVER),
    (StalenessError, StatusResponse.ERR_STALENESS),
    (ServerError, StatusResponse.ERR_SERVER),
    (ReproError, StatusResponse.ERR_INTERNAL),
)

_ERROR_FOR_CODE: dict[int, type] = {
    StatusResponse.ERR_CHECKPOINT: CheckpointError,
    StatusResponse.ERR_KEY_NOT_FOUND: KeyNotFoundError,
    StatusResponse.ERR_ROUTING: ShardRoutingError,
    StatusResponse.ERR_MESSAGE: MessageError,
    StatusResponse.ERR_UNHANDLED: MessageError,
    StatusResponse.ERR_FAILOVER: FailoverError,
    StatusResponse.ERR_STALENESS: StalenessError,
    StatusResponse.ERR_SERVER: ServerError,
    StatusResponse.ERR_INTERNAL: ServerError,
}


class Unresponsive(Exception):
    """Raised by a service handler to simulate a *dead process*.

    Deliberately NOT a :class:`ReproError`: the wire-error discipline
    folds library errors into status frames, but a dead process sends
    nothing at all. :meth:`RpcServer.dispatch` converts this into
    silence (no reply frame), so the client's attempt times out exactly
    as if the machine had vanished — which is what lease-based failure
    detection must observe to do its job.
    """


def status_for_exception(exc: ReproError) -> StatusResponse:
    """Fold a handler exception into an error-coded response frame."""
    for cls, code in _CODE_FOR_ERROR:
        if isinstance(exc, cls):
            return StatusResponse(code=code, detail=str(exc))
    return StatusResponse(code=StatusResponse.ERR_INTERNAL, detail=str(exc))


def error_for_status(response: StatusResponse) -> ReproError:
    """The typed client-side error for a non-OK status response."""
    error_cls = _ERROR_FOR_CODE.get(response.code, ServerError)
    return error_cls(f"remote error (code {response.code}): {response.detail}")


# ----------------------------------------------------------------------
# link abstraction
# ----------------------------------------------------------------------


class PerfectLink:
    """Adapter giving a plain :class:`NetworkModel` the link API.

    Always delivers exactly one pristine copy; used whenever no fault
    injection is configured, so the clean path stays byte- and
    time-identical to a fault-free wire.
    """

    def __init__(self, network: NetworkModel):
        self.network = network

    def transfer(
        self, frame: bytes, direction: str, concurrent_flows: int = 1
    ) -> Delivery:
        """Move ``frame`` one way; never drops, duplicates or delays."""
        elapsed = self.network.transfer_time(len(frame), concurrent_flows)
        return Delivery(copies=(frame,), elapsed=elapsed)


def as_link(network) -> "PerfectLink":
    """Coerce a :class:`NetworkModel` (or any link) to the link API."""
    if hasattr(network, "transfer"):
        return network
    return PerfectLink(network)


# ----------------------------------------------------------------------
# channel + server
# ----------------------------------------------------------------------


@dataclass
class RpcStats:
    """Per-channel traffic and reliability counters.

    Byte counters accumulate on success *and* failure paths: a request
    whose reply is lost still moved its bytes over the wire.
    """

    calls: int = 0
    attempts: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    retries: int = 0
    timeouts: int = 0
    wire_errors: int = 0
    backoff_seconds: float = 0.0
    #: Calls abandoned because the node was declared dead (rerouted).
    dead_fails: int = 0

    @property
    def total_bytes(self) -> int:
        return self.request_bytes + self.response_bytes


class RpcServer:
    """Server-side dispatch: message type -> handler.

    Handlers receive the decoded request and return a response message.
    Handler exceptions deriving from :class:`ReproError` are folded
    into error-coded :class:`StatusResponse` frames (wire-error
    discipline); anything else is a server bug and propagates.
    """

    def __init__(self) -> None:
        self._handlers: dict[int, Callable] = {}
        self.dispatches = 0
        self.handler_errors = 0
        self.rejected_frames = 0
        #: Requests answered with silence (dead-process simulation).
        self.silent_drops = 0
        #: Trace context of the request currently being dispatched
        #: (None for context-free frames). Handlers read this to parent
        #: their server-side spans to the client's attempt span.
        self.current_context: TraceContext | None = None

    def register(self, message_type: int, handler: Callable) -> None:
        if message_type in self._handlers:
            raise ReproError(f"handler for type 0x{message_type:02x} already set")
        self._handlers[message_type] = handler

    def dispatch(self, frame: bytes) -> bytes | None:
        """Decode one request frame, run its handler, encode the reply.

        Never raises for frame damage or handler-level
        :class:`ReproError` failures — those become error-coded
        responses the client re-raises as typed errors. A handler
        raising :class:`Unresponsive` produces ``None``: the node is
        (simulated-)dead and sends nothing; the client's attempt will
        time out.
        """
        self.dispatches += 1
        self.current_context = None
        try:
            request, context = decode_envelope(frame)
        except MessageError as exc:
            self.rejected_frames += 1
            return encode_message(
                StatusResponse(code=StatusResponse.ERR_MESSAGE, detail=str(exc))
            )
        self.current_context = context
        handler = self._handlers.get(type(request).TYPE)
        if handler is None:
            self.rejected_frames += 1
            return encode_message(
                StatusResponse(
                    code=StatusResponse.ERR_UNHANDLED,
                    detail=f"no handler registered for {type(request).__name__}",
                )
            )
        try:
            response = handler(request)
        except Unresponsive:
            self.silent_drops += 1
            return None
        except ReproError as exc:
            self.handler_errors += 1
            return encode_message(status_for_exception(exc))
        return encode_message(response)


class RpcChannel:
    """A worker's connection to one PS node, with retry semantics.

    Args:
        server: the node-side dispatcher.
        network: the shared link model — either a plain
            :class:`NetworkModel` (perfect wire) or a
            :class:`~repro.failure.network_faults.FaultyLink`.
        clock: simulated clock advanced by wire time, loss timeouts and
            backoff; pass None to skip timing (pure-functional use).
        retry: retry/timeout policy; defaults to :class:`RetryConfig`.
        channel_id: perturbs the jitter RNG so channels don't share a
            backoff schedule.
        tracer: span sink; every call/attempt/backoff becomes a nested
            span (no-op on the shared disabled tracer).
        registry: when given, successful calls observe their round-trip
            time into the ``repro_rpc_roundtrip_seconds`` histogram,
            labeled by request kind.
        node_dead: optional predicate consulted before each attempt and
            at budget exhaustion. When it returns True the channel
            raises :class:`~repro.errors.NodeDeadError` ("stop
            retrying, reroute") instead of burning attempts or raising
            :class:`~repro.errors.RpcTimeoutError` ("the wire may have
            eaten it, retry"). Wired by
            :class:`~repro.network.frontend.RemotePSClient` to the
            failure detector's verdict so no client ever spins on a
            corpse during a promotion window.
    """

    def __init__(
        self,
        server: RpcServer,
        network: NetworkModel | None = None,
        clock: SimClock | None = None,
        retry: RetryConfig | None = None,
        channel_id: int = 0,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        node_dead: Callable[[], bool] | None = None,
    ):
        self.server = server
        self.link = as_link(network if network is not None else NetworkModel())
        self.clock = clock
        self.retry = retry or RetryConfig()
        self.channel_id = channel_id
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry
        self.node_dead = node_dead
        self.stats = RpcStats()
        self._jitter_rng = np.random.default_rng((self.retry.seed, channel_id))

    @property
    def network(self) -> NetworkModel:
        """The underlying byte-timing model (through any fault wrapper)."""
        return self.link.network

    def call(self, request, concurrent_flows: int = 1, trace_id: int | None = None):
        """Round-trip one request; returns the decoded response.

        Retries lost/damaged deliveries with exponential backoff under
        the per-call budget. Raises the typed server error for non-OK
        status responses and :class:`RpcTimeoutError` when the budget
        is exhausted.

        Observability: the whole call is one ``rpc.call`` span with one
        ``rpc.attempt`` child per exchange and an ``rpc.backoff`` child
        per retry sleep, so a lossy wire's latency structure is visible
        span-by-span in the trace. Each attempt records ``attempt``,
        ``reason`` (ok / lost / reply_damaged / rejected / error) and
        ``deadline_remaining_s``, so backoff storms read differently
        from slow servers. When the tracer is enabled, every wire frame
        additionally carries a :class:`TraceContext` — ``trace_id``
        (caller-supplied for multi-call operations, else derived
        deterministically from the channel id and call count) plus the
        attempt span's id — so server-side spans can be flow-linked
        back to the exact attempt that caused them. With tracing off no
        context is attached and frames are bit-identical to the
        pre-context wire.
        """
        body = request.encode_body()
        frame = encode_frame(request.TYPE, body)
        retry = self.retry
        self.stats.calls += 1
        sampled = self.tracer.enabled
        if sampled and trace_id is None:
            trace_id = ((self.channel_id + 1) << 32) | self.stats.calls
        spent = 0.0
        failure = "no attempt made"
        attempt = 0
        kind = type(request).__name__
        with self.tracer.span(
            "rpc.call", kind=kind, channel=self.channel_id
        ) as call_span:
            if sampled:
                call_span.set(trace_id=trace_id)
            while attempt < retry.max_attempts:
                if self.node_dead is not None and self.node_dead():
                    # Declared dead: fail fast and typed instead of
                    # burning the remaining retry budget on a corpse.
                    self.stats.dead_fails += 1
                    call_span.set(dead=True, attempts=attempt)
                    raise NodeDeadError(
                        f"node behind channel {self.channel_id} declared dead "
                        f"after {attempt} attempt(s)",
                        node_id=self.channel_id,
                        attempts=attempt,
                    )
                patience = min(
                    retry.attempt_timeout_s, retry.call_timeout_s - spent
                )
                if patience <= 0:
                    break
                attempt += 1
                if attempt > 1:
                    self.stats.retries += 1
                self.stats.attempts += 1
                with self.tracer.span("rpc.attempt", n=attempt) as attempt_span:
                    wire_frame = frame
                    if sampled:
                        span_id = getattr(attempt_span, "span_id", 0)
                        attempt_span.set(
                            attempt=attempt,
                            trace_id=trace_id,
                            span_id=span_id,
                            deadline_remaining_s=retry.call_timeout_s - spent,
                        )
                        wire_frame = encode_frame(
                            request.TYPE, body, TraceContext(trace_id, span_id)
                        )
                    reply_frame, elapsed = self._attempt(
                        wire_frame, concurrent_flows, patience
                    )
                    spent += elapsed
                    self._advance(elapsed)
                    attempt_span.set(lost=reply_frame is None)
                if reply_frame is None:
                    failure = "message lost (no reply within attempt timeout)"
                    attempt_span.set(reason="lost")
                else:
                    try:
                        response = decode_message(reply_frame)
                    except MessageError as exc:
                        failure = f"reply damaged in flight: {exc}"
                        attempt_span.set(reason="reply_damaged")
                    else:
                        if isinstance(response, StatusResponse) and not response.ok:
                            self.stats.wire_errors += 1
                            if response.retryable:
                                failure = (
                                    "request damaged in flight "
                                    f"(server says: {response.detail})"
                                )
                                attempt_span.set(reason="rejected")
                            else:
                                call_span.set(error=response.code)
                                attempt_span.set(reason="error")
                                raise error_for_status(response)
                        else:
                            attempt_span.set(reason="ok")
                            call_span.set(attempts=attempt)
                            if self.registry is not None:
                                self.registry.histogram(
                                    "repro_rpc_roundtrip_seconds",
                                    {"kind": kind},
                                ).observe(spent)
                            return response
                if attempt < retry.max_attempts and spent < retry.call_timeout_s:
                    backoff = min(
                        self._jittered_backoff(attempt),
                        retry.call_timeout_s - spent,
                    )
                    spent += backoff
                    self.stats.backoff_seconds += backoff
                    with self.tracer.span("rpc.backoff", seconds=backoff):
                        self._advance(backoff)
            if self.node_dead is not None and self.node_dead():
                self.stats.dead_fails += 1
                call_span.set(dead=True, attempts=attempt)
                raise NodeDeadError(
                    f"node behind channel {self.channel_id} declared dead "
                    f"after {attempt} attempt(s)",
                    node_id=self.channel_id,
                    attempts=attempt,
                )
            self.stats.timeouts += 1
            call_span.set(timeout=True, attempts=attempt)
            raise RpcTimeoutError(
                f"call abandoned after {attempt} attempt(s) / "
                f"{spent:.6f}s of a {retry.call_timeout_s:.6f}s budget: {failure}",
                attempts=attempt,
                spent_seconds=spent,
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _attempt(
        self, frame: bytes, concurrent_flows: int, patience: float
    ) -> tuple[bytes | None, float]:
        """One request/response exchange.

        Returns ``(reply_frame, elapsed)``; ``reply_frame`` is None for
        a lost exchange, in which case ``elapsed`` is the full
        ``patience`` the client waited before giving up. Every
        delivered request copy is dispatched (that is what exercises
        server-side dedup); the first copy's reply travels back.
        """
        request_delivery = self.link.transfer(frame, "request", concurrent_flows)
        self.stats.request_bytes += len(frame)
        elapsed = request_delivery.elapsed
        if not request_delivery.copies:
            return None, patience
        replies = [
            self.server.dispatch(copy) for copy in request_delivery.copies
        ]
        reply = replies[0]
        if reply is None:
            # Dead-process silence: the request was consumed but nothing
            # comes back — the client waits out its full patience.
            return None, patience
        response_delivery = self.link.transfer(reply, "response", concurrent_flows)
        self.stats.response_bytes += len(reply)
        elapsed += response_delivery.elapsed
        if not response_delivery.copies:
            return None, patience
        if elapsed > patience:
            # Delivered, but after the client stopped listening: the
            # server-side effect stands; the client retries.
            return None, patience
        return response_delivery.copies[0], elapsed

    def _jittered_backoff(self, attempt: int) -> float:
        backoff = self.retry.backoff_for_attempt(attempt)
        if self.retry.jitter > 0:
            swing = self.retry.jitter * (2.0 * self._jitter_rng.random() - 1.0)
            backoff *= 1.0 + swing
        return max(0.0, backoff)

    def _advance(self, seconds: float) -> None:
        if self.clock is not None and seconds > 0:
            self.clock.advance(seconds)
