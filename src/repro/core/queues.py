"""The two queues of Figure 5.

* :class:`AccessQueue` — every entry touched by a pull is appended here
  (Algorithm 1 line 17, ``asyncTask``); the cache-maintainer threads
  consume it batch by batch once all pulls of that batch completed.
* :class:`CheckpointRequestQueue` — checkpoint requests (manual or from
  the periodic thread) append the latest completed batch id; the head is
  the *on-going checkpoint* consulted by Algorithm 2.
"""

from __future__ import annotations

from collections import deque

from repro.core.entry import EmbeddingEntry
from repro.errors import CheckpointError, ServerError


class AccessQueue:
    """FIFO of (batch_id, accessed entries) maintenance tasks."""

    def __init__(self) -> None:
        self._tasks: deque[tuple[int, list[EmbeddingEntry]]] = deque()
        self.total_entries_enqueued = 0

    def append(self, batch_id: int, entries: list[EmbeddingEntry]) -> None:
        """Enqueue one pull's accessed entries as a maintenance task."""
        self._tasks.append((batch_id, entries))
        self.total_entries_enqueued += len(entries)

    def pop_batch(self, batch_id: int) -> list[EmbeddingEntry]:
        """Dequeue and concatenate every pending task of ``batch_id``.

        The maintainer is activated only once all pulls of the batch are
        done, so it drains every task stamped with that batch at once.
        Tasks of *earlier* batches still pending are drained too (they
        can only exist if a maintainer round was skipped) to preserve
        FIFO processing order.

        Raises:
            ServerError: a task from a *future* batch is at the head,
                which would mean pulls and maintenance ran out of order.
        """
        entries: list[EmbeddingEntry] = []
        while self._tasks:
            head_batch, __ = self._tasks[0]
            if head_batch > batch_id:
                raise ServerError(
                    f"access queue head is batch {head_batch}, ahead of "
                    f"maintenance round {batch_id}"
                )
            __, task_entries = self._tasks.popleft()
            entries.extend(task_entries)
        return entries

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def pending_entries(self) -> int:
        return sum(len(task) for __, task in self._tasks)


class CheckpointRequestQueue:
    """FIFO of requested checkpoint batch ids (Figure 5, right)."""

    def __init__(self) -> None:
        self._requests: deque[int] = deque()
        self.total_requested = 0

    def push(self, batch_id: int) -> None:
        """Request a checkpoint of the state as of ``batch_id``.

        Raises:
            CheckpointError: requests must be monotonically increasing —
                a checkpoint of an older batch than one already queued is
                meaningless under batch consistency.
        """
        if self._requests and batch_id <= self._requests[-1]:
            raise CheckpointError(
                f"checkpoint request {batch_id} not newer than queued "
                f"{self._requests[-1]}"
            )
        self._requests.append(batch_id)
        self.total_requested += 1

    def head(self) -> int | None:
        """The on-going checkpoint's batch id, or None when idle."""
        return self._requests[0] if self._requests else None

    def pop(self) -> int:
        """Mark the on-going checkpoint done and return its batch id.

        Raises:
            CheckpointError: the queue is empty.
        """
        if not self._requests:
            raise CheckpointError("no on-going checkpoint to complete")
        return self._requests.popleft()

    def pending(self) -> list[int]:
        """All queued checkpoint batch ids, oldest first."""
        return list(self._requests)

    def __len__(self) -> int:
        return len(self._requests)
