"""Log-bucketed histogram: bucket grid, quantiles, exact merging."""

import math
import random

import pytest

from repro.errors import ConfigError
from repro.obs.histogram import (
    BUCKETS_PER_DECADE,
    Histogram,
    bucket_index,
    bucket_upper_bound,
)


class TestBucketGrid:
    def test_value_within_its_bucket_bounds(self):
        for value in (1e-9, 3.7e-6, 0.004, 1.0, 12.5, 9_999.0):
            index = bucket_index(value)
            lower = bucket_upper_bound(index - 1)
            assert lower < value <= bucket_upper_bound(index)

    def test_grid_is_geometric_per_decade(self):
        growth = bucket_upper_bound(1) / bucket_upper_bound(0)
        assert growth == pytest.approx(10 ** (1 / BUCKETS_PER_DECADE))

    def test_boundaries_deterministic(self):
        assert bucket_index(0.001) == bucket_index(0.001)
        assert bucket_upper_bound(5) == bucket_upper_bound(5)


class TestQuantiles:
    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.p50 == 0.0 and hist.mean == 0.0
        assert hist.summary()["max"] == 0.0

    def test_single_value_all_quantiles_equal_it(self):
        hist = Histogram("h")
        hist.observe(0.25)
        # Clamped to observed max -> exact for a single sample.
        assert hist.p50 == hist.p99 == hist.quantile(1.0) == 0.25

    def test_quantile_relative_error_bounded(self):
        rng = random.Random(7)
        values = [rng.lognormvariate(-7, 2) for __ in range(5000)]
        hist = Histogram("h")
        for v in values:
            hist.observe(v)
        values.sort()
        for q in (0.5, 0.95, 0.99):
            exact = values[min(len(values) - 1, int(q * len(values)))]
            estimate = hist.quantile(q)
            # One geometric bucket of slack either way.
            growth = 10 ** (1 / BUCKETS_PER_DECADE)
            assert exact / growth <= estimate <= exact * growth * 1.05

    def test_zero_observations_underflow_bucket(self):
        hist = Histogram("h")
        hist.observe(0.0)
        hist.observe(1.0)
        assert hist.count == 2 and hist.zeros == 1
        assert hist.quantile(0.25) == 0.0
        assert hist.quantile(1.0) == 1.0

    def test_invalid_quantile_raises(self):
        hist = Histogram("h")
        with pytest.raises(ConfigError):
            hist.quantile(1.5)

    def test_min_max_mean(self):
        hist = Histogram("h")
        for v in (0.1, 0.2, 0.3):
            hist.observe(v)
        assert hist.min == pytest.approx(0.1)
        assert hist.max == pytest.approx(0.3)
        assert hist.mean == pytest.approx(0.2)


class TestAlgebra:
    def test_merge_is_exact(self):
        """Split one stream across two histograms; merge == whole."""
        rng = random.Random(13)
        values = [rng.expovariate(500) for __ in range(2000)]
        whole, a, b = Histogram("h"), Histogram("h"), Histogram("h")
        for i, v in enumerate(values):
            whole.observe(v)
            (a if i % 2 else b).observe(v)
        a.merge(b)
        assert a.count == whole.count
        assert a.sum == pytest.approx(whole.sum)
        assert a.cumulative_buckets() == whole.cumulative_buckets()
        for q in (0.5, 0.95, 0.99):
            assert a.quantile(q) == whole.quantile(q)

    def test_merge_empty_is_identity(self):
        hist = Histogram("h")
        hist.observe(0.5)
        before = hist.summary()
        hist.merge(Histogram("h"))
        assert hist.summary() == before

    def test_reset_roundtrip(self):
        hist = Histogram("h")
        for v in (0.0, 1e-6, 3.0):
            hist.observe(v)
        hist.reset()
        assert hist.count == 0 and hist.zeros == 0
        assert hist.cumulative_buckets() == []
        assert hist.min == math.inf and hist.max == -math.inf
