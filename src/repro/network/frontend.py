"""Remote PS frontend: the server protocol over wire messages.

:class:`PSNodeService` wraps one :class:`~repro.core.ps_node.PSNode`
behind an :class:`~repro.network.rpc.RpcServer`; :class:`RemotePSClient`
exposes the familiar ``pull`` / ``maintain`` / ``push`` /
``request_checkpoint`` surface, but every operation round-trips through
encoded bytes on a simulated link — a faithful stand-in for the paper's
TensorFlow-operator <-> PS RPC.

``RemotePSClient`` is protocol-compatible with
:class:`~repro.core.server.OpenEmbeddingServer`, so the functional
trainer runs over it unchanged; tests assert the trained weights are
identical to the in-process path.
"""

from __future__ import annotations

import numpy as np

from repro.config import CacheConfig, ServerConfig
from repro.core.cache import PullResult
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSOptimizer
from repro.core.sharding import HashPartitioner
from repro.errors import ServerError
from repro.network.messages import (
    CheckpointRequest,
    PullRequest,
    PullResponse,
    PushRequest,
    StatusResponse,
)
from repro.network.rpc import RpcChannel, RpcServer
from repro.simulation.clock import SimClock
from repro.simulation.network import NetworkModel


class PSNodeService:
    """One PS node's RPC surface."""

    def __init__(self, node: PSNode):
        self.node = node
        self.server = RpcServer()
        self.server.register(PullRequest.TYPE, self._handle_pull)
        self.server.register(PushRequest.TYPE, self._handle_push)
        self.server.register(CheckpointRequest.TYPE, self._handle_checkpoint)

    def _handle_pull(self, request: PullRequest) -> PullResponse:
        result = self.node.pull(
            [int(k) for k in request.keys], int(request.batch_id)
        )
        if result.weights is None:
            raise ServerError("remote pull requires a value-mode node")
        return PullResponse(batch_id=request.batch_id, weights=result.weights)

    def _handle_push(self, request: PushRequest) -> StatusResponse:
        updated = self.node.push(
            [int(k) for k in request.keys], request.grads, int(request.batch_id)
        )
        return StatusResponse(code=StatusResponse.OK, value=updated)

    def _handle_checkpoint(self, request: CheckpointRequest) -> StatusResponse:
        self.node.request_checkpoint(int(request.batch_id))
        return StatusResponse(code=StatusResponse.OK, value=request.batch_id)


class RemotePSClient:
    """Sharded PS access over RPC channels, one per node.

    Drop-in for :class:`OpenEmbeddingServer`'s training-path protocol
    (pull / maintain / push / request_checkpoint /
    complete_pending_checkpoints / state_snapshot). ``maintain`` runs
    node-side directly: in the real system the maintainer threads live
    in the PS process and are not an RPC.
    """

    def __init__(
        self,
        server_config: ServerConfig | None = None,
        cache_config: CacheConfig | None = None,
        optimizer: PSOptimizer | None = None,
        network: NetworkModel | None = None,
        clock: SimClock | None = None,
    ):
        self.server_config = server_config or ServerConfig()
        self.partitioner = HashPartitioner(self.server_config.num_nodes)
        self.clock = clock or SimClock()
        network = network or NetworkModel()
        self.nodes = [
            PSNode(node_id, self.server_config, cache_config, optimizer)
            for node_id in range(self.server_config.num_nodes)
        ]
        self.services = [PSNodeService(node) for node in self.nodes]
        self.channels = [
            RpcChannel(service.server, network, self.clock)
            for service in self.services
        ]

    # ------------------------------------------------------------------
    # PS protocol over the wire
    # ------------------------------------------------------------------

    def pull(self, keys, batch_id: int) -> PullResult:
        """Pull via per-node RPC; responses gathered in request order."""
        per_node_keys, per_node_positions = self.partitioner.split(keys)
        dim = self.server_config.embedding_dim
        out = np.empty((len(keys), dim), dtype=np.float32)
        flows = sum(1 for node_keys in per_node_keys if node_keys)
        for channel, node_keys, positions in zip(
            self.channels, per_node_keys, per_node_positions
        ):
            if not node_keys:
                continue
            response = channel.call(
                PullRequest(batch_id=batch_id, keys=np.asarray(node_keys)),
                concurrent_flows=max(1, flows),
            )
            out[positions] = response.weights
        return PullResult(weights=out, hits=0, misses=0, created=0)

    def maintain(self, batch_id: int) -> None:
        """Node-side maintenance round (not an RPC in the real system)."""
        for node in self.nodes:
            node.maintain(batch_id)

    def push(self, keys, grads: np.ndarray | None, batch_id: int) -> int:
        if grads is None:
            raise ServerError("remote push requires gradients")
        per_node_keys, per_node_positions = self.partitioner.split(keys)
        flows = sum(1 for node_keys in per_node_keys if node_keys)
        updated = 0
        for channel, node_keys, positions in zip(
            self.channels, per_node_keys, per_node_positions
        ):
            if not node_keys:
                continue
            response = channel.call(
                PushRequest(
                    batch_id=batch_id,
                    keys=np.asarray(node_keys),
                    grads=grads[positions],
                ),
                concurrent_flows=max(1, flows),
            )
            if not response.ok:
                raise ServerError(f"push rejected with code {response.code}")
            updated += response.value
        return updated

    # ------------------------------------------------------------------
    # checkpoint control
    # ------------------------------------------------------------------

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        if batch_id is None:
            batch_id = max(node.latest_completed_batch for node in self.nodes)
        for channel in self.channels:
            response = channel.call(CheckpointRequest(batch_id=batch_id))
            if not response.ok:
                raise ServerError("checkpoint request rejected")
        return batch_id

    def complete_pending_checkpoints(self) -> None:
        for node in self.nodes:
            node.cache.complete_pending_checkpoints()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return sum(node.num_entries for node in self.nodes)

    def state_snapshot(self) -> dict[int, np.ndarray]:
        snapshot: dict[int, np.ndarray] = {}
        for node in self.nodes:
            snapshot.update(node.state_snapshot())
        return snapshot

    def wire_bytes(self) -> int:
        """Total request+response bytes moved over all channels."""
        return sum(channel.stats.total_bytes for channel in self.channels)
