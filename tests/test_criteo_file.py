"""Real Criteo TSV parsing and training on a loaded file."""

import numpy as np
import pytest

from repro.dlrm.criteo_file import NUM_CATEGORICAL, NUM_DENSE, CriteoFileDataset
from repro.errors import ConfigError


def write_file(tmp_path, rows):
    path = tmp_path / "criteo.tsv"
    path.write_text("\n".join(rows) + "\n")
    return path


def make_row(label=1, dense_value="3", cat_value="a9b1c3d4"):
    dense = "\t".join([dense_value] * NUM_DENSE)
    cats = "\t".join([cat_value] * NUM_CATEGORICAL)
    return f"{label}\t{dense}\t{cats}"


@pytest.fixture
def small_file(tmp_path):
    rng = np.random.default_rng(0)
    rows = []
    for i in range(40):
        label = int(rng.random() < 0.3)
        dense = "\t".join(
            "" if rng.random() < 0.2 else str(int(rng.integers(0, 100)))
            for __ in range(NUM_DENSE)
        )
        cats = "\t".join(
            "" if rng.random() < 0.1 else f"{int(rng.integers(0, 2**32)):08x}"
            for __ in range(NUM_CATEGORICAL)
        )
        rows.append(f"{label}\t{dense}\t{cats}")
    return write_file(tmp_path, rows)


class TestParsing:
    def test_loads_all_samples(self, small_file):
        dataset = CriteoFileDataset(small_file, hash_buckets=500)
        assert dataset.num_samples == 40
        assert dataset.num_keys == NUM_CATEGORICAL * 500

    def test_keys_in_field_ranges(self, small_file):
        dataset = CriteoFileDataset(small_file, hash_buckets=500)
        batch = dataset.batch(40, 0)
        for field in range(NUM_CATEGORICAL):
            column = batch.keys[:, field]
            assert np.all(column >= field * 500)
            assert np.all(column < (field + 1) * 500)

    def test_missing_categorical_hits_field_bucket_zero(self, tmp_path):
        dense = "\t".join(["1"] * NUM_DENSE)
        cats = "\t".join([""] * NUM_CATEGORICAL)
        path = write_file(tmp_path, [f"0\t{dense}\t{cats}"])
        dataset = CriteoFileDataset(path, hash_buckets=100)
        batch = dataset.batch(1, 0)
        assert [int(k) % 100 for k in batch.keys[0]] == [0] * NUM_CATEGORICAL

    def test_dense_log_transform(self, tmp_path):
        path = write_file(tmp_path, [make_row(dense_value="99")])
        dataset = CriteoFileDataset(path)
        batch = dataset.batch(1, 0)
        assert batch.dense[0, 0] == pytest.approx(np.log1p(99))

    def test_missing_dense_is_zero(self, tmp_path):
        dense = "\t".join([""] * NUM_DENSE)
        cats = "\t".join(["ff"] * NUM_CATEGORICAL)
        path = write_file(tmp_path, [f"1\t{dense}\t{cats}"])
        dataset = CriteoFileDataset(path)
        assert np.all(dataset.batch(1, 0).dense == 0.0)

    def test_same_value_same_bucket(self, tmp_path):
        path = write_file(tmp_path, [make_row(), make_row()])
        dataset = CriteoFileDataset(path)
        batch = dataset.batch(2, 0)
        assert np.array_equal(batch.keys[0], batch.keys[1])

    def test_wrapping_batches(self, small_file):
        dataset = CriteoFileDataset(small_file, hash_buckets=100)
        wrapped = dataset.batch(16, 1_000_000)
        assert wrapped.keys.shape == (16, NUM_CATEGORICAL)

    def test_deterministic_batches(self, small_file):
        dataset = CriteoFileDataset(small_file, hash_buckets=100)
        a = dataset.batch(8, 3)
        b = dataset.batch(8, 3)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.dense, b.dense)


class TestValidation:
    def test_bad_field_count(self, tmp_path):
        path = write_file(tmp_path, ["1\t2\t3"])
        with pytest.raises(ConfigError):
            CriteoFileDataset(path)

    def test_bad_label(self, tmp_path):
        dense = "\t".join(["1"] * NUM_DENSE)
        cats = "\t".join(["ff"] * NUM_CATEGORICAL)
        path = write_file(tmp_path, [f"2\t{dense}\t{cats}"])
        with pytest.raises(ConfigError):
            CriteoFileDataset(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(ConfigError):
            CriteoFileDataset(path)

    def test_bad_buckets(self, small_file):
        with pytest.raises(ConfigError):
            CriteoFileDataset(small_file, hash_buckets=0)


class TestTrainingOnFile:
    def test_dlrm_trains_on_loaded_file(self, small_file):
        from repro.config import CacheConfig, ServerConfig
        from repro.core.optimizers import PSAdagrad
        from repro.core.server import OpenEmbeddingServer
        from repro.dlrm.dlrm_model import DLRM
        from repro.dlrm.optimizers import Adam
        from repro.dlrm.trainer import SynchronousTrainer

        dataset = CriteoFileDataset(small_file, hash_buckets=200)
        server = OpenEmbeddingServer(
            ServerConfig(num_nodes=2, embedding_dim=8, pmem_capacity_bytes=1 << 26),
            CacheConfig(capacity_bytes=64 << 10),
            PSAdagrad(lr=0.05),
        )
        model = DLRM(
            NUM_CATEGORICAL, 8, num_dense=NUM_DENSE,
            bottom_hidden=(8,), top_hidden=(16,),
        )
        trainer = SynchronousTrainer(
            server, model, dataset,
            num_workers=2, batch_size=8, dense_optimizer=Adam(1e-2),
        )
        results = trainer.train(6)
        assert all(np.isfinite(r.loss) for r in results)
        assert server.num_entries > 0
