"""Shared benchmark infrastructure.

Every bench reproduces one table or figure of the paper:

* the experiment runs exactly once inside ``benchmark.pedantic`` (the
  simulated experiment is deterministic; re-running it only burns time),
* the paper-vs-measured comparison is printed AND written to
  ``benchmarks/results/<name>.txt`` so it survives pytest's output
  capture.

All benches share one scaled operating point
(:data:`repro.simulation.profiles.DEFAULT_PROFILE`); see that module's
docstring for the scaling rules.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.config import CacheConfig, CheckpointConfig
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE
from repro.simulation.trainer_sim import TrainingRunResult, TrainingSimulator
from repro.workload.generator import WorkloadGenerator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile():
    return DEFAULT_PROFILE


@pytest.fixture
def report():
    """Collects report lines; prints and persists them on exit."""

    class Report:
        def __init__(self):
            self.lines: list[str] = []
            self.name = "report"

        def title(self, name: str, text: str) -> None:
            self.name = name
            self.lines.append(f"=== {text} ===")

        def line(self, text: str = "") -> None:
            self.lines.append(text)

        def row(self, label: str, paper, measured, note: str = "") -> None:
            self.lines.append(
                f"  {label:<28} paper: {paper:<14} measured: {measured:<14} {note}"
            )

        def flush(self) -> None:
            text = "\n".join(self.lines)
            print("\n" + text)
            RESULTS_DIR.mkdir(exist_ok=True)
            (RESULTS_DIR / f"{self.name}.txt").write_text(text + "\n")

    rep = Report()
    yield rep
    rep.flush()


def bench_iterations(workers: int) -> int:
    """Iterations for one simulated epoch at benchmark scale.

    Proportional to 1/workers (fixed total samples per epoch) so
    epoch-time scaling across worker counts is meaningful, shortened 4x
    from the profile's full epoch to keep the suite fast.
    """
    return max(40, DEFAULT_PROFILE.epoch_worker_iterations // (workers * 4))


def simulate_epoch(
    system: SystemKind,
    workers: int,
    *,
    cache: CacheConfig | None = None,
    checkpoint: CheckpointConfig | None = None,
    skew: float = 1.0,
    use_cache: bool = True,
    pipelined: bool = True,
    iterations: int | None = None,
    record_trace: bool = False,
    prefetch=None,
) -> TrainingRunResult:
    """One simulated training epoch at the shared operating point."""
    profile = DEFAULT_PROFILE
    cache = cache or profile.cache_config(paper_mb=2048)
    if not pipelined and cache.pipelined:
        cache = CacheConfig(
            capacity_bytes=cache.capacity_bytes,
            pipelined=False,
            maintainer_threads=cache.maintainer_threads,
            track_dirty=cache.track_dirty,
            policy=cache.policy,
        )
    simulator = TrainingSimulator(
        system,
        profile.cluster_config(workers),
        profile.server_config(),
        cache,
        checkpoint or CheckpointConfig.none(),
        WorkloadGenerator(profile.workload_config(skew)),
        use_cache=use_cache,
        record_trace=record_trace,
        prefetch=prefetch,
    )
    return simulator.run(iterations or bench_iterations(workers))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
