"""The perf-regression gate: pairing, policies, verdicts, exit codes."""

import json

import pytest

from repro.bench import (
    GATE_SCHEMA,
    BenchRegistry,
    Headline,
    Param,
    RunRecord,
    Trajectory,
    evaluate_gate,
    render_gate,
)
from repro.errors import ConfigError


def toy_gate(*, x):
    return {"value": 1.0}


def make_registry() -> BenchRegistry:
    registry = BenchRegistry()
    registry.register(
        "toy",
        params=[Param("x", "int", 1)],
        headline={
            "value": Headline(direction="higher", max_regression=0.10),
            "lat_ms": Headline(direction="lower", max_regression=0.10, noise=0.5),
            "flag": Headline(),
        },
    )(toy_gate)
    return registry


@pytest.fixture
def registry():
    return make_registry()


def write_runs(results_dir, runs, bench="toy"):
    """runs: list of (params, metrics) or (params, metrics, repeat)."""
    trajectory = Trajectory(bench)
    for entry in runs:
        params, metrics, repeat = (entry + (0,))[:3] if len(entry) == 2 else entry
        trajectory.append(
            RunRecord(bench, dict(params), seed=0, repeat=repeat, metrics=dict(metrics)),
            keep_history=True,
        )
    return trajectory.save(results_dir)


BASE = {"value": 100.0, "lat_ms": 10.0, "flag": True}


class TestEvaluateGate:
    def gate(self, registry, tmp_path, current_metrics, **kwargs):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir(exist_ok=True)
        cur.mkdir(exist_ok=True)
        write_runs(base, [({"x": 1}, BASE)])
        write_runs(cur, [({"x": 1}, current_metrics)])
        return evaluate_gate(base, cur, registry=registry, **kwargs)

    def statuses(self, verdict):
        return {c["metric"]: c["status"] for c in verdict["checks"]}

    def test_identical_passes(self, registry, tmp_path):
        verdict = self.gate(registry, tmp_path, dict(BASE))
        assert verdict["ok"] is True
        assert verdict["schema"] == GATE_SCHEMA
        assert verdict["benches"] == ["toy"]
        assert verdict["counts"]["regressions"] == 0

    def test_regression_fails(self, registry, tmp_path):
        verdict = self.gate(registry, tmp_path, dict(BASE, value=80.0))
        assert verdict["ok"] is False
        assert self.statuses(verdict)["value"] == "regression"
        [bad] = [c for c in verdict["checks"] if c["status"] == "regression"]
        assert bad["baseline"] == 100.0 and bad["current"] == 80.0
        assert "20.0%" in bad["detail"]

    def test_small_regression_within_threshold_passes(self, registry, tmp_path):
        verdict = self.gate(registry, tmp_path, dict(BASE, value=95.0))
        assert verdict["ok"] is True
        assert self.statuses(verdict)["value"] == "pass"

    def test_improvement_reported_not_failed(self, registry, tmp_path):
        verdict = self.gate(registry, tmp_path, dict(BASE, value=150.0))
        assert verdict["ok"] is True
        assert self.statuses(verdict)["value"] == "improved"
        assert verdict["counts"]["improved"] >= 1

    def test_lower_is_better_direction(self, registry, tmp_path):
        verdict = self.gate(registry, tmp_path, dict(BASE, lat_ms=14.0))
        assert verdict["ok"] is False
        assert self.statuses(verdict)["lat_ms"] == "regression"
        improved = self.gate(registry, tmp_path, dict(BASE, lat_ms=5.0))
        assert self.statuses(improved)["lat_ms"] == "improved"

    def test_noise_floor_absorbs_small_moves(self, registry, tmp_path):
        # +0.4ms is 4% (over nothing) but below the 0.5ms noise floor
        verdict = self.gate(registry, tmp_path, dict(BASE, lat_ms=10.4))
        assert verdict["ok"] is True
        assert self.statuses(verdict)["lat_ms"] == "within-noise"

    def test_boolean_flip_is_regression(self, registry, tmp_path):
        verdict = self.gate(registry, tmp_path, dict(BASE, flag=False))
        assert verdict["ok"] is False
        assert self.statuses(verdict)["flag"] == "regression"

    def test_boolean_false_to_true_passes(self, registry, tmp_path):
        base = tmp_path / "b2"
        cur = tmp_path / "c2"
        base.mkdir()
        cur.mkdir()
        write_runs(base, [({"x": 1}, dict(BASE, flag=False))])
        write_runs(cur, [({"x": 1}, dict(BASE, flag=True))])
        verdict = evaluate_gate(base, cur, registry=registry)
        assert verdict["ok"] is True

    def test_missing_metric_is_regression(self, registry, tmp_path):
        current = {k: v for k, v in BASE.items() if k != "value"}
        verdict = self.gate(registry, tmp_path, current)
        assert verdict["ok"] is False
        [bad] = [c for c in verdict["checks"] if c["status"] == "regression"]
        assert bad["metric"] == "value" and bad["current"] is None
        assert "missing" in bad["detail"]

    def test_missing_current_trajectory_is_regression(self, registry, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        write_runs(base, [({"x": 1}, BASE)])
        verdict = evaluate_gate(base, cur, registry=registry)
        assert verdict["ok"] is False
        assert "no current trajectory" in verdict["checks"][0]["detail"]

    def test_unknown_cell_in_current_ignored(self, registry, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        write_runs(base, [({"x": 1}, BASE)])
        write_runs(cur, [({"x": 1}, BASE), ({"x": 9}, dict(BASE, value=1.0))])
        # the x=9 cell has no baseline: it must not gate
        verdict = evaluate_gate(base, cur, registry=registry)
        assert verdict["ok"] is True

    def test_cells_paired_by_fingerprint_not_order(self, registry, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        write_runs(base, [({"x": 1}, BASE), ({"x": 2}, dict(BASE, value=50.0))])
        # current file lists the cells in the opposite order
        write_runs(cur, [({"x": 2}, dict(BASE, value=50.0)), ({"x": 1}, BASE)])
        verdict = evaluate_gate(base, cur, registry=registry)
        assert verdict["ok"] is True
        assert len(verdict["checks"]) == 6  # 2 cells x 3 metrics

    def test_best_of_repeats(self, registry, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        write_runs(base, [({"x": 1}, BASE, 0), ({"x": 1}, dict(BASE, value=120.0), 1)])
        # current's best repeat matches the baseline's best: no regression
        write_runs(cur, [({"x": 1}, dict(BASE, value=60.0), 0),
                         ({"x": 1}, dict(BASE, value=119.0), 1)])
        verdict = evaluate_gate(base, cur, registry=registry)
        assert self.statuses(verdict)["value"] == "pass"
        [check] = [c for c in verdict["checks"] if c["metric"] == "value"]
        assert check["baseline"] == 120.0 and check["current"] == 119.0

    def test_scale_filter(self, registry, tmp_path):
        verdict = self.gate(registry, tmp_path, dict(BASE), scale="full")
        # everything was recorded at smoke scale -> nothing to compare
        assert verdict["checks"] == [] and verdict["ok"] is True

    def test_bench_filter_unknown_name_raises(self, registry, tmp_path):
        base = tmp_path / "base"
        base.mkdir()
        write_runs(base, [({"x": 1}, BASE)])
        with pytest.raises(ConfigError):
            evaluate_gate(base, base, registry=registry, benches=["nope"])

    def test_missing_dirs_raise(self, registry, tmp_path):
        with pytest.raises(ConfigError):
            evaluate_gate(tmp_path / "nope", tmp_path, registry=registry)
        with pytest.raises(ConfigError):
            evaluate_gate(tmp_path, tmp_path / "nope", registry=registry)

    def test_render_mentions_outcome(self, registry, tmp_path):
        good = self.gate(registry, tmp_path, dict(BASE))
        assert "PASS" in render_gate(good)
        bad = self.gate(registry, tmp_path, dict(BASE, value=1.0))
        text = render_gate(bad)
        assert "FAIL" in text and "regression" in text


class TestGateCli:
    """Exit codes are pinned: 0 pass, 1 regression, 2 usage/IO error."""

    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        from repro.cli import main

        results = tmp_path_factory.mktemp("results")
        assert main(
            ["bench", "run", "table1_devices", "--smoke",
             "--record", str(results)]
        ) == 0
        return results

    def test_exit_0_on_self_comparison(self, recorded, capsys):
        from repro.cli import main

        code = main(["bench", "gate", "--baseline", str(recorded)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_exit_1_on_injected_regression(self, recorded, tmp_path, capsys):
        from repro.cli import main

        doctored = tmp_path / "current"
        doctored.mkdir()
        source = recorded / "BENCH_table1_devices.json"
        payload = json.loads(source.read_text())
        for run in payload["runs"]:
            run["metrics"]["read_ratio"] *= 0.5  # direction=higher headline
        (doctored / source.name).write_text(json.dumps(payload))
        code = main([
            "bench", "gate", "--baseline", str(recorded),
            "--current", str(doctored),
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_exit_2_on_missing_baseline_dir(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["bench", "gate", "--baseline", str(tmp_path / "absent")])
        assert code == 2
        assert "baseline" in capsys.readouterr().err

    def test_verdict_json_written(self, recorded, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "verdict.json"
        code = main([
            "bench", "gate", "--baseline", str(recorded), "--out", str(out),
        ])
        assert code == 0
        verdict = json.loads(out.read_text())
        assert verdict["schema"] == GATE_SCHEMA
        assert verdict["ok"] is True
        assert verdict["counts"]["total"] == len(verdict["checks"]) > 0
