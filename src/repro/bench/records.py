"""``repro-bench-v1`` run records and on-disk BENCH trajectories.

Every sweep cell produces one :class:`RunRecord` — parameters, derived
seed, scale, status (``ok`` / ``error``), the metrics dict, wall-clock
duration, and environment provenance (python / numpy / platform / git
commit). Records accumulate in per-benchmark *trajectory* files
``benchmarks/results/BENCH_<name>.json``::

    {"schema": "repro-bench-v1", "bench": "prefetch", "runs": [...]}

The trajectory keeps at most one record per ``(cell, repeat, scale)``
(newest wins) unless history is explicitly kept, so committed baselines
stay small and the regression gate can pair baseline and current runs
by cell fingerprint.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import pathlib
import platform
import subprocess
from dataclasses import asdict, dataclass, field

from repro.errors import ConfigError

__all__ = [
    "BENCH_SCHEMA",
    "RunRecord",
    "Trajectory",
    "cell_fingerprint",
    "derive_seed",
    "environment_info",
    "validate_trajectory",
]

BENCH_SCHEMA = "repro-bench-v1"

_STATUSES = ("ok", "error")
_SCALES = ("smoke", "full")


def cell_fingerprint(bench: str, params: dict) -> str:
    """Stable 12-hex id of one sweep cell (bench + canonical params)."""
    blob = json.dumps([bench, sorted(params.items())], sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def derive_seed(base_seed: int, bench: str, params: dict, repeat: int = 0) -> int:
    """Deterministic per-cell seed: stable across processes and runs."""
    blob = json.dumps(
        [int(base_seed), bench, sorted(params.items()), int(repeat)],
        sort_keys=True,
        default=str,
    )
    digest = hashlib.sha256(blob.encode()).digest()
    return int.from_bytes(digest[:4], "little")


def environment_info(extra: dict | None = None) -> dict:
    """Provenance stamped onto every record."""
    try:
        git = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=pathlib.Path(__file__).resolve().parent,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        git = None
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    info = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": numpy_version,
        "git": git,
    }
    if extra:
        info.update(extra)
    return info


@dataclass
class RunRecord:
    """One benchmark execution: cell identity, outcome, provenance."""

    bench: str
    params: dict
    seed: int
    scale: str = "smoke"
    repeat: int = 0
    status: str = "ok"
    metrics: dict = field(default_factory=dict)
    error: str | None = None
    duration_s: float = 0.0
    env: dict = field(default_factory=dict)
    created: str = ""
    fingerprint: str = ""

    def __post_init__(self):
        if self.status not in _STATUSES:
            raise ConfigError(f"record status {self.status!r} not in {_STATUSES}")
        if self.scale not in _SCALES:
            raise ConfigError(f"record scale {self.scale!r} not in {_SCALES}")
        if not self.fingerprint:
            self.fingerprint = cell_fingerprint(self.bench, self.params)
        if not self.created:
            self.created = (
                datetime.datetime.now(datetime.timezone.utc)
                .isoformat(timespec="seconds")
            )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"record has unknown fields {sorted(unknown)}")
        missing = {"bench", "params"} - set(payload)
        if missing:
            raise ConfigError(f"record missing fields {sorted(missing)}")
        return cls(**payload)


class Trajectory:
    """All recorded runs of one benchmark, bound to a JSON file."""

    def __init__(self, bench: str, runs: list | None = None):
        self.bench = bench
        self.runs: list[RunRecord] = list(runs or [])

    # -- construction --------------------------------------------------

    @staticmethod
    def path_for(results_dir, bench: str) -> pathlib.Path:
        return pathlib.Path(results_dir) / f"BENCH_{bench}.json"

    @classmethod
    def load(cls, path) -> "Trajectory":
        path = pathlib.Path(path)
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}: invalid JSON ({exc})") from None
        errors = validate_trajectory(payload)
        if errors:
            raise ConfigError(f"{path}: " + "; ".join(errors))
        runs = [RunRecord.from_dict(run) for run in payload["runs"]]
        return cls(payload["bench"], runs)

    @classmethod
    def load_or_create(cls, results_dir, bench: str) -> "Trajectory":
        path = cls.path_for(results_dir, bench)
        if path.is_file():
            return cls.load(path)
        return cls(bench)

    # -- mutation ------------------------------------------------------

    def append(self, record: RunRecord, keep_history: bool = False) -> None:
        """Add a record; by default the newest run of a cell replaces
        the previous run of the same ``(fingerprint, repeat, scale)``."""
        if record.bench != self.bench:
            raise ConfigError(
                f"record bench {record.bench!r} != trajectory {self.bench!r}"
            )
        if not keep_history:
            key = (record.fingerprint, record.repeat, record.scale)
            self.runs = [
                run
                for run in self.runs
                if (run.fingerprint, run.repeat, run.scale) != key
            ]
        self.runs.append(record)

    def save(self, results_dir) -> pathlib.Path:
        path = self.path_for(results_dir, self.bench)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": BENCH_SCHEMA,
            "bench": self.bench,
            "runs": [run.to_dict() for run in self.runs],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path

    # -- queries -------------------------------------------------------

    def ok_runs(self, scale: str | None = None) -> list:
        return [
            run
            for run in self.runs
            if run.status == "ok" and (scale is None or run.scale == scale)
        ]

    def completed_keys(self, scale: str) -> set:
        """(fingerprint, repeat) pairs already recorded ok at ``scale``
        — what a resumed sweep may skip."""
        return {
            (run.fingerprint, run.repeat) for run in self.ok_runs(scale=scale)
        }

    def latest_ok(self, scale: str | None = None, metric: str | None = None):
        """Newest ok record (optionally restricted to one containing
        ``metric``), or None."""
        for run in reversed(self.ok_runs(scale=scale)):
            if metric is None or metric in run.metrics:
                return run
        return None


def validate_trajectory(payload) -> list:
    """Schema-check one trajectory object; returns error strings."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["trajectory: top level must be an object"]
    if payload.get("schema") != BENCH_SCHEMA:
        errors.append(f"trajectory: schema must be {BENCH_SCHEMA!r}")
    if not isinstance(payload.get("bench"), str) or not payload.get("bench"):
        errors.append("trajectory: 'bench' must be a non-empty string")
    runs = payload.get("runs")
    if not isinstance(runs, list):
        errors.append("trajectory: 'runs' must be a list")
        return errors
    for index, run in enumerate(runs):
        where = f"runs[{index}]"
        if not isinstance(run, dict):
            errors.append(f"{where}: must be an object")
            continue
        if run.get("bench") != payload.get("bench"):
            errors.append(f"{where}: bench mismatch")
        if run.get("status") not in _STATUSES:
            errors.append(f"{where}: status must be one of {_STATUSES}")
        if run.get("scale") not in _SCALES:
            errors.append(f"{where}: scale must be one of {_SCALES}")
        if not isinstance(run.get("params"), dict):
            errors.append(f"{where}: params must be an object")
        metrics = run.get("metrics")
        if not isinstance(metrics, dict):
            errors.append(f"{where}: metrics must be an object")
        else:
            for name, value in metrics.items():
                if not isinstance(value, (int, float, bool)):
                    errors.append(
                        f"{where}: metric {name!r} must be numeric/boolean"
                    )
        if run.get("status") == "ok" and not metrics:
            errors.append(f"{where}: ok run with no metrics")
        if run.get("status") == "error" and not run.get("error"):
            errors.append(f"{where}: error run needs an 'error' message")
        if not isinstance(run.get("fingerprint"), str) or not run.get("fingerprint"):
            errors.append(f"{where}: missing fingerprint")
        if not isinstance(run.get("env"), dict):
            errors.append(f"{where}: env must be an object")
        if not isinstance(run.get("created"), str) or not run.get("created"):
            errors.append(f"{where}: missing created timestamp")
    return errors
