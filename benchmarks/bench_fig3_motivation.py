"""Figure 3: penalty of a naive fine-grained hybrid cache / PMem hash.

The motivation experiment: replacing the DRAM parameter server with (a)
a fine-grained DRAM-PMem cache maintained inline (the Ori-Cache
construction) or (b) a PMem-native concurrent hash, degrades training
— and degrades *worse* as GPU workers multiply.

Paper numbers (training-time ratio to DRAM-PS at the same GPU count):
  hybrid cache: 1.24 (4), 1.558 (8), 2.27 (16)
  PMem-Hash:    2.16 (4), 2.85 (8),  4.17 (16)
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import pytest

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.simulation.cluster import SystemKind

PAPER_HYBRID = {4: 1.24, 8: 1.558, 16: 2.27}
PAPER_HASH = {4: 2.16, 8: 2.85, 16: 4.17}


def test_fig3_motivation(benchmark, report):
    def run():
        rows = {}
        for workers in (4, 8, 16):
            dram = simulate_epoch(SystemKind.DRAM_PS, workers).sim_seconds
            hybrid = simulate_epoch(SystemKind.ORI_CACHE, workers).sim_seconds
            pmem_hash = simulate_epoch(SystemKind.PMEM_HASH, workers).sim_seconds
            rows[workers] = (hybrid / dram, pmem_hash / dram)
        return rows

    rows = run_once(benchmark, run)
    report.title(
        "fig3_motivation",
        "Figure 3: naive hybrid & PMem-Hash training time vs DRAM-PS",
    )
    for workers, (hybrid, pmem_hash) in rows.items():
        report.row(
            f"hybrid cache @ {workers} GPUs",
            f"{PAPER_HYBRID[workers]:.2f}x",
            f"{hybrid:.2f}x",
        )
        report.row(
            f"PMem-Hash    @ {workers} GPUs",
            f"{PAPER_HASH[workers]:.2f}x",
            f"{pmem_hash:.2f}x",
        )

    # Shape assertions: both penalties exist and grow with worker count.
    hybrids = [rows[w][0] for w in (4, 8, 16)]
    hashes = [rows[w][1] for w in (4, 8, 16)]
    assert hybrids[0] > 1.05 and hashes[0] > 1.5
    assert hybrids == sorted(hybrids)
    assert hashes == sorted(hashes)
    assert hybrids[2] == pytest.approx(PAPER_HYBRID[16], rel=0.25)
    assert hashes[2] == pytest.approx(PAPER_HASH[16], rel=0.25)


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if metrics["hybrid_ratio"] <= 1.0:
        failures.append("hybrid cache shows no penalty over DRAM-PS")
    if metrics["pmem_hash_ratio"] <= metrics["hybrid_ratio"]:
        failures.append("PMem-Hash should degrade worse than the hybrid cache")
    return failures


@register(
    "fig3_motivation",
    params=[Param("workers", "int", 16)],
    headline={
        "hybrid_ratio": Headline(direction="lower", max_regression=0.10),
        "pmem_hash_ratio": Headline(direction="lower", max_regression=0.10),
    },
    check=_check,
)
def entry(*, workers):
    """Training-time penalty of the naive hybrid cache and PMem hash
    relative to the DRAM parameter server at one GPU count."""
    dram = simulate_epoch(SystemKind.DRAM_PS, workers).sim_seconds
    hybrid = simulate_epoch(SystemKind.ORI_CACHE, workers).sim_seconds
    pmem_hash = simulate_epoch(SystemKind.PMEM_HASH, workers).sim_seconds
    return {
        "hybrid_ratio": hybrid / dram,
        "pmem_hash_ratio": pmem_hash / dram,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig3_motivation"))
