"""Log-bucketed latency histograms with quantile estimation.

Latency distributions in this repo span seven orders of magnitude —
a DRAM cache hit is priced in tens of nanoseconds, a checkpoint pause
in whole seconds — so fixed-width buckets are useless. A
:class:`Histogram` uses geometric buckets (a fixed number per decade),
stores them sparsely, and answers p50/p95/p99/max by walking the
cumulative counts. Bucket *boundaries* are deterministic functions of
the bucket index, so two histograms built anywhere (different PS nodes,
different runs) merge exactly: same-index counts simply add.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

#: Geometric buckets per factor-of-10; 8 gives <= ~15 % relative
#: quantile error, plenty for p50/p95/p99 reporting.
BUCKETS_PER_DECADE = 8

_GROWTH = 10.0 ** (1.0 / BUCKETS_PER_DECADE)
_LOG_GROWTH = math.log(_GROWTH)


def bucket_index(value: float) -> int:
    """Bucket holding ``value``: the integer ``i`` with
    ``growth**i < value <= growth**(i+1)`` (values <= 0 go to the
    dedicated underflow bucket, index ``None`` handled by caller)."""
    return math.ceil(math.log(value) / _LOG_GROWTH) - 1


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper boundary of bucket ``index``."""
    return _GROWTH ** (index + 1)


class Histogram:
    """A mergeable, sparsely-stored log-bucketed histogram.

    Args:
        name: metric name (exported).
        unit: unit suffix for exporters, default seconds.
    """

    __slots__ = ("name", "unit", "count", "sum", "min", "max", "zeros", "_buckets")

    def __init__(self, name: str = "", unit: str = "seconds"):
        self.name = name
        self.unit = unit
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zeros = 0  # observations <= 0 (dedicated underflow bucket)
        self._buckets: dict[int, int] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1].

        Returns the upper bound of the bucket holding the rank-``q``
        observation, clamped to the observed max (so ``quantile(1.0)``
        is exactly the max). Empty histograms return 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = self.zeros
        if cumulative >= rank and self.zeros:
            return min(0.0, self.max)
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                return min(bucket_upper_bound(index), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style.

        The implicit ``+Inf`` bucket is *not* included; exporters add
        it with ``count``. Values <= 0 count toward every bucket (they
        are below every boundary).
        """
        out: list[tuple[float, int]] = []
        cumulative = self.zeros
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            out.append((bucket_upper_bound(index), cumulative))
        return out

    def summary(self) -> dict:
        """Plain-dict snapshot used by the JSON exporter."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram (exact: same bucket grid)."""
        self.count += other.count
        self.sum += other.sum
        self.zeros += other.zeros
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n

    def reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zeros = 0
        self._buckets.clear()

    def __repr__(self) -> str:
        if self.count == 0:
            return f"Histogram({self.name!r}, empty)"
        return (
            f"Histogram({self.name!r}, n={self.count}, "
            f"p50={self.p50:.3g}, p99={self.p99:.3g}, max={self.max:.3g})"
        )
