"""Elasticity ablation: consistent-hash ring vs static modulo partition.

The paper's PS routes a key with ``hash(id) % num_nodes`` (Section IV),
which remaps ~n/(n+1) of all keys when a node joins — effectively a
full restart. The :class:`~repro.core.sharding.ConsistentHashRing`
bounds the remap at the theoretical minimum ``1/(n+1)`` (keys only move
*onto* the new node). This bench measures three things:

* **keys moved** on a sampled keyspace, ring vs modulo, across node
  counts — the ring must stay within 2x of the theoretical minimum
  while modulo moves the near-total ~n/(n+1);
* **throughput dip**: the simulated migration pause of a mid-epoch
  reshard (``TrainingSimulator(reshard_at=...)``), ring vs modulo —
  the pause scales with keys moved, so the ring's dip is a fraction of
  modulo's;
* a **live migration demo** on a real 3-node cluster: scale out, then
  in, and verify the weights never change by a bit.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import Headline, Param, register
from repro.config import CacheConfig, ServerConfig
from repro.core.migration import ShardMigrator
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.core.sharding import ConsistentHashRing, HashPartitioner
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator
from repro.workload.generator import WorkloadGenerator

SAMPLE_KEYS = 200_000
NODE_COUNTS = (2, 4, 8)
VNODES = 64
DIM = 8


def moved_fractions(
    num_nodes: int, sample_keys: int = SAMPLE_KEYS
) -> tuple[float, float]:
    """(ring, modulo) fraction of a sampled keyspace that changes owner
    when the cluster grows ``num_nodes -> num_nodes + 1``."""
    keys = range(sample_keys)
    ring = ConsistentHashRing(num_nodes, VNODES)
    ring_moved = len(ring.moved_keys(ring.with_nodes(num_nodes + 1), keys))
    old = HashPartitioner(num_nodes)
    new = HashPartitioner(num_nodes + 1)
    modulo_moved = sum(1 for k in keys if old.node_of(k) != new.node_of(k))
    return ring_moved / sample_keys, modulo_moved / sample_keys


def throughput_dip(partitioner: str, profile) -> tuple[float, float, int]:
    """(migration pause s, epoch s, keys moved) of a mid-epoch reshard
    4 -> 5 nodes under ``partitioner`` in the training simulator."""
    import dataclasses

    simulator = TrainingSimulator(
        SystemKind.PMEM_OE,
        profile.cluster_config(8),
        dataclasses.replace(
            profile.server_config(4), partitioner=partitioner, ring_vnodes=VNODES
        ),
        profile.cache_config(paper_mb=2048.0),
        workload=WorkloadGenerator(profile.workload_config(1.0)),
        reshard_at=40,
    )
    result = simulator.run(80)
    return (
        result.migration_pause_seconds,
        result.sim_seconds,
        result.migration_keys_moved,
    )


def live_demo() -> tuple[float, float, bool]:
    """Scale a real 3-node cluster out then back in; return the two
    moved fractions and whether every weight stayed bit-identical."""
    config = ServerConfig(
        num_nodes=3,
        embedding_dim=DIM,
        pmem_capacity_bytes=1 << 26,
        partitioner="ring",
        ring_vnodes=VNODES,
        seed=11,
    )
    server = OpenEmbeddingServer(
        config, CacheConfig(capacity_bytes=64 * DIM * 4), PSAdagrad(lr=0.05)
    )
    rng = np.random.default_rng(11)
    for batch in range(6):
        keys = sorted(rng.choice(600, size=48, replace=False).tolist())
        server.pull(keys, batch)
        server.maintain(batch)
        server.push(
            keys, rng.normal(0, 0.1, (48, DIM)).astype(np.float32), batch
        )
    before = server.state_snapshot()
    out = ShardMigrator(server).scale_out()
    in_ = ShardMigrator(server).scale_in()
    after = server.state_snapshot()
    identical = set(before) == set(after) and all(
        np.array_equal(before[k], after[k]) for k in before
    )
    return out.moved_fraction, in_.moved_fraction, identical


def test_elastic_ring_vs_modulo(benchmark, report, profile):
    def run():
        fractions = {n: moved_fractions(n) for n in NODE_COUNTS}
        dips = {p: throughput_dip(p, profile) for p in ("ring", "modulo")}
        return fractions, dips, live_demo()

    fractions, dips, (out_frac, in_frac, identical) = run_once(benchmark, run)

    report.title(
        "elastic",
        "Elasticity: consistent-hash ring vs modulo partition (scale-out by 1)",
    )
    for n in NODE_COUNTS:
        ring_frac, modulo_frac = fractions[n]
        minimum = 1 / (n + 1)
        report.row(
            f"keys moved, {n} -> {n + 1} nodes",
            f"min {minimum:.1%} / mod ~{n / (n + 1):.0%}",
            f"ring {ring_frac:.1%} / mod {modulo_frac:.1%}",
            f"ring = {ring_frac / minimum:.2f}x min",
        )
    report.line()
    ring_pause, ring_epoch, ring_moved = dips["ring"]
    mod_pause, mod_epoch, mod_moved = dips["modulo"]
    report.row(
        "reshard pause (sim, 4 -> 5)",
        "scales w/ moved",
        f"ring {ring_pause * 1e3:.2f} ms / mod {mod_pause * 1e3:.2f} ms",
        f"{mod_pause / ring_pause:.1f}x dip saved",
    )
    report.row(
        "keys moved mid-epoch",
        "-",
        f"ring {ring_moved} / mod {mod_moved}",
    )
    report.row(
        "epoch time w/ reshard",
        "-",
        f"ring {ring_epoch:.3f} s / mod {mod_epoch:.3f} s",
    )
    report.line()
    report.line(
        f"  live 3-node demo: scale-out moved {out_frac:.1%} of resident keys, "
        f"scale-in moved {in_frac:.1%}; weights bit-identical: {identical}"
    )

    # Acceptance: ring within 2x of the theoretical minimum at every
    # node count; modulo near-total; the live reshard touches no value.
    for n in NODE_COUNTS:
        ring_frac, modulo_frac = fractions[n]
        assert ring_frac <= 2 * (1 / (n + 1)), (n, ring_frac)
        assert modulo_frac >= 0.9 * (n / (n + 1)), (n, modulo_frac)
    assert ring_moved < mod_moved
    assert ring_pause < mod_pause
    assert identical


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    minimum = 1 / (params["num_nodes"] + 1)
    if metrics["ring_moved_frac"] > 2 * minimum:
        failures.append(
            f"ring moved {metrics['ring_moved_frac']:.1%}, over 2x the "
            f"{minimum:.1%} theoretical minimum"
        )
    if not metrics["live_identical"]:
        failures.append("live scale-out/in changed a weight")
    return failures


@register(
    "elastic",
    params=[
        Param("num_nodes", "int", 4, help="cluster size before scale-out"),
        Param("sample_keys", "int", SAMPLE_KEYS),
    ],
    smoke={"sample_keys": 20_000},
    headline={
        "ring_moved_frac": Headline(direction="lower", max_regression=0.10),
        "live_identical": Headline(),
    },
    check=_check,
)
def entry(*, num_nodes, sample_keys):
    """Ring-vs-modulo moved-key fractions at one cluster size plus the
    live scale-out/in bit-identicality demo."""
    ring_frac, modulo_frac = moved_fractions(num_nodes, sample_keys)
    out_frac, in_frac, identical = live_demo()
    return {
        "ring_moved_frac": ring_frac,
        "modulo_moved_frac": modulo_frac,
        "ring_vs_min_x": ring_frac * (num_nodes + 1),
        "live_out_frac": out_frac,
        "live_in_frac": in_frac,
        "live_identical": identical,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("elastic"))
