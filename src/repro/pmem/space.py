"""Space manager for versioned embedding entries on PMem.

Section V-C: *"we rely on the underlying space manager of PMem to
prevent them from being overwritten by the newer versions flushed to
PMem. The space manager will recycle the space of these entries once the
new checkpoint is done."*

Each flush of an entry creates an :class:`EntryVersion` tagged with the
batch id it was last updated in. The store retains, per key:

* the newest version overall (the running state), and
* for every *retention barrier* (an outstanding or last-completed
  checkpoint batch id), the newest version at or below that barrier —
  exactly what recovery to that checkpoint needs.

Everything else is recycled eagerly on flush, so steady-state footprint
is at most ``1 + len(barriers)`` versions per key.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PMemError, RecoveryError
from repro.pmem.pool import PmemPool

CHECKPOINT_ID_FIELD = "checkpointed_batch_id"
"""Root field holding the batch id of the last completed checkpoint."""

NO_CHECKPOINT = -1
"""Sentinel checkpoint id meaning 'no checkpoint has ever completed'."""


@dataclass(frozen=True)
class EntryVersion:
    """One durable snapshot of an embedding entry."""

    key: int
    batch_id: int

    @property
    def pool_key(self) -> tuple[str, int, int]:
        return ("entry", self.key, self.batch_id)


class VersionedEntryStore:
    """Versioned entry storage with checkpoint-aware retention.

    Args:
        pool: the persistent pool all versions live in.
        entry_bytes: payload size of one entry (used for metadata-only
            writes where no weight array is supplied).

    The version index (``key -> sorted batch ids``) is volatile DRAM
    state; after a crash it is rebuilt by :meth:`rebuild_from_pool`.
    """

    def __init__(self, pool: PmemPool, entry_bytes: int):
        if entry_bytes <= 0:
            raise PMemError(f"entry_bytes must be positive, got {entry_bytes}")
        self.pool = pool
        self.entry_bytes = entry_bytes
        self._versions: dict[int, list[int]] = {}
        self._barriers: tuple[int, ...] = ()
        if CHECKPOINT_ID_FIELD not in pool.root.fields():
            pool.root.set(CHECKPOINT_ID_FIELD, NO_CHECKPOINT)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def put(self, key: int, batch_id: int, weights: np.ndarray | None) -> float:
        """Persist a new version of ``key``; returns device write seconds.

        Older versions not protected by a retention barrier are recycled
        immediately.
        """
        elapsed = self.pool.write(
            ("entry", key, batch_id), weights, nbytes=self.entry_bytes
        )
        versions = self._versions.setdefault(key, [])
        if batch_id not in versions:
            versions.append(batch_id)
            versions.sort()
        self._prune_key(key)
        return elapsed

    def set_retention_barriers(self, barriers: tuple[int, ...]) -> None:
        """Declare which checkpoint batch ids must stay recoverable.

        Called by the checkpoint manager whenever the set of outstanding
        checkpoints (plus the last completed one) changes. Pruning on
        subsequent writes honours the new barrier set; existing excess
        versions are recycled lazily via :meth:`recycle`.
        """
        self._barriers = tuple(sorted(set(barriers)))

    def ingest(self, key: int, batch_id: int, stored: np.ndarray | None) -> float:
        """Persist a version copied from another shard, WITHOUT pruning.

        Migration (``repro.core.migration``) transfers every retained
        version of a key verbatim — including versions protected by the
        source's barriers that this store does not know about yet — so
        the new owner can recover to exactly the same checkpoints the
        old owner could. Returns device write seconds.
        """
        elapsed = self.pool.write(
            ("entry", key, batch_id), stored, nbytes=self.entry_bytes
        )
        versions = self._versions.setdefault(key, [])
        if batch_id not in versions:
            versions.append(batch_id)
            versions.sort()
        return elapsed

    def drop_key(self, key: int) -> int:
        """Free *every* stored version of ``key``; returns versions freed.

        Used by live shard migration (``repro.core.migration``): after a
        key's entries have been copied to their new owner and the ring
        epoch has committed, the source shard drops its copies. Barriers
        are intentionally ignored — ownership has moved, so this shard
        will never be asked to recover the key.
        """
        versions = self._versions.pop(key, [])
        for batch_id in versions:
            self.pool.free(("entry", key, batch_id))
        return len(versions)

    def recycle(self) -> int:
        """Recycle all versions unprotected by the current barriers.

        Returns the number of versions freed. Invoked when a checkpoint
        completes ("the space manager will recycle the space of these
        entries once the new checkpoint is done").
        """
        freed = 0
        for key in list(self._versions):
            freed += self._prune_key(key)
        return freed

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def has(self, key: int) -> bool:
        return bool(self._versions.get(key))

    def latest_batch_id(self, key: int) -> int:
        """Batch id of the newest stored version of ``key``."""
        versions = self._require_versions(key)
        return versions[-1]

    def read_latest(self, key: int) -> tuple[int, np.ndarray | None]:
        """Newest version of ``key`` as ``(batch_id, weights)``."""
        versions = self._require_versions(key)
        batch_id = versions[-1]
        return batch_id, self.pool.read(("entry", key, batch_id))

    def read_at_most(self, key: int, barrier: int) -> tuple[int, np.ndarray | None]:
        """Newest version of ``key`` with ``batch_id <= barrier``.

        Raises:
            KeyError: no version at or below the barrier exists.
        """
        versions = self._require_versions(key)
        eligible = [v for v in versions if v <= barrier]
        if not eligible:
            raise KeyError(f"key {key} has no version <= {barrier}")
        batch_id = eligible[-1]
        return batch_id, self.pool.read(("entry", key, batch_id))

    def keys(self) -> list[int]:
        """All keys with at least one stored version."""
        return [key for key, versions in self._versions.items() if versions]

    def versions_of(self, key: int) -> list[int]:
        """Sorted batch ids currently stored for ``key`` (may be empty)."""
        return list(self._versions.get(key, []))

    def total_versions(self) -> int:
        return sum(len(v) for v in self._versions.values())

    # ------------------------------------------------------------------
    # checkpoint id (root field)
    # ------------------------------------------------------------------

    def set_checkpointed_batch_id(self, batch_id: int) -> None:
        """Atomically persist the *Checkpointed Batch ID* (Alg. 2 l. 25)."""
        self.pool.root.set(CHECKPOINT_ID_FIELD, batch_id)

    def checkpointed_batch_id(self) -> int:
        """The durable last-completed checkpoint id (-1 if none)."""
        return self.pool.root.get(CHECKPOINT_ID_FIELD, NO_CHECKPOINT)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def rebuild_from_pool(self) -> None:
        """Rebuild the volatile version index by scanning the pool.

        This is recovery step 2's first half: after
        :meth:`PmemPool.crash` the in-DRAM index is gone; scanning the
        durable pool contents restores it.
        """
        self._versions = {}
        for pool_key in self.pool.keys():
            if not (isinstance(pool_key, tuple) and pool_key and pool_key[0] == "entry"):
                continue
            __, key, batch_id = pool_key
            self._versions.setdefault(key, []).append(batch_id)
        for versions in self._versions.values():
            versions.sort()

    def discard_newer_than(self, checkpoint_id: int) -> int:
        """Drop all versions newer than ``checkpoint_id`` (recovery step 1).

        Returns the number of versions discarded.

        Raises:
            RecoveryError: a key would lose ALL its versions — meaning a
                post-checkpoint entry creation; such keys are legitimately
                dropped, so this is raised only if the caller asked via a
                strict scan (not used by default recovery).
        """
        discarded = 0
        for key in list(self._versions):
            versions = self._versions[key]
            keep = [v for v in versions if v <= checkpoint_id]
            for batch_id in versions:
                if batch_id > checkpoint_id:
                    self.pool.free(("entry", key, batch_id))
                    discarded += 1
            if keep:
                self._versions[key] = keep
            else:
                del self._versions[key]
        return discarded

    def recover(self) -> dict[int, int]:
        """Full recovery: scan, discard post-checkpoint versions.

        Returns ``key -> recovered batch_id`` for every surviving key.
        The caller (``repro.core.recovery``) then rebuilds the DRAM hash
        index from this mapping.
        """
        self.rebuild_from_pool()
        checkpoint_id = self.checkpointed_batch_id()
        if checkpoint_id == NO_CHECKPOINT:
            raise RecoveryError("no completed checkpoint recorded in PMem root")
        self.discard_newer_than(checkpoint_id)
        return {key: versions[-1] for key, versions in self._versions.items()}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require_versions(self, key: int) -> list[int]:
        versions = self._versions.get(key)
        if not versions:
            raise KeyError(key)
        return versions

    def _prune_key(self, key: int) -> int:
        """Free versions of ``key`` not needed by barriers or running state."""
        versions = self._versions.get(key)
        if not versions:
            return 0
        keep = {versions[-1]}
        for barrier in self._barriers:
            eligible = [v for v in versions if v <= barrier]
            if eligible:
                keep.add(eligible[-1])
        freed = 0
        for batch_id in versions:
            if batch_id not in keep:
                self.pool.free(("entry", key, batch_id))
                freed += 1
        if freed:
            self._versions[key] = sorted(keep)
        return freed
