"""The DLRM architecture: interaction math, gradient checks, training."""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.dlrm_model import DLRM
from repro.dlrm.layers import binary_cross_entropy
from repro.dlrm.optimizers import Adam
from repro.dlrm.trainer import SynchronousTrainer
from repro.errors import ConfigError

FIELDS, DIM, DENSE = 3, 4, 5


@pytest.fixture
def model():
    return DLRM(
        num_fields=FIELDS, dim=DIM, num_dense=DENSE,
        bottom_hidden=(8,), top_hidden=(8,), seed=2,
    )


def inputs(batch=2, seed=0):
    rng = np.random.default_rng(seed)
    embeddings = rng.normal(0, 0.5, (batch, FIELDS, DIM)).astype(np.float32)
    dense = rng.normal(0, 1, (batch, DENSE)).astype(np.float32)
    return embeddings, dense


class TestForward:
    def test_logit_shape(self, model):
        embeddings, dense = inputs(5)
        assert model.forward(embeddings, dense).shape == (5,)

    def test_pair_count(self, model):
        assert model.num_pairs == (FIELDS + 1) * FIELDS // 2

    def test_interactions_are_pairwise_dots(self):
        """With an identity-ish top MLP slice we can check one pair."""
        model = DLRM(FIELDS, DIM, DENSE, bottom_hidden=(8,), top_hidden=(4,), seed=1)
        embeddings, dense = inputs(1, seed=3)
        # Recompute the interaction vector independently.
        bottom = model.bottom.forward(dense)
        vectors = np.concatenate([bottom[:, None, :], embeddings], axis=1)
        expected = np.array(
            [
                vectors[0, i] @ vectors[0, j]
                for i in range(FIELDS + 1)
                for j in range(i + 1, FIELDS + 1)
            ]
        )
        got = np.einsum(
            "bpd,bpd->bp",
            vectors[:, model._pair_i, :],
            vectors[:, model._pair_j, :],
        )[0]
        assert np.allclose(got, expected, atol=1e-5)

    def test_dense_features_matter(self, model):
        embeddings, dense = inputs(2, seed=4)
        a = model.forward(embeddings, dense)
        b = model.forward(embeddings, dense + 1.0)
        assert not np.allclose(a, b)

    def test_shape_validation(self, model):
        embeddings, dense = inputs()
        with pytest.raises(ConfigError):
            model.forward(embeddings[:, :1, :], dense)
        with pytest.raises(ConfigError):
            model.forward(embeddings, dense[:, :1])
        with pytest.raises(ConfigError):
            model.forward(embeddings[:1], dense)


class TestBackward:
    def test_embedding_gradient_matches_numeric(self, model):
        embeddings, dense = inputs(2, seed=5)
        labels = np.array([1.0, 0.0], dtype=np.float32)

        def loss():
            logits = model.forward(embeddings, dense)
            return binary_cross_entropy(logits, labels)[0]

        result = model.train_batch(embeddings, labels, dense)
        eps = 1e-3
        for idx in [(0, 0, 0), (1, 2, 3), (0, 1, 2), (1, 0, 1)]:
            orig = embeddings[idx]
            embeddings[idx] = orig + eps
            up = loss()
            embeddings[idx] = orig - eps
            down = loss()
            embeddings[idx] = orig
            numeric = (up - down) / (2 * eps)
            assert result.embedding_grads[idx] == pytest.approx(numeric, abs=3e-3)

    def test_bottom_mlp_gradient_matches_numeric(self, model):
        embeddings, dense = inputs(2, seed=6)
        labels = np.array([0.0, 1.0], dtype=np.float32)

        def loss():
            logits = model.forward(embeddings, dense)
            return binary_cross_entropy(logits, labels)[0]

        model.zero_grad()
        model.train_batch(embeddings, labels, dense)
        weight = model.bottom.layers[0].weight
        grad = model.bottom.layers[0].grad_weight
        eps = 1e-3
        for idx in [(0, 0), (2, 3), (4, 1)]:
            orig = weight[idx]
            weight[idx] = orig + eps
            up = loss()
            weight[idx] = orig - eps
            down = loss()
            weight[idx] = orig
            numeric = (up - down) / (2 * eps)
            assert grad[idx] == pytest.approx(numeric, abs=3e-3)

    def test_backward_before_forward(self, model):
        with pytest.raises(ConfigError):
            model.backward(np.zeros(2, dtype=np.float32))


class TestDenseState:
    def test_roundtrip_covers_both_mlps(self, model):
        state = model.dense_state()
        for param in model.mlp.parameters():
            param += 0.25
        model.load_dense_state(state)
        for param, saved in zip(model.mlp.parameters(), state):
            assert np.array_equal(param, saved)

    def test_parameter_count(self, model):
        assert model.dense_parameter_count == (
            model.bottom.num_parameters + model.top.num_parameters
        )

    def test_predict_proba(self, model):
        embeddings, dense = inputs(6)
        probs = model.predict_proba(embeddings, dense)
        assert np.all((probs > 0) & (probs < 1))


class TestEndToEndTraining:
    def _build(self):
        dataset = CriteoSynthetic(
            num_fields=FIELDS, vocab_per_field=80, num_dense=DENSE, seed=4
        )
        server = OpenEmbeddingServer(
            ServerConfig(
                num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 26, seed=2
            ),
            # Small enough (~64 entries of 240 keys) that evictions are
            # frequent and checkpoints complete opportunistically.
            CacheConfig(capacity_bytes=2 << 10),
            PSAdagrad(lr=0.05),
        )
        model = DLRM(
            FIELDS, DIM, num_dense=DENSE, bottom_hidden=(8,), top_hidden=(16,), seed=2
        )
        trainer = SynchronousTrainer(
            server, model, dataset,
            num_workers=2, batch_size=16, dense_optimizer=Adam(1e-2),
        )
        return trainer, server, model, dataset

    def test_loss_decreases(self):
        trainer, *_ = self._build()
        results = trainer.train(60)
        early = np.mean([r.loss for r in results[:10]])
        late = np.mean([r.loss for r in results[-10:]])
        assert late < early

    def test_checkpoint_recovery_with_dlrm(self):
        trainer, server, model, dataset = self._build()
        trainer.train(10)
        trainer.barrier_checkpoint()
        trainer.train(5)
        pools, __, dense_ckpts = trainer.crash()
        fresh_model = DLRM(
            FIELDS, DIM, num_dense=DENSE, bottom_hidden=(8,), top_hidden=(16,), seed=2
        )
        recovered = SynchronousTrainer.recover(
            pools, dense_ckpts,
            model=fresh_model, dataset=dataset,
            server_config=server.server_config, cache_config=server.cache_config,
            ps_optimizer=PSAdagrad(lr=0.05),
            num_workers=2, batch_size=16, dense_optimizer=Adam(1e-2),
        )
        assert recovered.next_batch == 10
        results = recovered.train(5)
        assert all(np.isfinite(r.loss) for r in results)
