"""Automatic failure detection + hot failover: unit tests and chaos soak.

Covers the whole availability layer this extension adds on top of the
paper's checkpoint-recovery story:

* :class:`~repro.core.failover.FailureDetector` lease semantics;
* :class:`~repro.core.failover.FailoverManager` promotion policy —
  including idempotent promotion on false positives and the
  double-fault fallback;
* :class:`~repro.core.replication.ReplicatedPSNode` background
  re-replication and mid-migration ring-epoch reconciliation
  (the satellite fix: ``failover(committed_epoch=...)`` interleaved at
  every labelled migration step);
* the typed dead-node channel error
  (:class:`~repro.errors.NodeDeadError` vs
  :class:`~repro.errors.RpcTimeoutError`);
* the MTTF chaos soak over all three transports (in-process, RPC, RPC
  over a lossy wire) with bitwise equality against a fault-free replay;
* failover pricing in the cost model / TrainingSimulator and the Young
  checkpoint-interval planning surfaced by ``repro faults --mttf``.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.config import (
    CacheConfig,
    CheckpointConfig,
    ClusterConfig,
    ConfigError,
    NetworkConfig,
    ServerConfig,
    WorkloadConfig,
)
from repro.core.failover import (
    FailureDetector,
    FailoverManager,
    LocalFailoverTransport,
    NodeState,
)
from repro.core.migration import MIGRATION_STEPS, ShardMigrator
from repro.core.optimizers import PSAdagrad
from repro.core.replication import FAILOVER_SECONDS, ReplicatedPSNode
from repro.core.server import OpenEmbeddingServer
from repro.core.sharding import (
    RING_STATE_FIELD,
    pack_ring_state,
    unpack_ring_state,
)
from repro.errors import (
    FailoverError,
    NodeDeadError,
    RpcTimeoutError,
    ServerError,
)
from repro.failure.injection import NodeKillInjector, NodeKillSchedule
from repro.failure.mttf import (
    expected_lost_work_seconds,
    sample_failure_times,
    young_interval_seconds,
)
from repro.network.frontend import RemotePSClient
from repro.network.messages import (
    HeartbeatRequest,
    MaintainRequest,
    PromoteRequest,
    StatusResponse,
)
from repro.obs.registry import MetricsRegistry
from repro.simulation.clock import SimClock
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator
from repro.workload.generator import WorkloadGenerator

from tests.harness.chaos import (
    ChaosSoak,
    assert_soak_survived,
    percentile,
    replicated_config,
    run_chaos_soak,
)
from tests.harness.crashpoints import (
    DIM,
    RETRY,
    assert_bitwise_equal,
    assert_exclusive_ownership,
    assert_monotone_checkpoints,
    batch_payload,
    cache_config,
    reference_state,
)

LEASE = 0.5


# ----------------------------------------------------------------------
# FailureDetector: lease semantics
# ----------------------------------------------------------------------


class TestFailureDetector:
    def make(self, lease=LEASE):
        clock = SimClock()
        return clock, FailureDetector(clock, lease)

    def test_fresh_watch_is_alive(self):
        __, det = self.make()
        det.watch(0)
        assert det.state_of(0) is NodeState.ALIVE
        assert det.watched() == [0]

    def test_suspect_between_half_lease_and_lease(self):
        clock, det = self.make()
        det.watch(0)
        clock.advance(LEASE * 0.6)
        assert det.state_of(0) is NodeState.SUSPECT

    def test_dead_after_lease_expiry(self):
        clock, det = self.make()
        det.watch(0)
        clock.advance(LEASE * 1.01)
        assert det.state_of(0) is NodeState.DEAD
        assert det.dead_nodes() == [0]

    def test_heartbeat_renews_lease(self):
        clock, det = self.make()
        det.watch(0)
        clock.advance(LEASE * 0.9)
        det.heartbeat(0)
        clock.advance(LEASE * 0.9)
        assert det.state_of(0) is not NodeState.DEAD
        assert det.lease_deadline(0) == pytest.approx(LEASE * 0.9 + LEASE)

    def test_declare_dead_early_refused(self):
        __, det = self.make()
        det.watch(0)
        with pytest.raises(ServerError, match="cannot declare dead early"):
            det.declare_dead(0)

    def test_declare_dead_after_expiry_sticks(self):
        clock, det = self.make()
        det.watch(0)
        clock.advance(LEASE * 2)
        det.declare_dead(0)
        # Post-declaration heartbeats are ignored: promotion is one-way.
        det.heartbeat(0)
        assert det.state_of(0) is NodeState.DEAD

    def test_reset_rearms_after_promotion(self):
        clock, det = self.make()
        det.watch(0)
        clock.advance(LEASE * 2)
        det.declare_dead(0)
        det.reset(0)
        assert det.state_of(0) is NodeState.ALIVE

    def test_unwatched_node_raises(self):
        __, det = self.make()
        with pytest.raises(ServerError, match="not watched"):
            det.state_of(7)

    def test_invalid_lease_rejected(self):
        clock = SimClock()
        with pytest.raises(ServerError):
            FailureDetector(clock, 0.0)
        with pytest.raises(ServerError):
            FailureDetector(clock, 1.0, suspect_after_s=2.0)


# ----------------------------------------------------------------------
# MTTF kill schedule
# ----------------------------------------------------------------------


class TestKillSchedule:
    def test_poisson_deterministic_and_sorted(self):
        a = NodeKillSchedule.poisson(5.0, 100.0, 3, seed=7)
        b = NodeKillSchedule.poisson(5.0, 100.0, 3, seed=7)
        assert a.kill_times == b.kill_times
        assert a.victims == b.victims
        assert list(a.kill_times) == sorted(a.kill_times)
        assert all(0 <= v < 3 for v in a.victims)

    def test_max_kills_caps_schedule(self):
        s = NodeKillSchedule.poisson(1.0, 100.0, 2, seed=1, max_kills=4)
        assert len(s) == 4

    def test_sample_mean_tracks_mttf(self):
        times = sample_failure_times(10.0, 100_000.0, seed=3)
        gaps = np.diff(np.concatenate([[0.0], np.asarray(times)]))
        assert 9.0 < float(gaps.mean()) < 11.0

    def test_injector_dispenses_each_kill_once(self):
        s = NodeKillSchedule(kill_times=(1.0, 2.0, 3.0), victims=(0, 1, 0))
        inj = NodeKillInjector(s)
        assert inj.due(0.5) == []
        assert inj.due(2.5) == [(1.0, 0), (2.0, 1)]
        assert inj.due(2.5) == []
        assert inj.peek_next() == (3.0, 0)
        assert inj.remaining == 1
        assert inj.due(10.0) == [(3.0, 0)]
        assert inj.kills_fired == 3


# ----------------------------------------------------------------------
# local promotion policy
# ----------------------------------------------------------------------


def make_local(nodes=3, seed=0, lease=LEASE):
    config = replicated_config(nodes, seed, lease)
    server = OpenEmbeddingServer(config, cache_config(), PSAdagrad(lr=0.05))
    clock = SimClock()
    registry = MetricsRegistry()
    manager = FailoverManager(
        LocalFailoverTransport(server), clock, config, registry=registry
    )
    return server, clock, manager, registry


def train(backend, seed, first, last, checkpoint_every=None):
    for batch in range(first, last):
        keys, grads = batch_payload(seed, batch)
        backend.pull(keys, batch)
        backend.maintain(batch)
        backend.push(keys, grads, batch)
        if checkpoint_every and (batch + 1) % checkpoint_every == 0:
            backend.barrier_checkpoint(batch)


class TestLocalFailover:
    def test_beat_keeps_everyone_alive(self):
        server, __, manager, __r = make_local()
        states = manager.beat()
        assert all(s is NodeState.ALIVE for s in states.values())

    def test_kill_promote_and_keep_training(self):
        seed = 0
        server, clock, manager, registry = make_local(seed=seed)
        train(server, seed, 0, 4, checkpoint_every=2)
        victim = server.nodes[1]
        victim.kill_primary()
        assert manager.handle_timeout(1) == "promoted"
        report = manager.promotions[0]
        assert report.node_id == 1
        assert report.promotion_seconds == FAILOVER_SECONDS
        assert report.unavailability_seconds <= manager.unavailability_bound_s()
        assert manager.detector.state_of(1) is NodeState.ALIVE
        train(server, seed, 4, 8, checkpoint_every=2)
        assert_bitwise_equal(server.state_snapshot(), reference_state(seed, 8))
        # Metrics recorded the episode.
        assert (
            registry.counter(
                "repro_failover_promotions_total", {"node": "1"}
            ).value
            == 1
        )
        assert (
            registry.histogram("repro_failover_unavailability_seconds").count
            == 1
        )

    def test_promotion_waits_out_the_lease(self):
        server, clock, manager, __ = make_local()
        manager.beat()  # fresh leases at t=0
        server.nodes[2].kill_primary()
        before = clock.now
        manager.handle_timeout(2)
        # Detection cannot finish before the lease deadline.
        assert clock.now >= before + LEASE - 1e-9

    def test_false_positive_is_retry_not_promotion(self):
        server, clock, manager, __ = make_local()
        clock.advance(LEASE * 3)  # every lease lapsed, nobody died
        assert manager.detector.state_of(0) is NodeState.DEAD
        assert manager.handle_timeout(0) == "retry"
        assert manager.promotions == []
        assert manager.detector.state_of(0) is NodeState.ALIVE
        assert server.nodes[0].failovers == 0

    def test_transport_promote_is_idempotent_on_alive_node(self):
        server, __, manager, __r = make_local()
        assert manager.transport.promote(0, 0) == 0.0
        assert server.nodes[0].failovers == 0

    def test_rebuild_rides_the_heartbeat_rounds(self):
        seed = 2
        server, clock, manager, registry = make_local(seed=seed)
        train(server, seed, 0, 4, checkpoint_every=2)
        server.nodes[0].kill_primary()
        manager.handle_timeout(0)
        node = server.nodes[0]
        assert node.degraded
        for __ in range(64):
            manager.beat()
            if not node.degraded:
                break
        assert not node.degraded
        node.verify_replicas_identical()
        assert (
            registry.gauge(
                "repro_failover_rereplication_progress", {"node": "0"}
            ).value
            == 1.0
        )
        # Training continues seamlessly on the re-replicated pair.
        train(server, seed, 4, 6)
        assert_bitwise_equal(server.state_snapshot(), reference_state(seed, 6))

    def test_double_fault_falls_back_to_checkpoint_recovery(self):
        seed = 3
        server, clock, manager, registry = make_local(seed=seed)
        train(server, seed, 0, 4, checkpoint_every=2)
        server.nodes[1].kill_primary()
        manager.handle_timeout(1)  # promoted; node 1 now degraded
        server.nodes[1].kill_primary()  # backup (now primary) dies too
        with pytest.raises(FailoverError):
            manager.handle_timeout(1)
        assert manager.double_faults == 1
        assert (
            registry.counter("repro_failover_double_faults_total").value == 1
        )
        # The paper's path: crash survivors, recover from PMem, replay.
        pools = [node.crash() for node in server.nodes]
        recovered, reports = OpenEmbeddingServer.recover(
            pools, server.server_config, cache_config(), PSAdagrad(lr=0.05)
        )
        resume = recovered.global_completed_checkpoint + 1
        assert resume >= 1
        train(recovered, seed, resume, 8)
        assert_bitwise_equal(
            recovered.state_snapshot(), reference_state(seed, 8)
        )
        # replicas=2 recovery re-replicates before serving.
        assert all(not node.degraded for node in recovered.nodes)


# ----------------------------------------------------------------------
# ReplicatedPSNode: rebuild machinery + epoch reconciliation
# ----------------------------------------------------------------------


def single_replicated(seed=0):
    config = ServerConfig(
        num_nodes=1,
        embedding_dim=DIM,
        pmem_capacity_bytes=1 << 26,
        seed=seed,
        replicas=2,
    )
    return ReplicatedPSNode(0, config, cache_config(), PSAdagrad(lr=0.05))


class TestReplicatedRebuild:
    def test_tick_state_machine(self):
        node = single_replicated()
        train(node, 0, 0, 3)
        assert node.rebuild_tick() == "idle"  # healthy pair: nothing to do
        node.fail_primary()
        assert node.rebuild_tick() == "idle"  # dead primary: cannot rebuild
        node.failover()
        assert node.degraded
        assert node.rebuild_tick() == "started"
        states = set()
        for __ in range(64):
            state = node.rebuild_tick(max_keys=8)
            states.add(state)
            if state == "done":
                break
        assert "copying" in states and "done" in states
        assert not node.degraded
        node.verify_replicas_identical()
        assert node.rebuild_report.finished

    def test_writes_during_rebuild_are_patched(self):
        node = single_replicated(seed=4)
        train(node, 4, 0, 3)
        node.fail_primary()
        node.failover()
        node.begin_rebuild()
        # Concurrent training while the census copies.
        train(node, 4, 3, 6)
        while node.rebuild_step(16):
            pass
        report = node.finish_rebuild()
        assert report.finished and report.keys_patched > 0
        node.verify_replicas_identical()

    def test_ring_word_mirrored_onto_fresh_backup(self):
        node = single_replicated()
        train(node, 0, 0, 2)
        packed = pack_ring_state(3, 1, 8)
        node.set_root_field(RING_STATE_FIELD, packed)
        assert node.backup.pool.root.fields()[RING_STATE_FIELD] == packed
        node.fail_primary()
        node.failover()
        node.rebuild_backup()
        # The rebuilt replica's pool carries the committed ring word, so
        # a future promotion (and double-fault recovery from its pool)
        # still serves the committed routing.
        assert node.backup.pool.root.fields()[RING_STATE_FIELD] == packed

    def test_failover_reconciles_committed_epoch(self):
        node = single_replicated()
        node.follow_ring(2)
        node.fail_primary()
        node.failover(committed_epoch=5)
        assert node.ring_epoch == 5
        node.rebuild_backup()
        # An older committed word never moves the epoch backwards.
        node.kill_primary()
        node.failover(committed_epoch=1)
        assert node.ring_epoch == 5

    def test_guards(self):
        node = single_replicated()
        with pytest.raises(ServerError, match="without a failed primary"):
            node.failover()
        node.fail_primary()
        node.kill_primary()  # idempotent
        with pytest.raises(NodeDeadError):
            node.pull([1], 0)
        node.failover()
        with pytest.raises(ServerError, match="already degraded"):
            node.fail_primary()
        with pytest.raises(ServerError, match="no rebuild in progress"):
            node.rebuild_step()


# ----------------------------------------------------------------------
# satellite a: fail_primary interleaved at every migration step
# ----------------------------------------------------------------------


class TestMigrationInterleaving:
    @pytest.mark.parametrize("step", MIGRATION_STEPS)
    def test_promotion_mid_migration_serves_committed_ring(self, step):
        """Kill+promote node 1's primary right before each labelled
        migration step; the promoted backup must end on the committed
        ring epoch, own exactly its routed keys, and the final weights
        must equal the fault-free replay bitwise."""
        seed = 1
        config = replicated_config(3, seed, LEASE)
        server = OpenEmbeddingServer(
            config, cache_config(), PSAdagrad(lr=0.05)
        )
        train(server, seed, 0, 4, checkpoint_every=2)
        fired = []

        def hook(label):
            if label == step and not fired:
                fired.append(label)
                victim = server.nodes[1]
                victim.fail_primary()
                committed = unpack_ring_state(
                    server.nodes[0].pool.root.fields()[RING_STATE_FIELD]
                )[0]
                victim.failover(committed_epoch=committed)

        report = ShardMigrator(server, on_step=hook).scale_out()
        assert fired == [step]
        assert report.to_nodes == 4
        # Reconciliation: every replica serves the committed epoch.
        committed = unpack_ring_state(
            server.nodes[0].pool.root.fields()[RING_STATE_FIELD]
        )[0]
        assert server.ring_epoch == committed
        for node in server.nodes:
            assert node.ring_epoch == server.ring_epoch, (
                f"node {node.node_id} on epoch {node.ring_epoch}, "
                f"cluster committed {server.ring_epoch}"
            )
        assert_exclusive_ownership(server)
        train(server, seed, 4, 8, checkpoint_every=2)
        assert_bitwise_equal(server.state_snapshot(), reference_state(seed, 8))


# ----------------------------------------------------------------------
# RPC transport: silence, typed dead-node error, idempotent Promote
# ----------------------------------------------------------------------


def make_remote(seed=0, nodes=3, lease=LEASE, faulty=False):
    from tests.harness.crashpoints import FAULTS

    config = replicated_config(nodes, seed, lease)
    registry = MetricsRegistry()
    client = RemotePSClient(
        config,
        cache_config(),
        PSAdagrad(lr=0.05),
        retry=RETRY,
        faults=FAULTS if faulty else None,
        registry=registry,
    )
    manager = client.enable_failover(registry)
    return client, manager, registry


class TestRemoteFailover:
    def test_heartbeat_reports_progress(self):
        client, manager, __ = make_remote()
        train(client, 0, 0, 2)
        response = manager.transport.probe_channel(1).call(
            HeartbeatRequest(node_id=1)
        )
        assert response.ok
        assert response.value == client.nodes[1].latest_completed_batch

    def test_dead_shard_goes_silent_and_client_promotes(self):
        seed = 0
        client, manager, registry = make_remote(seed=seed)
        train(client, seed, 0, 3, checkpoint_every=3)
        client.nodes[2].kill_primary()
        # The client discovers the death through its own unanswered
        # calls — nothing here tells the manager.
        train(client, seed, 3, 7, checkpoint_every=3)
        assert len(manager.promotions) == 1
        assert manager.promotions[0].node_id == 2
        assert client.nodes[2].failovers == 1
        client.barrier_checkpoint(6)
        assert_bitwise_equal(client.state_snapshot(), reference_state(seed, 7))
        assert (
            registry.counter(
                "repro_failover_promotions_total", {"node": "2"}
            ).value
            == 1
        )

    def test_node_dead_error_is_typed_fast_fail(self):
        """Satellite: a channel whose node was *declared dead* fails in
        O(1) with :class:`NodeDeadError` ("reroute me") instead of
        burning the retry budget into :class:`RpcTimeoutError` ("the
        wire may just be slow")."""
        # Phase 1 — no death verdict armed: a silent shard burns the
        # whole retry budget and surfaces as a timeout ("maybe slow").
        config = replicated_config(3, 0, LEASE)
        plain = RemotePSClient(
            config, cache_config(), PSAdagrad(lr=0.05), retry=RETRY
        )
        plain.nodes[1].kill_primary()
        before = plain.clock.now
        with pytest.raises(RpcTimeoutError):
            plain.channel_for(1).call(MaintainRequest(batch_id=0))
        timeout_cost = plain.clock.now - before
        assert timeout_cost > 0
        # Phase 2 — lease expired and death declared: the same call on
        # an armed channel fails fast and typed ("reroute me").
        client, manager, __ = make_remote()
        client.nodes[1].kill_primary()
        client.clock.advance(client.server_config.lease_s * 2)
        manager.detector.declare_dead(1)
        channel = client.channel_for(1)
        before = client.clock.now
        with pytest.raises(NodeDeadError) as exc:
            channel.call(MaintainRequest(batch_id=0))
        assert exc.value.node_id == 1
        assert client.clock.now - before < timeout_cost
        assert channel.stats.dead_fails >= 1

    def test_promote_rpc_idempotent_on_alive_node(self):
        client, manager, __ = make_remote()
        response = manager.transport.probe_channel(0).call(
            PromoteRequest(node_id=0, committed_epoch=0)
        )
        assert response.ok
        assert client.nodes[0].failovers == 0

    def test_promote_rpc_double_fault_is_typed_wire_error(self):
        client, manager, __ = make_remote()
        node = client.nodes[1]
        node.kill_primary()
        node.failover()
        node.kill_primary()  # promoted primary dies; no backup left
        with pytest.raises(FailoverError):
            manager.transport.promote(1, 0)

    def test_wire_roundtrip(self):
        hb = HeartbeatRequest(node_id=3, requester=9)
        assert HeartbeatRequest.decode_body(hb.encode_body()) == hb
        pr = PromoteRequest(node_id=2, committed_epoch=7, requester=1)
        assert PromoteRequest.decode_body(pr.encode_body()) == pr
        err = StatusResponse(code=StatusResponse.ERR_FAILOVER, detail="df")
        assert not err.ok


# ----------------------------------------------------------------------
# the chaos soak: K MTTF kills over all three transports
# ----------------------------------------------------------------------


class TestChaosSoak:
    def test_local_soak_survives_three_kills(self):
        result = run_chaos_soak(seed=0, kills=3, batches=30)
        assert_soak_survived(result, min_kills=3)
        assert percentile(result.unavailability_seconds, 99) <= (
            result.unavailability_bound_s
        )

    def test_remote_soak_survives_three_kills(self):
        result = run_chaos_soak(remote=True, seed=1, kills=3, batches=30)
        assert_soak_survived(result, min_kills=3)
        # Client-driven promotions (unless a double fault rerouted a
        # kill through checkpoint recovery, or a kill landed inside an
        # earlier kill's detection window).
        assert (
            len(result.promotions)
            + result.recoveries
            + result.absorbed_kills
            >= 3
        )
        assert len(result.promotions) >= 1

    def test_remote_faulty_soak_survives_three_kills(self):
        # The lossy wire advances the simulated clock fast (retries,
        # backoff), so a tighter MTTF keeps all three kills inside the
        # soak's horizon.
        result = run_chaos_soak(
            remote=True, faulty=True, seed=2, kills=3, batches=30, mttf_s=2.0
        )
        assert_soak_survived(result, min_kills=3)

    def test_soak_double_fault_completes_via_recovery(self):
        """Two kills on the same shard, closer together than the
        rebuild: the second is a double fault and the soak must finish
        through checkpoint recovery — still bitwise exact."""
        # First kill is detected at the batch-3 poll (t=3.0) and
        # promoted by ~3.5; the second lands in the next poll window,
        # while the background rebuild is still copying — backup gone.
        schedule = NodeKillSchedule(
            kill_times=(2.05, 4.0), victims=(1, 1)
        )
        soak = ChaosSoak(
            seed=3, kills=2, batches=16, schedule=schedule
        )
        result = soak.run()
        assert result.kills == 2
        assert result.double_faults >= 1
        assert result.recoveries >= 1
        assert_bitwise_equal(result.final_state, result.reference)
        assert_monotone_checkpoints(result.checkpoint_trail)

    def test_soak_regains_fault_tolerance(self):
        result = run_chaos_soak(seed=0, kills=2, batches=30)
        # Background re-replication restored every shard's backup by
        # the end of the soak (heartbeat rounds ticked it forward).
        assert result.rebuilds_completed == len(result.backend.nodes)


# ----------------------------------------------------------------------
# pricing: cost model + TrainingSimulator MTTF injection
# ----------------------------------------------------------------------


def make_sim(replicas=2, mttf_s=None, lease_s=0.5, iterations_hint=20):
    server = ServerConfig(
        embedding_dim=16,
        pmem_capacity_bytes=1 << 26,
        replicas=replicas,
        lease_s=lease_s,
    )
    cache = CacheConfig(capacity_bytes=200 * 16 * 4)
    cluster = ClusterConfig(
        num_workers=4,
        batch_size=32,
        network=NetworkConfig(bandwidth_bytes_per_s=60e6),
    )
    workload = WorkloadGenerator(
        WorkloadConfig(num_keys=20_000, features_per_sample=4, seed=1)
    )
    return TrainingSimulator(
        SystemKind.PMEM_OE,
        cluster,
        server,
        cache,
        CheckpointConfig.none(),
        workload,
        mttf_s=mttf_s,
    )


class TestFailoverPricing:
    def test_price_failover_shape(self):
        sim = make_sim()
        timing = sim.cost_model.price_failover(
            resident_entries=100_000, lease_s=0.5
        )
        assert timing.detection == 0.5
        assert timing.promotion == FAILOVER_SECONDS
        assert timing.unavailability == pytest.approx(0.5 + FAILOVER_SECONDS)
        assert timing.rereplication > 0
        assert timing.total >= timing.unavailability
        assert timing.recovery_alternative > 0
        # The ablation the paper motivates: at PS scale (Figure 14 is
        # 2.1 B entries / ~380 s) checkpoint recovery costs far more
        # than the lease-bounded failover; at toy scale it can win.
        at_scale = sim.cost_model.price_failover(
            resident_entries=100_000_000, lease_s=0.5
        )
        assert at_scale.recovery_alternative > at_scale.unavailability
        assert at_scale.unavailability == timing.unavailability

    def test_recovery_alternative_scales_with_entries(self):
        sim = make_sim()
        small = sim.cost_model.price_failover(
            resident_entries=10_000, lease_s=0.5
        )
        big = sim.cost_model.price_failover(
            resident_entries=10_000_000, lease_s=0.5
        )
        assert big.recovery_alternative > small.recovery_alternative
        # Unavailability is scale-independent: that is the whole point.
        assert big.unavailability == small.unavailability

    def test_simulator_injects_failovers_with_replicas(self):
        # Probe the fault-free runtime, then set the MTTF well inside it
        # so kills are certain to land.
        base = make_sim(replicas=2).run(20)
        mttf = max(base.sim_seconds / 20.0, 1e-6)
        result = make_sim(replicas=2, mttf_s=mttf).run(20)
        assert result.failures_injected >= 1
        assert result.failovers_completed == result.failures_injected
        assert result.failover_pause_seconds > 0
        assert result.rereplication_seconds > 0
        assert result.recovery_pause_seconds == 0
        assert result.sim_seconds > base.sim_seconds

    def test_simulator_prices_recovery_without_replicas(self):
        base = make_sim(replicas=1).run(20)
        mttf = max(base.sim_seconds / 20.0, 1e-6)
        result = make_sim(replicas=1, mttf_s=mttf).run(20)
        assert result.failures_injected >= 1
        assert result.failovers_completed == 0
        assert result.recovery_pause_seconds > 0

    def test_invalid_mttf_rejected(self):
        with pytest.raises(ConfigError):
            make_sim(mttf_s=0.0)


# ----------------------------------------------------------------------
# satellite b: Young (1974) checkpoint-interval planning
# ----------------------------------------------------------------------


class TestYoungPlanning:
    def test_interval_formula(self):
        assert young_interval_seconds(15.0, 43200.0) == pytest.approx(
            np.sqrt(2 * 15.0 * 43200.0)
        )

    def test_expected_lost_work_is_half_interval(self):
        interval = young_interval_seconds(15.0, 43200.0)
        assert expected_lost_work_seconds(interval, 43200.0) == pytest.approx(
            interval / 2
        )

    def test_faults_cli_prints_planning_block(self, capsys):
        code = main(
            [
                "faults",
                "--batches",
                "4",
                "--keys",
                "40",
                "--batch-keys",
                "4",
                "--dim",
                "4",
                "--mttf",
                "43200",
                "--checkpoint-cost",
                "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "failure planning (Young 1974)" in out
        assert "optimal interval  : 1138.420 s" in out
        assert "expected lost work: 569.210 s" in out

    def test_faults_cli_silent_without_mttf(self, capsys):
        code = main(
            [
                "faults",
                "--batches",
                "4",
                "--keys",
                "40",
                "--batch-keys",
                "4",
                "--dim",
                "4",
            ]
        )
        assert code == 0
        assert "Young" not in capsys.readouterr().out


# ----------------------------------------------------------------------
# CLI: simulate with --mttf/--replicas/--lease-ms
# ----------------------------------------------------------------------


class TestSimulateCli:
    def test_simulate_with_failover_flags(self, capsys):
        code = main(
            [
                "simulate",
                "--workers",
                "2",
                "--iterations",
                "30",
                "--mttf",
                "0.01",
                "--replicas",
                "2",
                "--lease-ms",
                "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "node kills" in out
        assert "failover pause" in out

    def test_simulate_replicas_one_prices_recovery(self, capsys):
        code = main(
            [
                "simulate",
                "--workers",
                "2",
                "--iterations",
                "30",
                "--mttf",
                "0.01",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "node kills" in out
        assert "recovery pause" in out
