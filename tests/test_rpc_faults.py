"""Fault-tolerant RPC: retries, timeouts, dedup and wire-error semantics.

Covers the network-as-failure-domain subsystem: seeded deterministic
fault schedules, client retry/backoff/timeout budgets charged to the
simulated clock, at-most-once push application under duplicated and
retried delivery, and the wire-error discipline that turns server-side
exceptions into typed client-side errors.
"""

import numpy as np
import pytest

from repro.config import (
    CacheConfig,
    ConfigError,
    NetworkFaultConfig,
    RetryConfig,
    ServerConfig,
)
from repro.core.server import OpenEmbeddingServer
from repro.errors import (
    CheckpointError,
    KeyNotFoundError,
    RpcError,
    RpcTimeoutError,
)
from repro.failure.network_faults import FaultyLink
from repro.network.frontend import PSNodeService, RemotePSClient
from repro.network.messages import (
    CheckpointRequest,
    MessageError,
    PushRequest,
    StatusResponse,
    decode_message,
    encode_message,
)
from repro.network.rpc import RpcChannel, RpcServer
from repro.simulation.clock import SimClock
from repro.simulation.network import NetworkModel

DIM = 4


def _configs(num_nodes: int = 2):
    return (
        ServerConfig(
            num_nodes=num_nodes, embedding_dim=DIM,
            pmem_capacity_bytes=1 << 22, seed=4,
        ),
        CacheConfig(capacity_bytes=8 * DIM * 4),
    )


def _echo_server():
    server = RpcServer()
    server.register(
        CheckpointRequest.TYPE,
        lambda req: StatusResponse(StatusResponse.OK, req.batch_id),
    )
    return server


def _train(client, batches: int = 12, keyspace: int = 40, seed: int = 0):
    rng = np.random.default_rng(seed)
    for batch in range(batches):
        keys = sorted(rng.choice(keyspace, size=6, replace=False).tolist())
        grads = rng.normal(0, 0.1, (6, DIM)).astype(np.float32)
        client.pull(keys, batch)
        client.maintain(batch)
        client.push(keys, grads, batch)
    return client


FAULTS = NetworkFaultConfig(
    drop_rate=0.08,
    duplicate_rate=0.06,
    corrupt_rate=0.04,
    delay_rate=0.1,
    delay_mean_s=5e-3,
    seed=11,
)
RETRY = RetryConfig(
    max_attempts=12, attempt_timeout_s=0.05, call_timeout_s=5.0, seed=1
)


class TestConfigValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ConfigError):
            NetworkFaultConfig(drop_rate=1.5)
        with pytest.raises(ConfigError):
            NetworkFaultConfig(duplicate_rate=-0.1)

    def test_retry_bounds(self):
        with pytest.raises(ConfigError):
            RetryConfig(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryConfig(attempt_timeout_s=1.0, call_timeout_s=0.5)
        with pytest.raises(ConfigError):
            RetryConfig(jitter=2.0)

    def test_backoff_schedule_is_capped(self):
        retry = RetryConfig(
            base_backoff_s=1e-3, backoff_multiplier=4.0, max_backoff_s=8e-3
        )
        assert retry.backoff_for_attempt(1) == pytest.approx(1e-3)
        assert retry.backoff_for_attempt(2) == pytest.approx(4e-3)
        assert retry.backoff_for_attempt(3) == pytest.approx(8e-3)  # capped
        assert retry.backoff_for_attempt(9) == pytest.approx(8e-3)

    def test_any_faults_flag(self):
        assert not NetworkFaultConfig().any_faults
        assert NetworkFaultConfig(drop_rate=0.01).any_faults


class TestFaultyLink:
    def test_perfect_config_is_transparent(self):
        link = FaultyLink(NetworkModel(), NetworkFaultConfig(seed=3))
        frame = encode_message(CheckpointRequest(1))
        delivery = link.transfer(frame, "request")
        assert delivery.copies == (frame,)
        assert link.stats.total == 0

    def test_drop_everything(self):
        link = FaultyLink(NetworkModel(), NetworkFaultConfig(drop_rate=1.0))
        delivery = link.transfer(encode_message(CheckpointRequest(1)), "request")
        assert delivery.copies == ()
        assert link.stats.drops == 1

    def test_dropped_bytes_still_charged_to_network(self):
        network = NetworkModel()
        link = FaultyLink(network, NetworkFaultConfig(drop_rate=1.0))
        frame = encode_message(CheckpointRequest(1))
        link.transfer(frame, "request")
        assert network.bytes_sent == len(frame)

    def test_duplicate_everything(self):
        link = FaultyLink(NetworkModel(), NetworkFaultConfig(duplicate_rate=1.0))
        frame = encode_message(CheckpointRequest(1))
        delivery = link.transfer(frame, "request")
        assert delivery.copies == (frame, frame)
        assert link.stats.duplicates == 1

    def test_corruption_is_always_detected(self):
        """A flipped byte can never decode into a valid message."""
        link = FaultyLink(
            NetworkModel(), NetworkFaultConfig(corrupt_rate=1.0, seed=0)
        )
        frame = encode_message(
            PushRequest(
                0,
                np.array([1, 2], dtype=np.uint64),
                np.ones((2, DIM), dtype=np.float32),
            )
        )
        for _ in range(50):  # every corrupted position must be caught
            delivery = link.transfer(frame, "request")
            (damaged,) = delivery.copies
            assert damaged != frame
            with pytest.raises(MessageError):
                decode_message(damaged)

    def test_direction_filter(self):
        config = NetworkFaultConfig(drop_rate=1.0, on_request=False)
        link = FaultyLink(NetworkModel(), config)
        frame = encode_message(CheckpointRequest(1))
        assert link.transfer(frame, "request").copies == (frame,)
        assert link.transfer(frame, "response").copies == ()

    def test_same_seed_same_schedule(self):
        frame = encode_message(CheckpointRequest(1))
        outcomes = []
        for _ in range(2):
            link = FaultyLink(
                NetworkModel(),
                NetworkFaultConfig(
                    drop_rate=0.3, duplicate_rate=0.3, delay_rate=0.3, seed=5
                ),
            )
            outcomes.append(
                [
                    (len(link.transfer(frame, "request").copies))
                    for _ in range(40)
                ]
            )
        assert outcomes[0] == outcomes[1]


class TestRetrySemantics:
    def test_retries_recover_from_drops(self):
        clock = SimClock()
        channel = RpcChannel(
            _echo_server(),
            FaultyLink(NetworkModel(), NetworkFaultConfig(drop_rate=0.5, seed=2)),
            clock,
            retry=RetryConfig(max_attempts=20, call_timeout_s=10.0),
        )
        for batch in range(10):
            response = channel.call(CheckpointRequest(batch))
            assert response.ok and response.value == batch
        assert channel.stats.retries > 0
        assert channel.stats.timeouts == 0

    def test_total_loss_raises_timeout(self):
        channel = RpcChannel(
            _echo_server(),
            FaultyLink(NetworkModel(), NetworkFaultConfig(drop_rate=1.0)),
            SimClock(),
            retry=RetryConfig(max_attempts=4, attempt_timeout_s=0.01,
                              call_timeout_s=0.1),
        )
        with pytest.raises(RpcTimeoutError) as excinfo:
            channel.call(CheckpointRequest(1))
        assert excinfo.value.attempts == 4
        assert excinfo.value.spent_seconds > 0
        assert isinstance(excinfo.value, RpcError)
        assert channel.stats.timeouts == 1
        assert channel.stats.attempts == 4

    def test_call_budget_caps_attempts(self):
        """The per-call budget can exhaust before max_attempts does."""
        channel = RpcChannel(
            _echo_server(),
            FaultyLink(NetworkModel(), NetworkFaultConfig(drop_rate=1.0)),
            SimClock(),
            retry=RetryConfig(max_attempts=100, attempt_timeout_s=0.02,
                              call_timeout_s=0.05, base_backoff_s=0.0,
                              max_backoff_s=0.0, jitter=0.0),
        )
        with pytest.raises(RpcTimeoutError) as excinfo:
            channel.call(CheckpointRequest(1))
        # 0.02 + 0.02 + remaining 0.01 of the budget = 3 attempts.
        assert excinfo.value.attempts == 3
        assert excinfo.value.spent_seconds == pytest.approx(0.05)

    def test_backoff_and_waits_advance_the_clock(self):
        clock = SimClock()
        retry = RetryConfig(
            max_attempts=3, attempt_timeout_s=0.01, call_timeout_s=0.1,
            base_backoff_s=1e-3, backoff_multiplier=2.0, max_backoff_s=1e-2,
            jitter=0.0,
        )
        channel = RpcChannel(
            _echo_server(),
            FaultyLink(NetworkModel(), NetworkFaultConfig(drop_rate=1.0)),
            clock,
            retry=retry,
        )
        with pytest.raises(RpcTimeoutError):
            channel.call(CheckpointRequest(1))
        # 3 loss timeouts + backoffs after attempts 1 and 2.
        expected = 3 * 0.01 + 1e-3 + 2e-3
        assert clock.now == pytest.approx(expected)
        assert channel.stats.backoff_seconds == pytest.approx(3e-3)

    def test_failed_attempts_still_count_request_bytes(self):
        """Regression: lost traffic must not vanish from the stats."""
        channel = RpcChannel(
            _echo_server(),
            FaultyLink(NetworkModel(), NetworkFaultConfig(drop_rate=1.0)),
            SimClock(),
            retry=RetryConfig(max_attempts=3, attempt_timeout_s=0.01,
                              call_timeout_s=0.1),
        )
        frame_len = len(encode_message(CheckpointRequest(1)))
        with pytest.raises(RpcTimeoutError):
            channel.call(CheckpointRequest(1))
        assert channel.stats.request_bytes == 3 * frame_len
        assert channel.stats.calls == 1

    def test_error_responses_count_response_bytes(self):
        """An error-coded reply still moved bytes over the wire."""
        channel = RpcChannel(RpcServer())  # nothing registered
        with pytest.raises(MessageError):
            channel.call(CheckpointRequest(1))
        assert channel.stats.request_bytes > 0
        assert channel.stats.response_bytes > 0
        assert channel.stats.wire_errors == 1

    def test_jitter_is_deterministic_per_seed(self):
        def trace(seed):
            clock = SimClock()
            channel = RpcChannel(
                _echo_server(),
                FaultyLink(NetworkModel(), NetworkFaultConfig(drop_rate=1.0)),
                clock,
                retry=RetryConfig(max_attempts=5, attempt_timeout_s=0.01,
                                  call_timeout_s=1.0, jitter=0.5, seed=seed),
            )
            with pytest.raises(RpcTimeoutError):
                channel.call(CheckpointRequest(1))
            return clock.now

        assert trace(3) == trace(3)
        assert trace(3) != trace(4)


class TestWireErrorDiscipline:
    def test_handler_exception_becomes_error_frame(self):
        server = RpcServer()

        def failing_handler(request):
            raise CheckpointError("nothing to checkpoint")

        server.register(CheckpointRequest.TYPE, failing_handler)
        reply = decode_message(server.dispatch(encode_message(CheckpointRequest(1))))
        assert isinstance(reply, StatusResponse)
        assert reply.code == StatusResponse.ERR_CHECKPOINT
        assert "nothing to checkpoint" in reply.detail
        assert server.handler_errors == 1

    def test_client_reraises_typed_error(self):
        server = RpcServer()
        server.register(
            CheckpointRequest.TYPE,
            lambda req: (_ for _ in ()).throw(CheckpointError("boom")),
        )
        channel = RpcChannel(server)
        with pytest.raises(CheckpointError, match="boom"):
            channel.call(CheckpointRequest(1))

    def test_damaged_request_is_retried_not_fatal(self):
        """ERR_MESSAGE replies are retryable: resend the pristine frame."""
        server = _echo_server()
        real_dispatch = server.dispatch
        damage_first = {"armed": True}

        def flaky_dispatch(frame):
            if damage_first.pop("armed", False):
                return real_dispatch(frame[:-1] + bytes([frame[-1] ^ 0xFF]))
            return real_dispatch(frame)

        server.dispatch = flaky_dispatch
        channel = RpcChannel(server, retry=RetryConfig(max_attempts=3))
        response = channel.call(CheckpointRequest(9))
        assert response.ok and response.value == 9
        assert channel.stats.retries == 1
        assert channel.stats.wire_errors == 1

    def test_untrained_checkpoint_is_typed_over_the_wire(self):
        """Regression: CheckpointError used to escape dispatch raw."""
        remote = RemotePSClient(*_configs())
        with pytest.raises(CheckpointError):
            remote.request_checkpoint()
        assert all(
            channel.stats.wire_errors >= 1 for channel in remote.channels[:1]
        )

    def test_key_not_found_travels_typed(self):
        server_config, cache_config = _configs()
        server_config = ServerConfig(
            num_nodes=server_config.num_nodes,
            embedding_dim=DIM,
            pmem_capacity_bytes=1 << 22,
            seed=4,
            auto_create=False,
        )
        remote = RemotePSClient(server_config, cache_config)
        with pytest.raises(KeyNotFoundError):
            remote.pull([123], 0)


class TestPushIdempotency:
    def test_duplicate_frame_applies_once(self):
        server_config, cache_config = _configs(num_nodes=1)
        service = PSNodeService(
            PSNode_like(server_config, cache_config), dedup_window=8
        )
        keys = [1, 2, 3]
        service.node.pull(keys, 0)
        service.node.maintain(0)
        before = {k: service.node.read_weights(k).copy() for k in keys}
        frame = encode_message(
            PushRequest(
                batch_id=0,
                keys=np.array(keys, dtype=np.uint64),
                grads=np.ones((3, DIM), dtype=np.float32),
                worker_id=7,
                seq=1,
            )
        )
        first = decode_message(service.server.dispatch(frame))
        replay = decode_message(service.server.dispatch(frame))
        assert first == replay  # cached reply replayed verbatim
        assert service.dup_suppressed == 1
        once = {k: service.node.read_weights(k).copy() for k in keys}
        # Applying the same frame a third time still changes nothing.
        service.server.dispatch(frame)
        for k in keys:
            assert not np.array_equal(before[k], once[k])
            assert np.array_equal(once[k], service.node.read_weights(k))

    def test_seq_zero_opts_out_of_dedup(self):
        server_config, cache_config = _configs(num_nodes=1)
        service = PSNodeService(PSNode_like(server_config, cache_config))
        keys = [5]
        service.node.pull(keys, 0)
        service.node.maintain(0)
        frame = encode_message(
            PushRequest(
                batch_id=0,
                keys=np.array(keys, dtype=np.uint64),
                grads=np.ones((1, DIM), dtype=np.float32),
            )
        )
        after_one = None
        service.server.dispatch(frame)
        after_one = service.node.read_weights(5).copy()
        service.server.dispatch(frame)
        assert not np.array_equal(after_one, service.node.read_weights(5))
        assert service.dup_suppressed == 0

    def test_window_eviction_bounds_memory(self):
        server_config, cache_config = _configs(num_nodes=1)
        service = PSNodeService(
            PSNode_like(server_config, cache_config), dedup_window=4
        )
        service.node.pull([1], 0)
        service.node.maintain(0)
        for seq in range(1, 10):
            frame = encode_message(
                PushRequest(
                    batch_id=0,
                    keys=np.array([1], dtype=np.uint64),
                    grads=np.ones((1, DIM), dtype=np.float32),
                    seq=seq,
                )
            )
            service.server.dispatch(frame)
        assert len(service._push_replies) == 4


class TestCheckpointIdempotency:
    def test_duplicate_checkpoint_frame_replays_ok(self):
        """A duplicated/retried CheckpointRequest must not surface the
        server's 'not newer than queued' rejection to the client whose
        first copy already landed."""
        server_config, cache_config = _configs(num_nodes=1)
        service = PSNodeService(PSNode_like(server_config, cache_config))
        keys = [1, 2]
        service.node.pull(keys, 0)
        service.node.maintain(0)
        service.node.push(keys, np.ones((2, DIM), dtype=np.float32), 0)
        frame = encode_message(CheckpointRequest(batch_id=0))
        first = decode_message(service.server.dispatch(frame))
        assert isinstance(first, StatusResponse)
        assert first.code == StatusResponse.OK
        replay = decode_message(service.server.dispatch(frame))
        assert replay == first  # cached OK, not a CheckpointError frame
        assert service.dup_suppressed == 1
        # exactly one checkpoint is queued and completes
        assert service.node.cache.complete_pending_checkpoints() == [0]
        assert service.node.cache.complete_pending_checkpoints() == []


class TestFaultyTrainingEquivalence:
    def test_training_under_faults_matches_in_process_server(self):
        """Acceptance: drop+duplicate+delay+corrupt, bit-identical state."""
        server_config, cache_config = _configs()
        remote = RemotePSClient(
            server_config, cache_config, faults=FAULTS, retry=RETRY
        )
        local = OpenEmbeddingServer(server_config, cache_config)
        rng = np.random.default_rng(0)
        for batch in range(20):
            keys = sorted(rng.choice(60, size=8, replace=False).tolist())
            grads = rng.normal(0, 0.1, (8, DIM)).astype(np.float32)
            for backend in (remote, local):
                backend.pull(keys, batch)
                backend.maintain(batch)
                backend.push(keys, grads, batch)
        remote_state = remote.state_snapshot()
        local_state = local.state_snapshot()
        assert set(remote_state) == set(local_state)
        for key in local_state:
            assert np.array_equal(remote_state[key], local_state[key])
        reliability = remote.reliability()
        assert reliability.faults_injected > 0
        assert reliability.retries > 0  # the wire really was lossy

    def test_same_seed_same_retry_trace(self):
        def run():
            client = _train(
                RemotePSClient(*_configs(), faults=FAULTS, retry=RETRY)
            )
            stats = client.reliability()
            return (
                stats.retries,
                stats.timeouts,
                stats.dup_suppressed,
                stats.backoff_seconds,
                stats.faults_injected,
                client.wire_bytes(),
                client.clock.now,
            )

        assert run() == run()

    def test_different_seed_different_trace(self):
        def run(seed):
            faults = NetworkFaultConfig(
                drop_rate=0.15, duplicate_rate=0.1, delay_rate=0.1,
                delay_mean_s=5e-3, seed=seed,
            )
            client = _train(RemotePSClient(*_configs(), faults=faults, retry=RETRY))
            return client.fault_stats().summary(), client.clock.now

        assert run(1) != run(2)

    def test_faulty_run_costs_more_wire_and_time(self):
        clean = _train(RemotePSClient(*_configs()))
        faulty = _train(RemotePSClient(*_configs(), faults=FAULTS, retry=RETRY))
        assert faulty.wire_bytes() > clean.wire_bytes()
        assert faulty.clock.now > clean.clock.now
        assert clean.reliability().retries == 0
        assert clean.reliability().faults_injected == 0

    def test_pull_stats_survive_the_wire(self):
        """Regression: remote pulls used to report hits=misses=0."""
        server_config, cache_config = _configs()
        remote = RemotePSClient(server_config, cache_config)
        local = OpenEmbeddingServer(server_config, cache_config)
        keys = [3, 99, 3, 42, 7]
        remote_result = remote.pull(keys, 0)
        local_result = local.pull(keys, 0)
        assert remote_result.created == local_result.created
        assert remote_result.hits == local_result.hits
        assert remote_result.misses == local_result.misses
        assert remote_result.accesses == len(keys)
        # Second pull of the same keys must show cache hits remotely.
        remote.maintain(0)
        again = remote.pull(keys, 1)
        assert again.hits > 0


def PSNode_like(server_config, cache_config):
    """A real PSNode for service-level tests (import kept local)."""
    from repro.core.ps_node import PSNode

    return PSNode(0, server_config, cache_config)
