"""Nested span tracing over the simulated (or wall) clock.

A :class:`Tracer` produces :class:`Span` records — named, timestamped
intervals with free-form attributes — that every layer of the system
emits around its work::

    with tracer.span("rpc.pull", keys=len(keys)):
        ...

Spans nest: the context-manager form tracks a stack, so a retry's
backoff sleep becomes a child of its ``rpc.call``. Timestamps come from
the shared :class:`~repro.simulation.clock.SimClock` when one is given
(the performance layer), or from ``time.perf_counter`` otherwise (the
functional layer) — one tracer never mixes the two.

Concurrent work that a single monotone clock cannot express as nested
intervals — the prefetch/maintenance window hidden behind GPU compute
(Figure 7) — is recorded with :meth:`Tracer.add_span`: an explicit
``(start, duration)`` interval on a named *track*. Tracks become
Perfetto threads in the Chrome ``trace_event`` export
(:func:`repro.obs.exporters.to_chrome_trace`), which is what makes the
overlap visible exactly as in the paper's timeline figure.

Zero-overhead discipline
------------------------
Tracing is opt-in. A disabled tracer's :meth:`span` returns a shared
no-op context manager without allocating a span, and ``add_span`` /
``instant`` return immediately, so instrumented paths cost (nearly)
nothing when observability is off. :data:`NULL_TRACER` is the shared
disabled instance instrumented classes default to — callers never need
``if tracer is not None`` guards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.simulation.clock import SimClock

DEFAULT_TRACK = "main"


@dataclass
class Span:
    """One named, closed interval of work.

    Times are seconds on the tracer's clock domain (simulated seconds
    with a :class:`SimClock`, wall seconds otherwise). ``parent_id`` is
    the enclosing context-manager span (None at top level or for
    explicit :meth:`Tracer.add_span` intervals).
    """

    name: str
    start: float
    end: float | None = None
    track: str = DEFAULT_TRACK
    span_id: int = 0
    parent_id: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs) -> None:
        """Attach attributes after the span opened (e.g. result counts)."""
        self.attrs.update(attrs)


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration marker (crash, checkpoint completion, ...)."""

    name: str
    timestamp: float
    track: str = DEFAULT_TRACK
    attrs: dict = field(default_factory=dict)


class _NullSpan:
    """Shared no-op context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager closing one span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer._close(self._span)
        return None


class Tracer:
    """Span/event collector for one run.

    Args:
        clock: timestamp source; ``None`` uses ``time.perf_counter``
            relative to construction (functional-layer runs).
        enabled: disabled tracers are no-ops (see module docstring).
        max_events: hard cap on stored spans+instants; once reached,
            further records are dropped (counted in ``dropped``) so a
            runaway run cannot exhaust memory.
        recorder: optional :class:`~repro.obs.flightrec.FlightRecorder`
            fed every closed span and instant (the bounded postmortem
            ring); also settable as a plain attribute after
            construction.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        enabled: bool = True,
        max_events: int = 2_000_000,
        recorder=None,
    ):
        if max_events <= 0:
            raise ConfigError(f"max_events must be positive, got {max_events}")
        self.clock = clock
        self.enabled = enabled
        self.max_events = max_events
        self.recorder = recorder
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._next_id = 1
        self._wall_origin = time.perf_counter()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Current time in this tracer's clock domain (seconds)."""
        if self.clock is not None:
            return self.clock.now
        return time.perf_counter() - self._wall_origin

    def span(self, name: str, track: str = DEFAULT_TRACK, **attrs):
        """Open a nested span; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        if len(self.spans) >= self.max_events:
            self.dropped += 1
            return NULL_SPAN
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            start=self.now(),
            track=track,
            span_id=self._next_id,
            parent_id=parent,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return _OpenSpan(self, span)

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        track: str = DEFAULT_TRACK,
        **attrs,
    ) -> None:
        """Record an explicit closed interval (overlap windows).

        Unlike :meth:`span`, the interval need not nest inside the
        current span stack — this is how concurrent tracks (maintainer
        work behind GPU compute) are expressed.
        """
        if not self.enabled:
            return
        if duration < 0:
            raise ConfigError(f"span duration must be >= 0, got {duration}")
        if len(self.spans) >= self.max_events:
            self.dropped += 1
            return
        span = Span(
            name=name,
            start=start,
            end=start + duration,
            track=track,
            span_id=self._next_id,
            parent_id=None,
            attrs=attrs,
        )
        self.spans.append(span)
        self._next_id += 1
        if self.recorder is not None:
            self.recorder.record_span(span)

    def instant(self, name: str, track: str = DEFAULT_TRACK, **attrs) -> None:
        """Record a zero-duration marker at the current time."""
        if not self.enabled:
            return
        if len(self.instants) >= self.max_events:
            self.dropped += 1
            return
        event = InstantEvent(name=name, timestamp=self.now(), track=track, attrs=attrs)
        self.instants.append(event)
        if self.recorder is not None:
            self.recorder.record("instant", name, t=event.timestamp, track=track, **attrs)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def closed_spans(self) -> list[Span]:
        """All spans whose interval is closed, start-ordered."""
        return sorted(
            (s for s in self.spans if s.end is not None), key=lambda s: s.start
        )

    def spans_named(self, name: str) -> list[Span]:
        """All spans (open or closed) with exactly this name."""
        return [s for s in self.spans if s.name == name]

    def total_time(self, name: str) -> float:
        """Summed duration of every closed span with this name."""
        return sum(s.duration for s in self.spans if s.name == name)

    def by_name(self) -> dict[str, tuple[int, float]]:
        """``{name: (count, total_seconds)}`` over closed spans."""
        table: dict[str, tuple[int, float]] = {}
        for span in self.spans:
            if span.end is None:
                continue
            count, total = table.get(span.name, (0, 0.0))
            table[span.name] = (count + 1, total + span.duration)
        return table

    def clear(self) -> None:
        """Drop every recorded span/instant (between bench repetitions)."""
        self.spans.clear()
        self.instants.clear()
        self._stack.clear()
        self.dropped = 0
        self._next_id = 1

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _close(self, span: Span) -> None:
        span.end = self.now()
        # Pop through any abandoned children (exception unwinding).
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end is None:
                top.end = span.end
                if self.recorder is not None:
                    self.recorder.record_span(top)
        if self.recorder is not None:
            self.recorder.record_span(span)


#: The shared disabled tracer instrumented classes default to.
NULL_TRACER = Tracer(enabled=False)
