"""Synthetic DLRM access workloads.

Reproduces the access characteristics of the paper's real-world trace
(Section III): a 2.1 B-entry embedding table whose sorted access
frequencies follow exponential decay (Figure 10), with the head so hot
that the top 0.05 % of entries receive 85.7 % of all accesses
(Table II).
"""

from repro.workload.drift import DriftingWorkload
from repro.workload.distributions import (
    BandedSkewDistribution,
    ExponentialRankDistribution,
    TABLE2_BANDS,
    fit_exponential_rate,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import AccessTraceAnalyzer
from repro.workload.trace_io import (
    TraceReplayGenerator,
    load_trace,
    record_synthetic_trace,
    save_trace,
)

__all__ = [
    "BandedSkewDistribution",
    "ExponentialRankDistribution",
    "TABLE2_BANDS",
    "fit_exponential_rate",
    "WorkloadGenerator",
    "AccessTraceAnalyzer",
    "DriftingWorkload",
    "TraceReplayGenerator",
    "save_trace",
    "load_trace",
    "record_synthetic_trace",
]
