"""Crash-point sweep: kill a live migration at EVERY labelled step.

Drives ``tests/harness/crashpoints.py`` over the full matrix

    every step in ``MIGRATION_STEPS``
  x {scale-out, scale-in}
  x {in-process, remote RPC, remote RPC with injected wire faults}

and asserts, for each cell:

* the final weights are **bitwise identical** to an unsharded reference
  replay — i.e. no push was lost and none was applied twice, whatever
  the crash stranded;
* the recovered ``Checkpointed Batch ID`` never moves backwards;
* after recovery + completion every key lives on exactly the shard the
  committed ring routes it to (no dual-ownership leftovers).

The matrix is derived from :data:`MIGRATION_STEPS` itself, so a new
protocol step automatically joins the sweep, and a dedicated test
proves the sweep covered 100 % of the labels.
"""

from __future__ import annotations

import pytest

from repro.core.migration import MIGRATION_STEPS
from tests.harness.crashpoints import (
    assert_bitwise_equal,
    assert_exclusive_ownership,
    assert_monotone_checkpoints,
    run_crashpoint_scenario,
)

DIRECTIONS = ("scale_out", "scale_in")
MODES = {
    "local": dict(remote=False, faulty=False),
    "remote": dict(remote=True, faulty=False),
    "remote_faulty": dict(remote=True, faulty=True),
}

#: Steps that fire before the atomic ring commit — a crash there must
#: recover onto the OLD ring and re-run the migration.
PRE_COMMIT = ("barrier", "provision", "transfer", "mid_transfer", "seal", "commit")
POST_COMMIT = ("cleanup", "done")
assert set(PRE_COMMIT) | set(POST_COMMIT) == set(MIGRATION_STEPS)


def _check(result):
    assert_bitwise_equal(result.final_state, result.reference)
    assert_monotone_checkpoints(result.checkpoint_trail)
    assert_exclusive_ownership(result.backend)


class TestCrashPointSweep:
    @pytest.mark.parametrize("mode", sorted(MODES))
    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("crash_at", MIGRATION_STEPS)
    def test_crash_recover_replay_is_exact(self, crash_at, direction, mode):
        result = run_crashpoint_scenario(direction, crash_at, **MODES[mode])
        assert result.crashed
        _check(result)
        # The crash side of the commit point decides the recovered ring.
        if crash_at in PRE_COMMIT:
            assert result.retried_migration, (
                f"pre-commit crash at {crash_at} should recover the old "
                "ring and re-run the migration"
            )
        else:
            assert not result.retried_migration, (
                f"post-commit crash at {crash_at} should recover the "
                "already-committed new ring"
            )
        # Whatever happened, the job finished on the target ring.
        expected = 4 if direction == "scale_out" else 2
        assert result.backend.server_config.num_nodes == expected

    @pytest.mark.parametrize("mode", sorted(MODES))
    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_uninterrupted_migration_is_exact(self, direction, mode):
        """The crash_at=None control row of the matrix."""
        result = run_crashpoint_scenario(direction, None, **MODES[mode])
        assert not result.crashed
        assert result.report is not None
        assert result.report.direction == direction
        assert result.report.keys_moved > 0
        _check(result)

    def test_sweep_covers_every_labelled_step(self):
        """100 % crash-point coverage, by construction and by observation:
        the parametrization IS ``MIGRATION_STEPS``, and one uninterrupted
        run fires every label in protocol order."""
        result = run_crashpoint_scenario("scale_out", None)
        assert tuple(result.steps_seen) == MIGRATION_STEPS
        result = run_crashpoint_scenario("scale_in", None)
        assert tuple(result.steps_seen) == MIGRATION_STEPS

    def test_faulty_wire_actually_injected_faults(self):
        result = run_crashpoint_scenario(
            "scale_out", "mid_transfer", remote=True, faulty=True
        )
        _check(result)
        # Recovery rebuilds an in-process server, so read the stats the
        # remote leg accumulated before the crash from the scenario's
        # own record: at least one step ran over the lossy wire.
        assert result.crashed and result.steps_seen[-1] == "mid_transfer"


class TestCrashPointEdgeCases:
    def test_double_migration_without_training_between(self):
        """Back-to-back reshards hit the idempotent-barrier path (the
        cluster is already quiesced at a durable checkpoint)."""
        result = run_crashpoint_scenario(
            "scale_out", None, batches_after=0
        )
        _check(result)

    def test_scale_in_after_crashy_scale_out(self):
        """Grow through a mid-transfer crash, then shrink cleanly; the
        pair must round-trip to the reference."""
        grown = run_crashpoint_scenario("scale_out", "mid_transfer")
        _check(grown)
        # Shrink the recovered 4-node cluster back to 3.
        from repro.core.migration import ShardMigrator

        report = ShardMigrator(grown.backend).scale_in()
        assert report.to_nodes == 3
        assert_bitwise_equal(grown.backend.state_snapshot(), grown.reference)
        assert_exclusive_ownership(grown.backend)
