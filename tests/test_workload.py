"""Workload distributions, generation and trace analysis."""

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.errors import ConfigError
from repro.workload.distributions import (
    BandedSkewDistribution,
    ExponentialRankDistribution,
    RankPermutation,
    TABLE2_BANDS,
    fit_exponential_rate,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import AccessTraceAnalyzer


class TestBandedSkew:
    def test_matches_table2_analytically(self):
        dist = BandedSkewDistribution(1_000_000)
        assert dist.top_fraction_share(0.0005) == pytest.approx(0.857)
        assert dist.top_fraction_share(0.001) == pytest.approx(0.895)
        assert dist.top_fraction_share(0.01) == pytest.approx(0.957)

    def test_matches_table2_empirically(self):
        dist = BandedSkewDistribution(100_000, seed=4)
        keys = dist.sample_keys(200_000)
        analyzer = AccessTraceAnalyzer(keys)
        assert analyzer.top_share(0.0005, of_keyspace=100_000) == pytest.approx(
            0.857, abs=0.01
        )

    def test_samples_in_range(self):
        dist = BandedSkewDistribution(1000)
        keys = dist.sample_keys(10_000)
        assert keys.min() >= 0
        assert keys.max() < 1000

    def test_temperature_one_is_identity(self):
        base = BandedSkewDistribution(10_000)
        same = base.with_temperature(1.0)
        assert same.top_fraction_share(0.001) == pytest.approx(
            base.top_fraction_share(0.001)
        )

    def test_higher_temperature_more_skew(self):
        base = BandedSkewDistribution(10_000)
        hot = base.with_temperature(1.5)
        cold = base.with_temperature(0.7)
        f = 0.0005
        assert hot.top_fraction_share(f) > base.top_fraction_share(f)
        assert cold.top_fraction_share(f) < base.top_fraction_share(f)

    def test_deterministic_by_seed(self):
        a = BandedSkewDistribution(1000, seed=5).sample_keys(100)
        b = BandedSkewDistribution(1000, seed=5).sample_keys(100)
        assert np.array_equal(a, b)

    def test_invalid_bands(self):
        with pytest.raises(ConfigError):
            BandedSkewDistribution(1000, bands=((0.5, 0.5),))
        with pytest.raises(ConfigError):
            BandedSkewDistribution(1000, temperature=0)

    def test_bands_sum_checked(self):
        key_fracs = sum(b[0] for b in TABLE2_BANDS)
        masses = sum(b[1] for b in TABLE2_BANDS)
        assert key_fracs == pytest.approx(1.0)
        assert masses == pytest.approx(1.0)


class TestExponentialRank:
    def test_share_formula(self):
        dist = ExponentialRankDistribution(100_000, rate=10.0)
        expected = (1 - np.exp(-10 * 0.1)) / (1 - np.exp(-10))
        assert dist.top_fraction_share(0.1) == pytest.approx(expected)

    def test_higher_rate_more_skew(self):
        low = ExponentialRankDistribution(10_000, rate=2.0)
        high = ExponentialRankDistribution(10_000, rate=20.0)
        assert high.top_fraction_share(0.05) > low.top_fraction_share(0.05)

    def test_empirical_matches_analytic(self):
        dist = ExponentialRankDistribution(50_000, rate=8.0, seed=1)
        ranks = dist.sample_ranks(200_000)
        empirical = (ranks < 5000).mean()
        assert empirical == pytest.approx(dist.top_fraction_share(0.1), abs=0.01)

    def test_pdf_decreasing(self):
        dist = ExponentialRankDistribution(1000, rate=5.0)
        x = np.linspace(0, 1, 20)
        pdf = dist.pdf_at_rank_fraction(x)
        assert np.all(np.diff(pdf) < 0)


class TestRankPermutation:
    def test_bijection(self):
        perm = RankPermutation(1000, seed=2)
        keys = perm.keys_for_ranks(np.arange(1000))
        assert sorted(keys.tolist()) == list(range(1000))

    def test_scatters_hot_ranks(self):
        perm = RankPermutation(100_000, seed=2)
        hot_keys = perm.keys_for_ranks(np.arange(100))
        assert hot_keys.std() > 10_000  # spread over the id space


class TestFitting:
    def test_recovers_exponential_rate(self):
        n = 2000
        ranks = np.arange(n)
        freqs = 500.0 * np.exp(-9.0 * ranks / n)
        a, b = fit_exponential_rate(freqs)
        assert a == pytest.approx(500.0, rel=0.05)
        assert b == pytest.approx(9.0, rel=0.05)

    def test_degenerate_input_rejected(self):
        with pytest.raises(ConfigError):
            fit_exponential_rate(np.array([5.0]))


class TestGenerator:
    def test_dedup_batches(self):
        gen = WorkloadGenerator(WorkloadConfig(num_keys=1000, features_per_sample=8))
        keys = gen.sample_batch_keys(64)
        assert len(keys) == len(np.unique(keys))

    def test_raw_stream_length(self):
        gen = WorkloadGenerator(WorkloadConfig(num_keys=1000, features_per_sample=8))
        raw = gen.sample_batch_keys(64, deduplicate=False)
        assert len(raw) == 64 * 8

    def test_worker_batches_independent(self):
        gen = WorkloadGenerator(WorkloadConfig(num_keys=100_000, features_per_sample=8))
        batches = gen.sample_worker_batches(4, 64)
        assert len(batches) == 4
        assert not np.array_equal(batches[0], batches[1])

    def test_access_stream(self):
        gen = WorkloadGenerator(WorkloadConfig(num_keys=1000, features_per_sample=4))
        stream = gen.access_stream(3, 32)
        assert len(stream) == 3 * 32 * 4

    def test_invalid_args(self):
        gen = WorkloadGenerator()
        with pytest.raises(ConfigError):
            gen.sample_batch_keys(0)
        with pytest.raises(ConfigError):
            gen.sample_worker_batches(0, 8)


class TestTraceAnalyzer:
    def test_top_share_of_uniform(self):
        analyzer = AccessTraceAnalyzer(np.arange(1000))
        assert analyzer.top_share(0.1) == pytest.approx(0.1)

    def test_top_share_with_keyspace_denominator(self):
        # 10 distinct keys of a 1000-key space, uniform: the "top 0.2 %
        # of the key space" is 2 keys = 20 % of accesses.
        analyzer = AccessTraceAnalyzer(np.repeat(np.arange(10), 5))
        assert analyzer.top_share(0.002, of_keyspace=1000) == pytest.approx(0.2)

    def test_skew_report(self):
        gen = WorkloadGenerator(WorkloadConfig(num_keys=100_000, features_per_sample=8, seed=2))
        analyzer = AccessTraceAnalyzer(gen.access_stream(20, 256))
        report = analyzer.skew_report(of_keyspace=100_000)
        assert report.top_shares[0.0005] == pytest.approx(0.857, abs=0.02)
        assert report.total_accesses == 20 * 256 * 8

    def test_frequency_curve_downsamples(self):
        analyzer = AccessTraceAnalyzer(np.repeat(np.arange(500), 2))
        x, y = analyzer.frequency_curve(points=50)
        assert len(x) <= 50
        assert y[0] >= y[-1]

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigError):
            AccessTraceAnalyzer(np.array([]))
