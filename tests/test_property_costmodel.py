"""Property tests for the performance model (hypothesis).

The cost model is a calibrated approximation, but certain relations
must hold for ANY inputs — otherwise figures drawn from it are
artifacts of parameter luck rather than structure.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig, NetworkConfig, ServerConfig
from repro.simulation.calibration import Calibration
from repro.simulation.cluster import IterationCounts, PSCostModel, SystemKind


def counts_strategy():
    return st.integers(0, 5000).flatmap(
        lambda requests: st.tuples(
            st.just(requests),
            st.integers(0, requests),  # misses
            st.integers(0, requests),  # flushes
        )
    )


def make_counts(requests, misses, flushes):
    return IterationCounts(
        requests=requests,
        hits=max(0, requests - misses),
        misses=misses,
        created=0,
        maintain_processed=requests,
        maintain_loads=misses,
        maintain_flushes=flushes,
        maintain_evictions=flushes,
    )


def model(system, workers=8, nodes=1, **kwargs):
    return PSCostModel(
        system,
        ClusterConfig(
            num_workers=workers,
            network=NetworkConfig(bandwidth_bytes_per_s=60e6),
        ),
        ServerConfig(num_nodes=nodes, embedding_dim=64),
        Calibration(),
        **kwargs,
    )


ALL_SYSTEMS = list(SystemKind)


class TestUniversalRelations:
    @given(raw=counts_strategy(), system=st.sampled_from(ALL_SYSTEMS))
    @settings(max_examples=100, deadline=None)
    def test_times_are_finite_and_positive(self, raw, system):
        timing = model(system).price_iteration(make_counts(*raw))
        assert timing.total > 0
        for value in (
            timing.net_pull,
            timing.pull_service,
            timing.gpu,
            timing.maintain_deferred,
            timing.maintain_inline,
            timing.net_push,
            timing.push_service,
        ):
            assert value >= 0

    @given(raw=counts_strategy(), system=st.sampled_from(ALL_SYSTEMS))
    @settings(max_examples=60, deadline=None)
    def test_dram_ps_is_the_floor(self, raw, system):
        counts = make_counts(*raw)
        dram = model(SystemKind.DRAM_PS).price_iteration(counts).total
        assert model(system).price_iteration(counts).total >= dram - 1e-12

    @given(
        raw=counts_strategy(),
        system=st.sampled_from([SystemKind.PMEM_OE, SystemKind.ORI_CACHE]),
    )
    @settings(max_examples=60, deadline=None)
    def test_more_misses_never_cheaper(self, raw, system):
        requests, misses, flushes = raw
        low = make_counts(requests, min(misses, requests // 2), flushes)
        high = make_counts(requests, requests, flushes)
        m = model(system)
        assert (
            m.price_iteration(high).total >= m.price_iteration(low).total - 1e-12
        )

    @given(raw=counts_strategy())
    @settings(max_examples=60, deadline=None)
    def test_pipeline_never_slower(self, raw):
        counts = make_counts(*raw)
        piped = model(SystemKind.PMEM_OE, pipelined=True).price_iteration(counts)
        unpiped = model(SystemKind.PMEM_OE, pipelined=False).price_iteration(counts)
        assert piped.total <= unpiped.total + 1e-12

    @given(raw=counts_strategy(), nodes=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_more_shards_never_slower(self, raw, nodes):
        counts = make_counts(*raw)
        one = model(SystemKind.PMEM_OE, nodes=1).price_iteration(counts).total
        many = model(SystemKind.PMEM_OE, nodes=nodes).price_iteration(counts).total
        assert many <= one + 1e-9

    @given(
        per_worker=st.integers(1, 400),
        system=st.sampled_from([SystemKind.ORI_CACHE, SystemKind.TF_PS]),
    )
    @settings(max_examples=40, deadline=None)
    def test_contended_systems_degrade_with_workers(self, per_worker, system):
        """Per-iteration time at fixed per-worker load grows faster for
        lock-bound systems than for DRAM-PS — the structural source of
        the paper's scaling gaps."""

        def gap(workers):
            counts = make_counts(per_worker * workers, 0, 0)
            sys_t = model(system, workers=workers).price_iteration(counts).total
            dram_t = (
                model(SystemKind.DRAM_PS, workers=workers)
                .price_iteration(counts)
                .total
            )
            return sys_t / dram_t

        assert gap(16) >= gap(4) - 1e-9
