"""The benchmark registry: importable, composable experiment entries.

Each ``benchmarks/bench_*.py`` registers one callable entry point with
a *typed parameter space*, optional smoke-scale overrides, optional
*headline metrics* (what the regression gate guards, with per-metric
thresholds), and an optional acceptance ``check``::

    from repro.bench import Headline, Param, register

    @register(
        "prefetch",
        params=[Param("lookahead", "int", 2), Param("workers", "int", 16)],
        smoke={"workers": 8},
        headline={"speedup": Headline(direction="higher", max_regression=0.05)},
        check=lambda metrics, params: [] if metrics["identical"] else ["diverged"],
    )
    def run_prefetch(*, lookahead, workers):
        ...
        return {"speedup": 1.34, "identical": True}

Entries return a flat ``{metric: number}`` dict; the sweep runner wraps
them in ``repro-bench-v1`` records. :func:`discover` imports every
``benchmarks.bench_*`` module so the global :data:`REGISTRY` is
populated from a bare checkout.
"""

from __future__ import annotations

import importlib
import pathlib
import sys
from dataclasses import dataclass, field

from repro.bench.space import Param
from repro.errors import ConfigError

__all__ = [
    "REGISTRY",
    "BenchRegistry",
    "BenchSpec",
    "Headline",
    "discover",
    "register",
]

_DIRECTIONS = ("higher", "lower")


@dataclass(frozen=True)
class Headline:
    """Gate policy for one headline metric.

    ``direction`` is the *good* direction; ``max_regression`` is the
    tolerated fractional move the bad way; ``noise`` is an absolute
    floor below which any move is ignored (wall-clock jitter).
    """

    direction: str = "higher"
    max_regression: float = 0.10
    noise: float = 0.0

    def __post_init__(self):
        if self.direction not in _DIRECTIONS:
            raise ConfigError(
                f"headline direction {self.direction!r} not in {_DIRECTIONS}"
            )
        if self.max_regression < 0 or self.noise < 0:
            raise ConfigError("headline thresholds must be non-negative")


@dataclass
class BenchSpec:
    """One registered benchmark: entry point + typed parameter space."""

    name: str
    fn: object
    params: dict = field(default_factory=dict)  # name -> Param
    smoke: dict = field(default_factory=dict)  # param overrides at smoke scale
    headline: dict = field(default_factory=dict)  # metric -> Headline
    check: object = None  # (metrics, params) -> list[str] of failures
    description: str = ""

    def resolve(self, overrides: dict | None = None, scale: str = "smoke") -> dict:
        """Defaults (+ smoke overlay) + coerced overrides -> full params."""
        resolved = {name: param.default for name, param in self.params.items()}
        if scale == "smoke":
            resolved.update(self.smoke)
        for key, value in (overrides or {}).items():
            if key not in self.params:
                raise ConfigError(
                    f"bench {self.name!r}: unknown param {key!r} "
                    f"(has {sorted(self.params)})"
                )
            resolved[key] = value
        return {
            name: self.params[name].coerce(value)
            for name, value in resolved.items()
        }

    def run(self, params: dict) -> dict:
        """Execute the entry point; validates the returned metrics."""
        metrics = self.fn(**params)
        if not isinstance(metrics, dict) or not metrics:
            raise ConfigError(
                f"bench {self.name!r}: entry must return a non-empty metrics "
                f"dict, got {type(metrics).__name__}"
            )
        bad = {
            key: value
            for key, value in metrics.items()
            if not isinstance(value, (int, float, bool))
        }
        if bad:
            raise ConfigError(
                f"bench {self.name!r}: non-numeric metrics {sorted(bad)}"
            )
        return metrics

    def failures(self, metrics: dict, params: dict) -> list:
        """Run the acceptance check, if declared."""
        if self.check is None:
            return []
        return list(self.check(metrics, params))


class BenchRegistry:
    """Name -> :class:`BenchSpec`, with duplicate protection."""

    def __init__(self):
        self._specs: dict[str, BenchSpec] = {}

    def add(self, spec: BenchSpec) -> None:
        existing = self._specs.get(spec.name)
        if existing is not None:
            # Re-import of the same module (package import after a
            # __main__ run, importlib.reload) re-registers the same
            # function; that is benign. A *different* function claiming
            # a taken name is a bug.
            same = getattr(existing.fn, "__qualname__", None) == getattr(
                spec.fn, "__qualname__", object()
            )
            if not same:
                raise ConfigError(f"benchmark {spec.name!r} already registered")
        self._specs[spec.name] = spec

    def get(self, name: str) -> BenchSpec:
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs)) or "<none>"
            raise ConfigError(
                f"unknown benchmark {name!r} (registered: {known})"
            ) from None

    def names(self) -> list:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def register(
        self,
        name: str,
        *,
        params=(),
        smoke: dict | None = None,
        headline: dict | None = None,
        check=None,
        description: str = "",
    ):
        """Decorator form; see module docstring for the shape."""

        def decorate(fn):
            space = {}
            for param in params:
                if not isinstance(param, Param):
                    raise ConfigError(
                        f"bench {name!r}: params must be Param instances"
                    )
                if param.name in space:
                    raise ConfigError(
                        f"bench {name!r}: duplicate param {param.name!r}"
                    )
                space[param.name] = param
            for key in smoke or {}:
                if key not in space:
                    raise ConfigError(
                        f"bench {name!r}: smoke override for unknown "
                        f"param {key!r}"
                    )
            doc = (fn.__doc__ or "").strip()
            spec = BenchSpec(
                name=name,
                fn=fn,
                params=space,
                smoke=dict(smoke or {}),
                headline=dict(headline or {}),
                check=check,
                description=description or (doc.splitlines()[0] if doc else ""),
            )
            self.add(spec)
            return fn

        return decorate


#: The process-global registry that ``discover()`` populates.
REGISTRY = BenchRegistry()


def register(name, **kwargs):
    """Register into the global :data:`REGISTRY` (decorator)."""
    return REGISTRY.register(name, **kwargs)


def _benchmarks_dir() -> pathlib.Path | None:
    """The repository's ``benchmarks/`` directory, if checked out."""
    root = pathlib.Path(__file__).resolve().parents[3]
    candidate = root / "benchmarks"
    if (candidate / "__init__.py").is_file():
        return candidate
    return None


def discover(registry: BenchRegistry | None = None) -> int:
    """Import every ``benchmarks.bench_*`` module, populating the
    global registry; returns the number of modules imported.

    Safe to call repeatedly (imports are cached). Raises ConfigError
    when the benchmarks package is not present (installed wheel without
    the repository checkout).
    """
    del registry  # modules always register into the global REGISTRY
    bench_dir = _benchmarks_dir()
    if bench_dir is None:
        raise ConfigError(
            "benchmarks/ package not found next to the repro checkout; "
            "the bench registry needs the repository, not an installed wheel"
        )
    root = str(bench_dir.parent)
    if root not in sys.path:
        sys.path.insert(0, root)
    count = 0
    for path in sorted(bench_dir.glob("bench_*.py")):
        importlib.import_module(f"benchmarks.{path.stem}")
        count += 1
    return count
