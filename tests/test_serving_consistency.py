"""Property-based serving consistency: no torn rows, bounded staleness.

The serving contract (docs/SERVING.md): every row a
:class:`~repro.dlrm.hps.HierarchicalPS` returns is (a) bitwise equal to
the authoritative state at the Checkpointed Batch ID the row reports —
never a torn mix of checkpoints — and (b) pinned at most
``staleness_bound_k`` completed checkpoints behind the newest.

We drive hypothesis-generated interleavings of training pushes,
checkpoint barriers and concurrent serving lookups, over all three
transports (in-process server, RPC, RPC over a lossy wire), replaying
the training stream into per-checkpoint reference snapshots and
auditing every served row against the reference its pin names.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.hps import HierarchicalPS
from repro.network.frontend import RemotePSClient
from repro.simulation.clock import SimClock

from tests.harness.crashpoints import FAULTS, RETRY

DIM = 4
NUM_KEYS = 12
STALENESS_K = 1


def make_backend(transport: str):
    config = ServerConfig(
        num_nodes=2,
        embedding_dim=DIM,
        pmem_capacity_bytes=1 << 22,
        seed=9,
    )
    cache = CacheConfig(capacity_bytes=1 << 18)
    if transport == "local":
        return OpenEmbeddingServer(config, cache, PSAdagrad(lr=0.1))
    faults = FAULTS if transport == "faulty" else None
    return RemotePSClient(
        config,
        cache,
        PSAdagrad(lr=0.1),
        clock=SimClock(),
        faults=faults,
        retry=RETRY if faults else None,
    )


def op_strategy():
    """One interleaved op: train a key set, checkpoint, or read."""
    keys = st.lists(
        st.integers(0, NUM_KEYS - 1), min_size=1, max_size=4, unique=True
    )
    return st.lists(
        st.one_of(
            st.tuples(st.just("train"), keys),
            st.tuples(st.just("ckpt"), st.just([])),
            st.tuples(st.just("read"), keys),
        ),
        min_size=3,
        max_size=16,
    )


def cold_init(config: ServerConfig, key: int) -> np.ndarray:
    rng = np.random.default_rng((config.seed, key))
    return rng.uniform(
        -config.initializer_scale, config.initializer_scale, DIM
    ).astype(np.float32)


def audit(tier, backend, references, keys) -> None:
    """One audited lookup: torn-row + staleness-bound assertions."""
    result = tier.lookup(keys)
    completed = sorted(references)
    newest = completed[-1]
    for j, key in enumerate(keys):
        pin = int(result.row_snapshots[j])
        lag = sum(1 for s in completed if pin < s <= newest)
        assert lag <= STALENESS_K, (
            f"row {key} pinned at {pin}, {lag} checkpoints behind {newest} "
            f"(bound {STALENESS_K})"
        )
        assert pin in references, f"row {key} pinned at unknown snapshot {pin}"
        expected = references[pin].get(int(key))
        if expected is None:
            expected = cold_init(backend.server_config, int(key))
        assert np.array_equal(result.weights[j], expected), (
            f"torn row: key {key} at pin {pin} does not match the "
            f"checkpointed reference"
        )


def run_interleaving(transport: str, schedule) -> None:
    backend = make_backend(transport)
    tier = HierarchicalPS(
        backend, capacity_rows=8, staleness_bound_k=STALENESS_K
    )
    #: Checkpointed Batch ID -> {key: weights at that checkpoint}.
    references: dict[int, dict[int, np.ndarray]] = {}
    batch = 0
    trained_since_ckpt = False
    for op, keys in schedule:
        if op == "train":
            backend.pull(keys, batch)
            backend.maintain(batch)
            grads = np.full((len(keys), DIM), 0.05, dtype=np.float32)
            backend.push(keys, grads, batch)
            batch += 1
            trained_since_ckpt = True
        elif op == "ckpt":
            if not trained_since_ckpt:
                continue
            snapshot_id = backend.barrier_checkpoint()
            references[snapshot_id] = {
                int(k): np.array(v, copy=True)
                for k, v in backend.state_snapshot().items()
            }
            trained_since_ckpt = False
        else:  # read
            if not references:
                continue  # nothing servable yet — no checkpoint
            audit(tier, backend, references, keys)


@pytest.mark.parametrize("transport", ["local", "remote", "faulty"])
@settings(max_examples=25)
@given(schedule=op_strategy())
def test_no_torn_rows_bounded_staleness(transport, schedule):
    run_interleaving(transport, schedule)


def test_lookup_before_any_checkpoint_is_rejected():
    """Serving must refuse rather than serve an inconsistent cut."""
    from repro.errors import CheckpointError

    backend = make_backend("local")
    tier = HierarchicalPS(backend, capacity_rows=8)
    backend.pull([1], 0)
    backend.maintain(0)
    backend.push([1], np.ones((1, DIM), dtype=np.float32), 0)
    with pytest.raises(CheckpointError):
        tier.lookup([1])


def test_read_only_traffic_cannot_break_a_pin():
    """A barrier taken after read-only traffic still reads trained rows.

    Held-out evaluation and serving warm-up pull + maintain WITHOUT
    pushing, at batch ids far past the trained watermark. That advances
    entries' access versions while the next checkpoint still pins at
    the trained watermark — the barrier flush must leave a durable row
    at the pin (not only at the read-advanced version), otherwise a
    checkpoint-pinned export would serve cold initializers for every
    trained key.
    """
    backend = make_backend("local")
    keys = list(range(NUM_KEYS))
    for batch in range(3):
        backend.pull(keys, batch)
        backend.maintain(batch)
        backend.push(keys, np.full((len(keys), DIM), 0.1, np.float32), batch)
    live = {
        int(k): np.array(v, copy=True)
        for k, v in backend.state_snapshot().items()
    }
    for i in range(4):  # held-out evaluation: reads only, no pushes
        backend.pull(keys, 1_000_000 + i)
        backend.maintain(1_000_000 + i)
    pin = backend.barrier_checkpoint()
    assert pin == 2  # the trained watermark, not a read-only batch id
    result = backend.lookup(keys, pin)
    assert result.cold == 0
    for j, key in enumerate(keys):
        assert np.array_equal(result.weights[j], live[key])


def test_cache_never_leaks_across_pins():
    """A cached row must keep the weights of ITS pin, not the newest."""
    backend = make_backend("local")
    tier = HierarchicalPS(backend, capacity_rows=8, staleness_bound_k=1)
    for batch in range(2):
        backend.pull([1, 2], batch)
        backend.maintain(batch)
        backend.push([1, 2], np.full((2, DIM), 0.1, np.float32), batch)
    backend.barrier_checkpoint()
    cached = tier.lookup([1])  # admitted at checkpoint 1
    backend.pull([1, 2], 2)
    backend.maintain(2)
    backend.push([1, 2], np.full((2, DIM), 0.3, np.float32), 2)
    backend.barrier_checkpoint()
    lagging = tier.lookup([1])  # still inside the k=1 window
    assert int(lagging.row_snapshots[0]) == int(cached.row_snapshots[0])
    assert np.array_equal(lagging.weights, cached.weights)
    authoritative = backend.lookup([1], int(lagging.row_snapshots[0]))
    assert np.array_equal(lagging.weights, authoritative.weights)
