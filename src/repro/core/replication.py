"""Synchronous primary/backup replication (extension beyond the paper).

The paper's answer to failures is *recovery*: rebuild from the PMem
checkpoint in ~380 s. The classic alternative is *replication*: keep a
synchronously-updated backup node and fail over in milliseconds, at the
cost of 2x hardware and doubled update work. This module implements
that alternative so the trade-off is measurable here (see
``bench_ablation_replication``):

* every ``pull`` is served by the primary; every ``push`` and
  ``maintain`` is applied to primary AND backup (synchronous
  replication — the backup is always at the same batch);
* :meth:`failover` promotes the backup instantly — no PMem scan, no
  index rebuild, nothing discarded: the live state (not just the last
  checkpoint) survives;
* a *double fault* (both replicas lost) falls back to ordinary
  checkpoint recovery on either surviving pool.

The replicas stay bitwise identical because all PS operations are
deterministic — an invariant the tests check directly.
"""

from __future__ import annotations

import numpy as np

from repro.config import CacheConfig, ServerConfig
from repro.core.cache import MaintainResult, PullResult
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSOptimizer
from repro.errors import ServerError
from repro.simulation.calibration import Calibration, DEFAULT_CALIBRATION


class ReplicatedPSNode:
    """A PS node mirrored onto a synchronous backup replica.

    Protocol-compatible with :class:`PSNode` for the training path.
    """

    def __init__(
        self,
        node_id: int,
        server_config: ServerConfig,
        cache_config: CacheConfig | None = None,
        optimizer: PSOptimizer | None = None,
        metadata_only: bool = False,
    ):
        self.node_id = node_id
        self.server_config = server_config
        self.primary = PSNode(
            node_id, server_config, cache_config, optimizer,
            metadata_only=metadata_only,
        )
        self.backup: PSNode | None = PSNode(
            node_id, server_config, cache_config, optimizer,
            metadata_only=metadata_only,
        )
        self.failovers = 0
        self.ring_epoch = 0
        self._primary_dead = False

    # ------------------------------------------------------------------
    # PS protocol — reads from the primary, writes to both
    # ------------------------------------------------------------------

    def pull(self, keys, batch_id: int) -> PullResult:
        result = self.primary.pull(keys, batch_id)
        if self.backup is not None:
            # The backup replays the access stream so its cache state
            # (and therefore its checkpoint pipeline) tracks the
            # primary exactly.
            self.backup.pull(keys, batch_id)
        return result

    def maintain(self, batch_id: int) -> MaintainResult:
        result = self.primary.maintain(batch_id)
        if self.backup is not None:
            self.backup.maintain(batch_id)
        return result

    def push(self, keys, grads: np.ndarray | None, batch_id: int) -> int:
        updated = self.primary.push(keys, grads, batch_id)
        if self.backup is not None:
            self.backup.push(keys, grads, batch_id)
        return updated

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        requested = self.primary.request_checkpoint(batch_id)
        if self.backup is not None:
            self.backup.request_checkpoint(requested)
        return requested

    def barrier_checkpoint(self, batch_id: int | None = None) -> int:
        requested = self.primary.barrier_checkpoint(batch_id)
        if self.backup is not None:
            self.backup.request_checkpoint(requested)
            self.backup.cache.complete_pending_checkpoints()
        return requested

    # ------------------------------------------------------------------
    # shard migration — replicas follow the ring epoch
    # ------------------------------------------------------------------

    def follow_ring(self, epoch: int) -> None:
        """Adopt a committed ring epoch.

        Epochs are monotone; both replicas serve the same epoch, so a
        failover never resurrects pre-migration routing.

        Raises:
            ServerError: the epoch moves backwards.
        """
        if epoch < self.ring_epoch:
            raise ServerError(
                f"ring epoch must be monotone: {epoch} < {self.ring_epoch}"
            )
        self.ring_epoch = epoch

    def owned_keys(self) -> list[int]:
        return self.primary.owned_keys()

    def export_entries(self, keys):
        """Transfer reads come from the primary (replicas are bitwise
        identical, which :meth:`verify_replicas_identical` checks)."""
        return self.primary.export_entries(keys)

    def ingest_entries(self, entries) -> int:
        """Adopt migrated entries on primary AND backup.

        Mirroring the ingest keeps the replicas bitwise identical across
        a ring-epoch change — a failover after a migration must serve
        exactly the post-migration shard.
        """
        count = self.primary.ingest_entries(entries)
        if self.backup is not None:
            self.backup.ingest_entries(entries)
        return count

    def drop_keys(self, keys) -> int:
        """Relinquish migrated-away keys on primary AND backup."""
        dropped = self.primary.drop_keys(keys)
        if self.backup is not None:
            self.backup.drop_keys(keys)
        return dropped

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def fail_primary(self) -> None:
        """Kill the primary process (its pool survives but is unused
        unless the backup also dies).

        Raises:
            ServerError: already degraded (no backup to fail over to —
                use ordinary checkpoint recovery instead).
        """
        if self.backup is None:
            raise ServerError("already degraded; use checkpoint recovery")
        self.primary.crash()
        self._primary_dead = True

    def failover(self) -> float:
        """Promote the backup; returns the simulated failover seconds.

        Nothing is scanned or rebuilt — the backup's DRAM structures are
        already live — so the cost is a role switch plus client
        redirection, orders of magnitude below checkpoint recovery.

        Raises:
            ServerError: no failed primary to replace.
        """
        if not self._primary_dead:
            raise ServerError("failover without a failed primary")
        self.primary = self.backup
        self.backup = None
        self._primary_dead = False
        self.failovers += 1
        return FAILOVER_SECONDS

    @property
    def degraded(self) -> bool:
        """True after a failover consumed the backup."""
        return self.backup is None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return self.primary.num_entries

    def read_weights(self, key: int) -> np.ndarray:
        return self.primary.read_weights(key)

    def state_snapshot(self) -> dict[int, np.ndarray]:
        return self.primary.state_snapshot()

    def verify_replicas_identical(self) -> None:
        """Assert primary and backup hold bitwise-equal state.

        Raises:
            ServerError: divergence (a replication bug) was found.
        """
        if self.backup is None:
            raise ServerError("no backup to compare (degraded mode)")
        primary_state = self.primary.state_snapshot()
        backup_state = self.backup.state_snapshot()
        if set(primary_state) != set(backup_state):
            raise ServerError("replicas hold different key sets")
        for key, weights in primary_state.items():
            if not np.array_equal(weights, backup_state[key]):
                raise ServerError(f"replicas diverged on key {key}")


#: Simulated failover cost: lease expiry detection + client redirect.
FAILOVER_SECONDS = 0.5


def replication_vs_recovery_seconds(
    *,
    entries: int,
    entry_bytes: int,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> tuple[float, float]:
    """(failover seconds, checkpoint-recovery seconds) at a given scale.

    The quantitative version of the trade-off: replication answers a
    failure in :data:`FAILOVER_SECONDS` regardless of model size, while
    recovery scales with the table (Figure 14's 380 s at 2.1 B entries)
    — bought with 2x machines and doubled write work.
    """
    from repro.core.recovery import estimate_recovery_seconds

    recovery = estimate_recovery_seconds(
        entries=entries, versions=entries, entry_bytes=entry_bytes,
        calibration=calibration,
    )
    return FAILOVER_SECONDS, recovery
