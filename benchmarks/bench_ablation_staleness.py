"""Ablation: staleness bound x aggregator x hostile fraction.

ISSUE 10's convergence grid: the asynchronous trainer runs the same
seeded workload while three axes vary — the PS-side staleness bound
``k``, the robust-aggregation fold, and the fraction of workers turned
Byzantine (sign-flip gradients, amplified, plus duplicated and delayed
pushes). Held-out AUC / log-loss are the headlines the perf gate
guards: a regression here means the defense layer stopped earning its
keep, not that a loop got slower.

The report shows the two rows the paper's Section II argument needs:
robust aggregation under a hostile minority stays inside the sync
envelope, while plain mean under the *same* injection diverges.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once
from repro.bench import Headline, Param, register
from repro.failure.injection import hostile_fleet
from tests.harness.async_chaos import run_async, run_sync_baseline

WORKERS = 6  # n >= 3f + 2 for f = 1
STEPS = 180
SCALE = 6.0  # sign-flip amplification (matches the chaos soak)


def _cell(
    *,
    steps: int,
    workers: int,
    staleness_k: int,
    aggregator: str,
    hostile_fraction: float,
    seed: int,
):
    """One grid cell: a full hostile (or honest) async run, evaluated."""
    byzantine = round(hostile_fraction * workers)
    fleet = None
    if byzantine:
        fleet = hostile_fleet(
            workers,
            byzantine,
            "sign_flip",
            scale=SCALE,
            duplicate_prob=0.1,
            delay_prob=0.1,
            seed=seed,
        )
    return run_async(
        steps=steps,
        workers=workers,
        staleness=1,
        staleness_bound=staleness_k,
        aggregator=aggregator,
        fleet=fleet,
        seed=seed,
    )


def test_ablation_staleness(benchmark, report):
    aggs = ("trimmed_mean", "median", "mean")

    def grid():
        baseline = run_sync_baseline(batches=STEPS)
        hostile = {
            agg: _cell(
                steps=STEPS, workers=WORKERS, staleness_k=3,
                aggregator=agg, hostile_fraction=1 / WORKERS, seed=7,
            )
            for agg in aggs
        }
        honest = _cell(
            steps=STEPS, workers=WORKERS, staleness_k=3,
            aggregator="trimmed_mean", hostile_fraction=0.0, seed=7,
        )
        return baseline, honest, hostile

    baseline, honest, hostile = run_once(benchmark, grid)
    report.title(
        "ablation_staleness",
        "Ablation: bounded-staleness async vs hostile workers "
        f"({WORKERS} workers, {STEPS} steps, f=1 sign-flip x{SCALE:.0f})",
    )
    report.row(
        "sync baseline (fault-free)",
        "converges (Sec. II)",
        f"auc {baseline['auc']:.3f}  logloss {baseline['logloss']:.3f}",
    )
    report.row(
        "honest async, trimmed_mean",
        "within sync envelope",
        f"auc {honest.metrics['auc']:.3f}  "
        f"logloss {honest.metrics['logloss']:.3f}",
    )
    for agg in aggs:
        run = hostile[agg]
        note = "defense off" if agg == "mean" else "defense on"
        report.row(
            f"hostile async, {agg}",
            "survives" if agg != "mean" else "diverges",
            f"auc {run.metrics['auc']:.3f}  "
            f"logloss {run.metrics['logloss']:.3f}",
            note,
        )
    # The defense earns its keep: robust folds hold the envelope, plain
    # mean under the identical injection does not.
    assert honest.metrics["auc"] >= baseline["auc"] - 0.03
    for agg in ("trimmed_mean", "median"):
        assert hostile[agg].metrics["auc"] >= hostile["mean"].metrics["auc"] + 0.08


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    problems = []
    if not 0.0 <= metrics["auc"] <= 1.0:
        problems.append(f"auc {metrics['auc']} out of range")
    byzantine = round(params["hostile_fraction"] * params["workers"])
    defended = params["aggregator"] in ("trimmed_mean", "median", "krum")
    tolerated = params["workers"] >= 3 * byzantine + 2
    if defended and tolerated and params["steps"] >= 120:
        if metrics["auc"] < 0.65:
            problems.append(
                f"robust aggregation lost convergence (auc {metrics['auc']:.3f})"
            )
    if byzantine and metrics["byzantine_pushes"] == 0:
        problems.append("hostile fraction set but no Byzantine push injected")
    return problems


@register(
    "ablation_staleness",
    params=[
        Param("staleness_k", "int", 3, help="PS-side staleness bound k"),
        Param(
            "aggregator", "str", "trimmed_mean",
            choices=("mean", "trimmed_mean", "median", "krum"),
            help="robust gradient fold at the PS",
        ),
        Param(
            "hostile_fraction", "float", 0.0,
            help="fraction of workers turned Byzantine (sign-flip)",
        ),
        Param("workers", "int", WORKERS),
        Param("steps", "int", STEPS),
        Param("seed", "int", 7),
    ],
    smoke={"steps": 120},
    headline={
        "auc": Headline(direction="higher", max_regression=0.05, noise=0.01),
        "logloss": Headline(direction="lower", max_regression=0.10, noise=0.01),
    },
    check=_check,
)
def entry(*, staleness_k, aggregator, hostile_fraction, workers, steps, seed):
    """Held-out AUC / log-loss of one bounded-staleness async cell."""
    run = _cell(
        steps=steps,
        workers=workers,
        staleness_k=staleness_k,
        aggregator=aggregator,
        hostile_fraction=hostile_fraction,
        seed=seed,
    )
    pulls_rejected = sum(node.staleness.rejected for node in run.server.nodes)
    folds = sum(
        node.aggregation.stats.folds
        for node in run.server.nodes
        if node.aggregation is not None
    )
    return {
        "auc": run.metrics["auc"],
        "logloss": run.metrics["logloss"],
        "byzantine_pushes": run.stats.byzantine_pushes,
        "duplicate_pushes": run.stats.duplicate_pushes,
        "pulls_rejected": pulls_rejected,
        "aggregator_folds": folds,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("ablation_staleness"))
