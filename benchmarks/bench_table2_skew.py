"""Table II: access-pattern skew of the DLRM workload.

Generates the synthetic workload trace and reports what share of
accesses the hottest 0.05 % / 0.1 % / 1 % of the key space receives —
the paper's 85.7 % / 89.5 % / 95.7 %.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once
from repro.bench import Headline, Param, register
from repro.simulation.profiles import DEFAULT_PROFILE
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import AccessTraceAnalyzer

PAPER = {0.0005: 0.857, 0.001: 0.895, 0.01: 0.957}


def test_table2_access_skew(benchmark, report):
    profile = DEFAULT_PROFILE

    def run():
        generator = WorkloadGenerator(profile.workload_config())
        stream = generator.access_stream(num_batches=200, batch_size=256)
        analyzer = AccessTraceAnalyzer(stream)
        return analyzer.skew_report(
            key_fractions=tuple(PAPER), of_keyspace=profile.num_keys
        )

    skew = run_once(benchmark, run)
    report.title("table2_skew", "Table II: share of accesses to top entries")
    report.line(f"  trace: {skew.total_accesses} accesses, "
                f"{skew.distinct_keys} distinct of {profile.num_keys} keys")
    for fraction, paper_share in PAPER.items():
        measured = skew.top_shares[fraction]
        report.row(
            f"top {fraction:.2%} of entries",
            f"{paper_share:.1%}",
            f"{measured:.1%}",
        )
        assert abs(measured - paper_share) < 0.02


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    if not metrics["top_1pct_share"] > metrics["top_01pct_share"] > 0.5:
        return ["skew shares lost their ordering or collapsed below 50%"]
    return []


@register(
    "table2_skew",
    params=[
        Param("batches", "int", 200),
        Param("batch_size", "int", 256),
    ],
    smoke={"batches": 80},
    headline={
        "top_1pct_share": Headline(direction="higher", max_regression=0.05),
        "top_01pct_share": Headline(direction="higher", max_regression=0.05),
    },
    check=_check,
)
def entry(*, batches, batch_size):
    """Share of accesses landing on the hottest 0.05%/0.1%/1% of the
    keyspace in the synthetic DLRM trace."""
    generator = WorkloadGenerator(DEFAULT_PROFILE.workload_config())
    stream = generator.access_stream(num_batches=batches, batch_size=batch_size)
    analyzer = AccessTraceAnalyzer(stream)
    skew = analyzer.skew_report(
        key_fractions=(0.0005, 0.001, 0.01), of_keyspace=DEFAULT_PROFILE.num_keys
    )
    return {
        "top_005pct_share": skew.top_shares[0.0005],
        "top_01pct_share": skew.top_shares[0.001],
        "top_1pct_share": skew.top_shares[0.01],
        "distinct_keys": skew.distinct_keys,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("table2_skew"))
