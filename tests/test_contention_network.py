"""Contention helpers and the network model."""

import pytest

from repro.config import NetworkConfig
from repro.errors import SimulationError
from repro.simulation.contention import (
    parallel_section_time,
    serialized_section_time,
    shared_bandwidth_time,
)
from repro.simulation.network import NetworkModel


class TestSerializedSection:
    def test_base_is_ops_times_section(self):
        assert serialized_section_time(10, 2.0) == pytest.approx(20.0)

    def test_contention_surcharge(self):
        base = serialized_section_time(10, 2.0, contenders=1, contention_factor=0.5)
        contended = serialized_section_time(10, 2.0, contenders=5, contention_factor=0.5)
        assert contended == pytest.approx(base * (1 + 0.5 * 4))

    def test_zero_ops_free(self):
        assert serialized_section_time(0, 2.0, contenders=8, contention_factor=1.0) == 0.0

    def test_more_contenders_never_cheaper(self):
        times = [
            serialized_section_time(100, 1e-6, contenders=c, contention_factor=0.2)
            for c in (1, 2, 4, 8, 16)
        ]
        assert times == sorted(times)

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            serialized_section_time(-1, 1.0)
        with pytest.raises(SimulationError):
            serialized_section_time(1, -1.0)
        with pytest.raises(SimulationError):
            serialized_section_time(1, 1.0, contenders=0)


class TestParallelSection:
    def test_divides_over_threads(self):
        assert parallel_section_time(100, 1.0, 10) == pytest.approx(10.0)

    def test_ceil_division(self):
        assert parallel_section_time(11, 1.0, 10) == pytest.approx(2.0)

    def test_single_thread_serializes(self):
        assert parallel_section_time(7, 2.0, 1) == pytest.approx(14.0)


class TestSharedBandwidth:
    def test_full_share(self):
        assert shared_bandwidth_time(100, 50.0) == pytest.approx(2.0)

    def test_split_share(self):
        assert shared_bandwidth_time(100, 50.0, streams=2) == pytest.approx(4.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(SimulationError):
            shared_bandwidth_time(1, 0.0)


class TestNetworkModel:
    def test_transfer_latency_plus_bytes(self):
        net = NetworkModel(NetworkConfig(bandwidth_bytes_per_s=1e6, rpc_latency_s=1e-3))
        assert net.transfer_time(1_000_000) == pytest.approx(1e-3 + 1.0)

    def test_concurrent_flows_share_link(self):
        net = NetworkModel(NetworkConfig(bandwidth_bytes_per_s=1e6, rpc_latency_s=0.0))
        assert net.transfer_time(1000, concurrent_flows=4) == pytest.approx(0.004)

    def test_burst_completion_is_total_bytes(self):
        net = NetworkModel(NetworkConfig(bandwidth_bytes_per_s=1e6, rpc_latency_s=0.0))
        assert net.burst_transfer_time(8, 1000) == pytest.approx(0.008)

    def test_burst_zero_flows_free(self):
        net = NetworkModel()
        assert net.burst_transfer_time(0, 1000) == 0.0

    def test_counters(self):
        net = NetworkModel()
        net.transfer_time(100)
        net.burst_transfer_time(3, 10)
        assert net.bytes_sent == 130
        assert net.messages == 4
        net.reset_counters()
        assert net.bytes_sent == 0

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            NetworkModel().transfer_time(-1)
