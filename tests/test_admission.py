"""Count-min sketch and the frequency admission filter."""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.admission import CountMinSketch, FrequencyAdmission
from repro.core.entry import Location
from repro.core.ps_node import PSNode
from repro.errors import ConfigError

DIM = 4


class TestCountMinSketch:
    def test_never_undercounts(self):
        sketch = CountMinSketch(width=64, depth=4)
        for key in range(200):
            sketch.add(key)
        sketch.add(42, count=5)
        assert sketch.estimate(42) >= 6

    def test_unseen_key_low_estimate(self):
        sketch = CountMinSketch(width=4096, depth=4)
        for key in range(100):
            sketch.add(key)
        assert sketch.estimate(999_999) <= 1  # collisions only

    def test_halve_ages_counters(self):
        sketch = CountMinSketch()
        sketch.add(1, count=8)
        sketch.halve()
        assert sketch.estimate(1) == 4

    def test_invalid_sizing(self):
        with pytest.raises(ConfigError):
            CountMinSketch(width=0)


class TestFrequencyAdmission:
    def test_threshold_zero_admits_everything(self):
        admission = FrequencyAdmission(threshold=0)
        assert all(admission.should_admit(k) for k in range(10))
        assert admission.bypass_rate == 0.0

    def test_cold_key_bypassed_then_admitted(self):
        admission = FrequencyAdmission(threshold=2)
        assert not admission.should_admit(7)  # seen once
        assert not admission.should_admit(7)  # seen twice
        assert admission.should_admit(7)  # estimate 3 > 2
        assert admission.bypassed == 2
        assert admission.admitted == 1

    def test_one_hit_wonders_never_admitted(self):
        admission = FrequencyAdmission(threshold=1, sketch_width=1 << 14)
        bypassed = sum(0 if admission.should_admit(k) else 1 for k in range(500))
        assert bypassed == 500

    def test_invalid_threshold(self):
        with pytest.raises(ConfigError):
            FrequencyAdmission(threshold=-1)


class TestCacheIntegration:
    def _node(self, threshold):
        return PSNode(
            0,
            ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=1),
            CacheConfig(
                capacity_bytes=4 * DIM * 4, admission_threshold=threshold
            ),
        )

    def _cycle(self, node, keys, batch):
        node.pull(keys, batch)
        node.maintain(batch)
        node.push(keys, np.full((len(keys), DIM), 0.1, dtype=np.float32), batch)

    def test_cold_miss_not_promoted(self):
        node = self._node(threshold=2)
        self._cycle(node, [1], 0)
        node.cache.drop_cache()  # push 1 to PMem
        self._cycle(node, [1], 1)  # miss, seen once -> bypassed
        assert node.cache.index.location_of(1) == Location.PMEM

    def test_hot_miss_promoted_after_threshold(self):
        node = self._node(threshold=2)
        self._cycle(node, [1], 0)
        node.cache.drop_cache()
        for batch in (1, 2, 3):
            self._cycle(node, [1], batch)
        assert node.cache.index.location_of(1) == Location.DRAM

    def test_bypassed_updates_still_apply(self):
        """Updates to unpromoted entries RMW through the store."""
        node = self._node(threshold=5)
        self._cycle(node, [1], 0)
        before = node.read_weights(1).copy()
        node.cache.drop_cache()
        self._cycle(node, [1], 1)  # bypassed but updated
        after = node.read_weights(1)
        assert not np.array_equal(before, after)

    def test_admission_is_semantics_free(self):
        """Filtered and unfiltered nodes train identical weights."""
        plain = self._node(threshold=0)
        filtered = self._node(threshold=2)
        rng = np.random.default_rng(3)
        for batch in range(10):
            keys = sorted(rng.choice(20, size=4, replace=False).tolist())
            grads = rng.normal(0, 0.1, (4, DIM)).astype(np.float32)
            for node in (plain, filtered):
                node.pull(keys, batch)
                node.maintain(batch)
                node.push(keys, grads, batch)
        a, b = plain.state_snapshot(), filtered.state_snapshot()
        assert set(a) == set(b)
        for key in a:
            assert np.array_equal(a[key], b[key])

    def test_checkpoint_recovery_with_admission(self):
        node = self._node(threshold=2)
        keys = list(range(8))
        self._cycle(node, keys, 0)
        node.barrier_checkpoint()
        expected = node.state_snapshot()
        self._cycle(node, keys, 1)
        pool = node.crash()
        from repro.core.recovery import recover_node

        recovered, report = recover_node(
            pool, node.server_config, node.cache_config
        )
        assert report.checkpoint_batch_id == 0
        got = recovered.state_snapshot()
        for key in expected:
            assert np.array_equal(got[key], expected[key])

    def test_filter_reduces_cache_churn(self):
        """Under a scan-heavy stream the filter cuts loads/evictions.

        Scan keys must already live in PMem (creations go to DRAM per
        Algorithm 1 regardless of the filter), so the key space is
        materialised and demoted first.
        """
        plain = self._node(threshold=0)
        filtered = self._node(threshold=1)
        hot = [1, 2]
        scan_keys = list(range(100, 140))
        for node in (plain, filtered):
            self._cycle(node, hot + scan_keys, 0)
            node.cache.drop_cache()
        for step, scan_key in enumerate(scan_keys):
            keys = hot + [scan_key]  # one-hit wonder per batch
            for node in (plain, filtered):
                self._cycle(node, keys, step + 1)
        assert filtered.metrics.cache.loads < plain.metrics.cache.loads
        assert filtered.metrics.cache.evictions < plain.metrics.cache.evictions
        # The filter's bookkeeping says it actually bypassed the scans.
        assert filtered.cache.admission.bypassed >= len(scan_keys)
