"""Multi-table embedding collections.

Real DLRMs keep several embedding tables of different dimensions (e.g.
DeepFM's dim-1 first-order weights next to its dim-64 feature vectors;
per-field tables in other models). A :class:`EmbeddingCollection`
manages one OpenEmbedding deployment per table and coordinates
cluster-wide, cross-table batch-consistent checkpoints: a collection
checkpoint of batch ``b`` is durable only when EVERY table completed
``b``, and recovery restores every table to the same batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSOptimizer
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.embedding import PSEmbedding
from repro.errors import ConfigError, RecoveryError
from repro.pmem.space import CHECKPOINT_ID_FIELD, NO_CHECKPOINT


@dataclass(frozen=True)
class TableSpec:
    """Declaration of one embedding table.

    Attributes:
        dim: embedding dimension.
        num_nodes: PS shards for this table.
        cache: DRAM cache config per shard.
        optimizer: PS-side update rule (None = server default SGD).
        pmem_capacity_bytes: pool size per shard.
        seed: initialisation seed.
    """

    dim: int
    num_nodes: int = 1
    cache: CacheConfig = field(default_factory=lambda: CacheConfig(capacity_bytes=1 << 20))
    optimizer: PSOptimizer | None = None
    pmem_capacity_bytes: int = 1 << 30
    seed: int = 0

    def server_config(self) -> ServerConfig:
        return ServerConfig(
            num_nodes=self.num_nodes,
            embedding_dim=self.dim,
            pmem_capacity_bytes=self.pmem_capacity_bytes,
            seed=self.seed,
        )


class EmbeddingCollection:
    """Named embedding tables with coordinated checkpointing."""

    def __init__(self, tables: dict[str, TableSpec]):
        if not tables:
            raise ConfigError("collection needs at least one table")
        self.specs = dict(tables)
        # Every table is one member of a wider consistency scope, so
        # even single-shard tables need cluster retention semantics.
        self.servers: dict[str, OpenEmbeddingServer] = {
            name: OpenEmbeddingServer(
                spec.server_config(), spec.cache, spec.optimizer, cluster_mode=True
            )
            for name, spec in self.specs.items()
        }
        self.embeddings: dict[str, PSEmbedding] = {
            name: PSEmbedding(server, self.specs[name].dim)
            for name, server in self.servers.items()
        }

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def pull(self, table: str, key_matrix: np.ndarray, batch_id: int) -> np.ndarray:
        """(batch, fields, dim) embeddings from ``table``."""
        return self._embedding(table).pull(key_matrix, batch_id)

    def push(
        self, table: str, key_matrix: np.ndarray, grads: np.ndarray, batch_id: int
    ) -> int:
        return self._embedding(table).push(key_matrix, grads, batch_id)

    def maintain(self, batch_id: int) -> None:
        """Run every table's maintenance round for ``batch_id``."""
        for server in self.servers.values():
            server.maintain(batch_id)
        self._sync_collection_barriers()

    # ------------------------------------------------------------------
    # coordinated checkpoints
    # ------------------------------------------------------------------

    def request_checkpoint(self, batch_id: int) -> int:
        """Queue the same checkpoint batch on every table."""
        for server in self.servers.values():
            server.request_checkpoint(batch_id)
        return batch_id

    def barrier_checkpoint(self, batch_id: int) -> int:
        """Checkpoint every table and force completion everywhere."""
        self.request_checkpoint(batch_id)
        for server in self.servers.values():
            server.complete_pending_checkpoints()
        self._sync_collection_barriers()
        return batch_id

    def _sync_collection_barriers(self) -> None:
        """Retention must cover the COLLECTION-wide completed checkpoint.

        A table that completed a newer checkpoint than its siblings must
        keep the versions of the collection minimum, or a crash would
        leave no batch every table can restore. Runs after each server's
        own (per-table) barrier sync, overriding it with the smaller
        collection-wide id.
        """
        global_ckpt = self.global_completed_checkpoint
        barrier = None if global_ckpt < 0 else global_ckpt
        for server in self.servers.values():
            for node in server.nodes:
                node.coordinator.set_external_barrier(barrier)

    @property
    def global_completed_checkpoint(self) -> int:
        """Newest checkpoint completed by EVERY table (-1 if none)."""
        return min(
            server.global_completed_checkpoint for server in self.servers.values()
        )

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> dict[str, list]:
        """Kill every table's cluster; per-table pools survive."""
        return {name: server.crash() for name, server in self.servers.items()}

    @classmethod
    def recover(
        cls, pools: dict[str, list], tables: dict[str, TableSpec]
    ) -> "EmbeddingCollection":
        """Rebuild every table to the newest collection-wide checkpoint.

        Raises:
            RecoveryError: table sets differ, or the tables cannot agree
                on a common checkpoint.
        """
        if set(pools) != set(tables):
            raise RecoveryError(
                f"pool tables {sorted(pools)} != specs {sorted(tables)}"
            )
        target = min(
            pool.root.get(CHECKPOINT_ID_FIELD, NO_CHECKPOINT)
            for table_pools in pools.values()
            for pool in table_pools
        )
        if target < 0:
            raise RecoveryError("some table has no completed checkpoint")
        collection = cls.__new__(cls)
        collection.specs = dict(tables)
        servers: dict[str, OpenEmbeddingServer] = {}
        for name, spec in tables.items():
            server, __ = OpenEmbeddingServer.recover(
                pools[name],
                spec.server_config(),
                spec.cache,
                spec.optimizer,
                target_batch_id=target,
                cluster_mode=True,
            )
            servers[name] = server
        collection.servers = servers
        collection.embeddings = {
            name: PSEmbedding(server, tables[name].dim)
            for name, server in servers.items()
        }
        return collection

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def table_names(self) -> list[str]:
        return sorted(self.specs)

    def state_snapshot(self) -> dict[str, dict[int, np.ndarray]]:
        return {name: server.state_snapshot() for name, server in self.servers.items()}

    def _embedding(self, table: str) -> PSEmbedding:
        if table not in self.embeddings:
            raise KeyError(f"unknown table {table!r}; have {self.table_names()}")
        return self.embeddings[table]
