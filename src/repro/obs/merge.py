"""Merge per-node Chrome traces into one causally-linked timeline.

Each node in a distributed run writes its own ``repro-trace-v1`` file
(client, shard services, ...), all stamped from the same simulated
clock. :func:`merge_traces` folds them into a single Chrome trace with
one process (pid) per source file, then draws **flow events** from
every client ``rpc.attempt`` span to the server-side span it caused:
the client attempt exports ``args.trace_id``/``args.span_id``, the
wire carries the same pair as a
:class:`~repro.network.messages.TraceContext`, and the server handler
stamps them onto its span as ``trace_id``/``parent_span_id``. Opened
in Perfetto, one pull reads as client queue → retry/backoff attempts →
wire → shard service → cache tier, with arrows across process tracks —
including re-routed attempts after a replica promotion.

The merged file carries ``otherData.schema = "repro-trace-merged-v1"``
and is validated by ``scripts/check_obs_export.py --merged``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError

MERGED_TRACE_SCHEMA = "repro-trace-merged-v1"

FLOW_NAME = "rpc.flow"
FLOW_CAT = "flow"


def merge_traces(traces: list[dict], names: list[str] | None = None) -> dict:
    """Merge Chrome-trace dicts; returns the merged trace dict.

    Args:
        traces: parsed Chrome trace JSON objects (``repro-trace-v1``
            shaped; tolerant of missing ``otherData``).
        names: process name per input; defaults to ``node<i>``.
    """
    if not traces:
        raise ConfigError("nothing to merge: no traces given")
    if names is not None and len(names) != len(traces):
        raise ConfigError(
            f"{len(traces)} traces but {len(names)} names"
        )
    names = names or [f"node{i}" for i in range(len(traces))]

    events: list[dict] = []
    # (trace_id, span_id) -> client attempt event, for flow starts.
    client_attempts: dict[tuple[int, int], dict] = {}
    server_events: list[dict] = []
    dropped = 0

    for pid, (trace, name) in enumerate(zip(traces, names)):
        dropped += int((trace.get("otherData") or {}).get("dropped_events", 0))
        saw_process_name = False
        for event in trace.get("traceEvents", []):
            event = dict(event)
            event["pid"] = pid
            if event.get("ph") == "M" and event.get("name") == "process_name":
                event["args"] = {"name": name}
                saw_process_name = True
            events.append(event)
            args = event.get("args") or {}
            if event.get("ph") == "X" and "trace_id" in args:
                if "parent_span_id" in args:
                    server_events.append(event)
                elif "span_id" in args:
                    client_attempts[(args["trace_id"], args["span_id"])] = event
        if not saw_process_name:
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )

    flows = 0
    for server_event in server_events:
        args = server_event["args"]
        key = (args["trace_id"], args["parent_span_id"])
        client_event = client_attempts.get(key)
        if client_event is None:
            continue
        flow_id = f"{key[0]:x}.{key[1]:x}"
        events.append(
            {
                "ph": "s",
                "id": flow_id,
                "name": FLOW_NAME,
                "cat": FLOW_CAT,
                "pid": client_event["pid"],
                "tid": client_event["tid"],
                "ts": client_event["ts"],
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "name": FLOW_NAME,
                "cat": FLOW_CAT,
                "pid": server_event["pid"],
                "tid": server_event["tid"],
                "ts": server_event["ts"],
            }
        )
        flows += 1

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": MERGED_TRACE_SCHEMA,
            "sources": list(names),
            "flows": flows,
            "dropped_events": dropped,
        },
    }


def merge_trace_files(paths: list[str | Path], out: str | Path | None = None) -> dict:
    """Load, merge, and optionally write trace files (CLI backend).

    Process names are the file stems (deduplicated with a numeric
    suffix when two files share one).
    """
    traces = []
    names: list[str] = []
    for path in paths:
        path = Path(path)
        traces.append(json.loads(path.read_text()))
        stem = path.stem
        name = stem
        n = 2
        while name in names:
            name = f"{stem}-{n}"
            n += 1
        names.append(name)
    merged = merge_traces(traces, names)
    if out is not None:
        Path(out).write_text(json.dumps(merged))
    return merged


def summarize_trace(trace: dict) -> str:
    """Human-readable summary of a (merged or single) Chrome trace."""
    events = trace.get("traceEvents", [])
    other = trace.get("otherData") or {}
    process_names: dict[int, str] = {}
    span_stats: dict[tuple[int, str], tuple[int, float]] = {}
    flows = 0
    instants = 0
    for event in events:
        ph = event.get("ph")
        if ph == "M" and event.get("name") == "process_name":
            process_names[event.get("pid", 0)] = event["args"]["name"]
        elif ph == "X":
            key = (event.get("pid", 0), event["name"])
            count, total = span_stats.get(key, (0, 0.0))
            span_stats[key] = (count + 1, total + event.get("dur", 0.0))
        elif ph == "i":
            instants += 1
        elif ph == "s":
            flows += 1
    lines = [
        f"schema: {other.get('schema', '?')}   events: {len(events)}   "
        f"flows: {flows}   instants: {instants}"
    ]
    for pid in sorted(set(pid for pid, _ in span_stats) | set(process_names)):
        lines.append(f"\n[{process_names.get(pid, f'pid {pid}')}]")
        rows = sorted(
            ((name, c, t) for (p, name), (c, t) in span_stats.items() if p == pid),
            key=lambda row: -row[2],
        )
        for name, count, total_us in rows[:12]:
            lines.append(f"  {name:<28} x{count:<6} {total_us / 1e3:10.3f} ms")
        if len(rows) > 12:
            lines.append(f"  ... and {len(rows) - 12} more span names")
    return "\n".join(lines)
