"""Figure 9: individual improvement of cache and pipeline (16 GPUs).

Four PMem-OE configurations (2 GB-equivalent cache where enabled):
both disabled / cache only / pipeline only / both enabled. Paper:
cache alone cuts 42.1 % of training time, the pipeline on top of the
cache cuts another 54.9 %, and together they remove 73.9 %.
"""

from benchmarks.conftest import run_once, simulate_epoch
from repro.simulation.cluster import SystemKind

PAPER_CACHE_ONLY = 1 - 0.421  # 0.579 of the all-disabled time
PAPER_BOTH = 1 - 0.739  # 0.261


def test_fig9_cache_pipeline_ablation(benchmark, report):
    def run():
        return {
            "none": simulate_epoch(
                SystemKind.PMEM_OE, 16, use_cache=False, pipelined=False
            ).sim_seconds,
            "cache_only": simulate_epoch(
                SystemKind.PMEM_OE, 16, use_cache=True, pipelined=False
            ).sim_seconds,
            "pipeline_only": simulate_epoch(
                SystemKind.PMEM_OE, 16, use_cache=False, pipelined=True
            ).sim_seconds,
            "both": simulate_epoch(
                SystemKind.PMEM_OE, 16, use_cache=True, pipelined=True
            ).sim_seconds,
        }

    times = run_once(benchmark, run)
    base = times["none"]
    report.title("fig9_ablation", "Figure 9: cache x pipeline ablation (norm. to both-off)")
    report.row("cache + pipeline disabled", "1.000", "1.000")
    report.row("cache only", f"{PAPER_CACHE_ONLY:.3f}", f"{times['cache_only'] / base:.3f}")
    report.row("pipeline only", "(not quoted)", f"{times['pipeline_only'] / base:.3f}")
    report.row("cache + pipeline", f"{PAPER_BOTH:.3f}", f"{times['both'] / base:.3f}")
    cache_cut = 1 - times["cache_only"] / base
    pipeline_cut = 1 - times["both"] / times["cache_only"]
    total_cut = 1 - times["both"] / base
    report.line()
    report.row("reduction from cache", "42.1%", f"{cache_cut:.1%}")
    report.row("reduction from pipeline", "54.9%", f"{pipeline_cut:.1%}")
    report.row("combined reduction", "73.9%", f"{total_cut:.1%}")

    assert times["both"] < times["cache_only"] < base
    assert times["both"] < times["pipeline_only"] < base
    assert 0.2 < cache_cut < 0.6
    assert 0.3 < pipeline_cut < 0.7
    assert 0.55 < total_cut < 0.85
