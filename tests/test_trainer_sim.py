"""TrainingSimulator: end-to-end simulated epochs (small scale)."""

import pytest

from repro.config import (
    CacheConfig,
    CheckpointConfig,
    CheckpointMode,
    ClusterConfig,
    NetworkConfig,
    ServerConfig,
    WorkloadConfig,
)
from repro.errors import ConfigError
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator
from repro.workload.generator import WorkloadGenerator

NUM_KEYS = 20_000
DIM = 16


def make_sim(system, workers=4, ckpt=None, cache_entries=200, **kwargs):
    server = ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 26)
    cache = CacheConfig(capacity_bytes=cache_entries * DIM * 4)
    cluster = ClusterConfig(
        num_workers=workers,
        batch_size=32,
        network=NetworkConfig(bandwidth_bytes_per_s=60e6),
    )
    workload = WorkloadGenerator(
        WorkloadConfig(num_keys=NUM_KEYS, features_per_sample=4, seed=1)
    )
    return TrainingSimulator(
        system, cluster, server, cache, ckpt or CheckpointConfig.none(), workload,
        **kwargs,
    )


class TestBasics:
    def test_run_advances_clock(self):
        sim = make_sim(SystemKind.PMEM_OE)
        result = sim.run(10)
        assert result.sim_seconds > 0
        assert result.iterations == 10
        assert result.total_requests > 0

    def test_miss_rate_in_range(self):
        result = make_sim(SystemKind.PMEM_OE).run(20)
        assert 0.0 <= result.miss_rate <= 1.0

    def test_dram_ps_never_misses(self):
        result = make_sim(SystemKind.DRAM_PS).run(10)
        assert result.miss_rate == 0.0

    def test_invalid_iterations(self):
        with pytest.raises(ConfigError):
            make_sim(SystemKind.PMEM_OE).run(0)

    def test_batch_aware_requires_pmem_oe(self):
        with pytest.raises(ConfigError):
            make_sim(
                SystemKind.DRAM_PS,
                ckpt=CheckpointConfig(CheckpointMode.BATCH_AWARE, 1.0),
            )

    def test_phase_totals_consistent(self):
        result = make_sim(SystemKind.PMEM_OE).run(10)
        reconstructed = (
            result.net_seconds
            + result.pull_service_seconds
            + result.push_service_seconds
            + result.maintain_inline_seconds
        )
        # gpu and deferred overlap, so total >= parts without them.
        assert result.sim_seconds >= reconstructed


class TestSystemComparisons:
    def test_pmem_oe_close_to_dram_ps(self):
        dram = make_sim(SystemKind.DRAM_PS).run(30).sim_seconds
        oe = make_sim(SystemKind.PMEM_OE).run(30).sim_seconds
        assert dram <= oe < dram * 1.35

    def test_ori_cache_slower_than_oe(self):
        oe = make_sim(SystemKind.PMEM_OE).run(30).sim_seconds
        ori = make_sim(SystemKind.ORI_CACHE).run(30).sim_seconds
        assert ori > oe

    def test_pmem_hash_slowest(self):
        ori = make_sim(SystemKind.ORI_CACHE).run(30).sim_seconds
        ph = make_sim(SystemKind.PMEM_HASH).run(30).sim_seconds
        assert ph > ori

    def test_bigger_cache_not_slower(self):
        small = make_sim(SystemKind.PMEM_OE, cache_entries=20).run(30)
        large = make_sim(SystemKind.PMEM_OE, cache_entries=2000).run(30)
        assert large.miss_rate < small.miss_rate
        assert large.sim_seconds <= small.sim_seconds


class TestCheckpointing:
    def _epoch(self, ckpt=None):
        return make_sim(SystemKind.PMEM_OE, ckpt=ckpt).run(40)

    def test_batch_aware_near_zero_overhead(self):
        base = self._epoch()
        interval = base.sim_seconds / 4
        with_ckpt = self._epoch(
            CheckpointConfig(CheckpointMode.SPARSE_ONLY, interval, include_dense=False)
        )
        assert with_ckpt.checkpoints_completed >= 3
        overhead = with_ckpt.sim_seconds / base.sim_seconds - 1
        assert overhead < 0.02

    def test_incremental_costs_more_than_batch_aware(self):
        base = self._epoch()
        interval = base.sim_seconds / 4
        batch_aware = self._epoch(
            CheckpointConfig(CheckpointMode.BATCH_AWARE, interval)
        )
        incremental = self._epoch(
            CheckpointConfig(CheckpointMode.INCREMENTAL, interval)
        )
        assert incremental.sim_seconds > batch_aware.sim_seconds
        assert incremental.checkpoint_pause_seconds > 0

    def test_interval_scaling_helper(self):
        interval = TrainingSimulator.interval_for_epoch_fraction(100.0, 20, 5.0)
        assert interval == pytest.approx(100.0 * (20 / 60) / 5.0)
        with pytest.raises(ConfigError):
            TrainingSimulator.interval_for_epoch_fraction(0, 20, 5)


class TestTrace:
    def test_figure2_pattern(self):
        """Pulls and updates appear in equal-sized paired bursts."""
        sim = make_sim(SystemKind.PMEM_OE, record_trace=True)
        result = sim.run(5)
        totals = result.trace.totals()
        assert totals["pull"] == totals["update"] == result.total_requests
        # Bursts are instants: few distinct milliseconds carry traffic.
        buckets = result.trace.per_millisecond()
        assert len(buckets) <= 2 * 5

    def test_trace_disabled_by_default(self):
        result = make_sim(SystemKind.PMEM_OE).run(3)
        assert result.trace is None


class TestPrefetch:
    """Satellite: simulated lookahead prefetch hides PS latency."""

    def _run(self, lookahead, iters=60, **kwargs):
        from repro.config import PrefetchConfig

        prefetch = (
            PrefetchConfig(lookahead=lookahead) if lookahead is not None else None
        )
        sim = make_sim(SystemKind.PMEM_OE, prefetch=prefetch, **kwargs)
        return sim.run(iters)

    @staticmethod
    def _run_profile(lookahead, iters=80, workers=16):
        """The paper-scale operating point, where pulls are a real cost."""
        from repro.config import PrefetchConfig
        from repro.simulation.profiles import DEFAULT_PROFILE as profile

        sim = TrainingSimulator(
            SystemKind.PMEM_OE,
            profile.cluster_config(workers),
            profile.server_config(),
            profile.cache_config(),
            CheckpointConfig.none(),
            WorkloadGenerator(profile.workload_config()),
            prefetch=PrefetchConfig(lookahead=lookahead),
        )
        return sim.run(iters)

    def test_prefetch_hides_pull_latency(self):
        """Acceptance floor: >= 1.3x simulated throughput at lookahead 2
        on the default Zipfian workload."""
        base = self._run_profile(0)
        pipelined = self._run_profile(2)
        assert pipelined.prefetch_requests > 0
        assert pipelined.prefetch_overlapped_seconds > 0
        # lookahead collapses the critical-path demand pulls ...
        assert pipelined.total_requests < base.total_requests / 10
        # ... which translates into end-to-end simulated speedup.
        speedup = base.sim_seconds / pipelined.sim_seconds
        assert speedup >= 1.3

    def test_lookahead_zero_matches_baseline(self):
        base = self._run(None)
        serial = self._run(0)
        assert serial.sim_seconds == pytest.approx(base.sim_seconds)
        assert serial.prefetch_requests == 0

    def test_prefetch_requires_pmem_oe(self):
        from repro.config import PrefetchConfig

        with pytest.raises(ConfigError, match="prefetch"):
            make_sim(SystemKind.DRAM_PS, prefetch=PrefetchConfig(lookahead=2))

    def test_prefetch_requires_cache(self):
        from repro.config import PrefetchConfig

        with pytest.raises(ConfigError, match="prefetch"):
            make_sim(
                SystemKind.PMEM_OE,
                prefetch=PrefetchConfig(lookahead=2),
                use_cache=False,
            )

    def test_prefetch_requires_pipelined_cache(self):
        from repro.config import PrefetchConfig

        server = ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 26)
        cache = CacheConfig(capacity_bytes=200 * DIM * 4, pipelined=False)
        cluster = ClusterConfig(
            num_workers=4,
            batch_size=32,
            network=NetworkConfig(bandwidth_bytes_per_s=60e6),
        )
        workload = WorkloadGenerator(
            WorkloadConfig(num_keys=NUM_KEYS, features_per_sample=4, seed=1)
        )
        with pytest.raises(ConfigError, match="prefetch"):
            TrainingSimulator(
                SystemKind.PMEM_OE,
                cluster,
                server,
                cache,
                CheckpointConfig.none(),
                workload,
                prefetch=PrefetchConfig(lookahead=2),
            )

    def test_deeper_lookahead_still_valid(self):
        shallow = self._run(2)
        deep = self._run(6)
        assert deep.prefetch_requests >= shallow.prefetch_requests
        assert deep.iterations == shallow.iterations == 60
