"""Observability: span tracing, latency histograms, metrics export.

The cross-layer measurement surface of the reproduction (see
``docs/OBSERVABILITY.md``):

* :class:`Tracer` — nested, clock-timestamped spans with a
  zero-overhead disabled mode (:data:`NULL_TRACER`).
* :class:`Histogram` — log-bucketed, mergeable latency distributions
  (p50/p95/p99/max).
* :class:`MetricsRegistry` — labeled, mergeable named metrics unifying
  the per-layer stat bundles (:func:`collect_bundle`).
* Exporters — Prometheus text, JSON snapshot, Chrome ``trace_event``
  JSON (open in Perfetto to see the Figure 7 pipeline overlap).
* Distributed tracing — per-node traces merged into one causally
  flow-linked timeline (:func:`merge_traces`, wire context in
  :mod:`repro.network.messages`).
* :class:`FlightRecorder` — bounded postmortem ring dumped on failure
  triggers (declare-dead, promotion, migration abort, soak audit).
* :class:`SLOTracker` — serving objectives with error-budget burn
  rates and a machine-readable ``repro-slo-v1`` verdict.
"""

from repro.obs.exporters import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    render_snapshot,
    to_chrome_trace,
    to_json_snapshot,
    to_prometheus,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.flightrec import FLIGHTREC_SCHEMA, FlightRecorder
from repro.obs.histogram import Histogram
from repro.obs.merge import (
    MERGED_TRACE_SCHEMA,
    merge_trace_files,
    merge_traces,
    summarize_trace,
)
from repro.obs.registry import Counter, Gauge, MetricsRegistry, collect_bundle
from repro.obs.slo import SLO_SCHEMA, Objective, SLOTracker, render_verdict
from repro.obs.tracer import NULL_TRACER, InstantEvent, Span, Tracer

__all__ = [
    "Counter",
    "FLIGHTREC_SCHEMA",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MERGED_TRACE_SCHEMA",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "Objective",
    "SLO_SCHEMA",
    "SLOTracker",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "collect_bundle",
    "merge_trace_files",
    "merge_traces",
    "render_snapshot",
    "render_verdict",
    "summarize_trace",
    "to_chrome_trace",
    "to_json_snapshot",
    "to_prometheus",
    "write_chrome_trace",
    "write_metrics",
]
