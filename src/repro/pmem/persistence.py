"""Durability helpers: transactions and write batches over a pool.

PMDK offers transactional updates (``pmemobj_tx_*``); the incremental
checkpoint baseline and a few tests need the same "all-or-nothing over a
crash" behaviour. :class:`Transaction` stages writes (``flush=False``)
and drains them on successful exit; a crash before the drain loses the
whole batch, which is exactly the atomicity a checkpoint dump needs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PMemError
from repro.pmem.pool import PmemPool


class Transaction:
    """Stage-then-drain write batch with all-or-nothing crash behaviour.

    Usage::

        with Transaction(pool) as tx:
            tx.write(key_a, value_a)
            tx.write(key_b, value_b)
        # both durable here; a crash inside the block loses both

    Committing also writes an optional *commit marker* root field so
    readers can tell whether the batch landed.

    Note: the staging layer is shared pool state, so overlapping
    transactions on one pool are not isolated from each other; the PS
    core serializes checkpoint dumps, matching the paper's single
    checkpoint thread.
    """

    def __init__(self, pool: PmemPool, commit_marker: str | None = None):
        self.pool = pool
        self.commit_marker = commit_marker
        self._writes = 0
        self._committed = False

    def write(
        self, key: object, value: np.ndarray | None, *, nbytes: int | None = None
    ) -> float:
        """Stage one write; durable only after the transaction commits."""
        if self._committed:
            raise PMemError("transaction already committed")
        self._writes += 1
        return self.pool.write(key, value, nbytes=nbytes, flush=False)

    def commit(self) -> int:
        """Drain all staged writes; returns the number of writes."""
        if self._committed:
            raise PMemError("transaction already committed")
        self.pool.drain()
        if self.commit_marker is not None:
            self.pool.root.set(self.commit_marker, 1)
        self._committed = True
        return self._writes

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        # On error the staged writes are simply left un-drained; a
        # subsequent crash (the usual reason for the error) wipes them.


def flush_entries(
    pool: PmemPool,
    entries: dict[object, np.ndarray | None],
    *,
    entry_bytes: int,
) -> float:
    """Durably write a set of entries; returns total simulated seconds.

    Convenience used by baseline checkpoint dumps (DRAM-PS writes its
    whole delta to the checkpoint device in one go).
    """
    total = 0.0
    for key, value in entries.items():
        total += pool.write(key, value, nbytes=entry_bytes, flush=True)
    return total
