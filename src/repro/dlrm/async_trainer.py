"""Asynchronous DLRM training (the paper's contrasted mode).

Section II describes the two synchronization patterns: synchronous
(every worker waits at batch boundaries — the paper's choice, better
convergence) and asynchronous (workers never wait — higher throughput,
staler gradients). This module implements the asynchronous pattern so
the trade-off is observable in this codebase:

* each worker pulls weights, computes gradients, and pushes them
  ``staleness`` scheduler steps later — by which time other workers'
  updates have already landed (the classic stale-gradient effect);
* there is no global batch boundary, so checkpoints taken without
  quiescing are NOT batch-consistent (the asynchronous-checkpoint
  caveat the paper cites when motivating synchronous checkpoints).

The scheduler is deterministic (round-robin), so runs are reproducible
and tests can compare against synchronous training exactly.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.config import PrefetchConfig
from repro.core.backend import TrainBackend, check_backend
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam, DenseOptimizer
from repro.dlrm.prefetch import PrefetchPipeline
from repro.errors import ConfigError
from repro.simulation.clock import SimClock


@dataclass
class _PendingWork:
    """A computed gradient waiting out its staleness delay."""

    worker: int
    step_computed: int
    keys: np.ndarray
    embedding_grads: np.ndarray
    dense_grads: list[np.ndarray]
    loss: float


class AsynchronousTrainer:
    """Round-robin asynchronous training against a shared PS.

    Args:
        backend: the embedding parameter server — anything implementing
            the :class:`~repro.core.backend.TrainBackend` protocol.
            ``server=`` is accepted as a deprecated alias.
        model: the dense DeepFM (no first-order term).
        dataset: deterministic batch source; worker ``w`` consumes the
            global batches ``w, w + W, w + 2W, ...`` — at scheduler
            step ``s`` the computing worker trains global batch ``s``.
        num_workers: concurrent workers.
        batch_size: samples per worker step.
        staleness: scheduler steps between a worker computing gradients
            and those gradients being applied. 0 applies immediately
            (still asynchronous: no cross-worker averaging or barrier).
        dense_optimizer: optimizer for the shared (hogwild-style) MLP.
        prefetch: optional lookahead prefetch configuration; because
            the round-robin schedule is deterministic, future scheduler
            steps' key sets are peekable exactly as in the synchronous
            trainer. In-flight stale pushes invalidate buffered keys,
            so the weights each compute step observes are identical to
            the unprefetched schedule.
        clock: optional simulated clock shared with the backend.
        gpu_batch_time_s: simulated per-step compute the overlap window
            hides PS work behind.
    """

    def __init__(
        self,
        backend: TrainBackend | None = None,
        model: DeepFM | None = None,
        dataset: CriteoSynthetic | None = None,
        num_workers: int = 2,
        batch_size: int = 32,
        staleness: int = 1,
        dense_optimizer: DenseOptimizer | None = None,
        *,
        prefetch: PrefetchConfig | None = None,
        clock: SimClock | None = None,
        gpu_batch_time_s: float = 0.0,
        server: TrainBackend | None = None,
    ):
        if server is not None:
            warnings.warn(
                "AsynchronousTrainer(server=...) is deprecated; "
                "pass backend=... (any TrainBackend)",
                DeprecationWarning,
                stacklevel=2,
            )
            if backend is not None:
                raise ConfigError("pass either backend= or server=, not both")
            backend = server
        if backend is None or model is None or dataset is None:
            raise ConfigError("backend, model and dataset are required")
        if num_workers <= 0 or batch_size <= 0:
            raise ConfigError("num_workers and batch_size must be positive")
        if staleness < 0:
            raise ConfigError("staleness must be non-negative")
        if model.use_first_order:
            raise ConfigError("async trainer supports models without first-order")
        self.backend = check_backend(backend, role="train")
        #: Deprecated alias of :attr:`backend`.
        self.server = self.backend
        self.model = model
        self.dataset = dataset
        self.num_workers = num_workers
        self.batch_size = batch_size
        self.staleness = staleness
        self.dense_optimizer = dense_optimizer or Adam()
        self.step = 0
        self._next_batch_per_worker = list(range(num_workers))
        self._pending: deque[_PendingWork] = deque()
        self.loss_history: list[float] = []
        self.pipeline: PrefetchPipeline | None = None
        if prefetch is not None:
            self.pipeline = PrefetchPipeline(
                backend,
                prefetch,
                model.dim,
                # At scheduler step s the computing worker trains global
                # batch s, so the peek function is the step index itself.
                lambda s: self.dataset.batch(self.batch_size, s).keys,
                clock=clock,
                gpu_batch_time_s=gpu_batch_time_s,
            )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def run_steps(self, steps: int) -> list[float]:
        """Run ``steps`` scheduler steps; returns the losses computed."""
        if self.pipeline is not None:
            self.pipeline.horizon = self.step + steps - 1
        losses = []
        for __ in range(steps):
            losses.extend(self._one_step())
        return losses

    def _one_step(self) -> list[float]:
        """One scheduler step: apply due pushes, then one worker computes."""
        self._apply_due_pushes()
        worker = self.step % self.num_workers
        loss = self._compute(worker)
        self.step += 1
        return [loss]

    def _compute(self, worker: int) -> float:
        batch_index = self._next_batch_per_worker[worker]
        self._next_batch_per_worker[worker] += self.num_workers
        batch = self.dataset.batch(self.batch_size, batch_index)
        if self.pipeline is not None:
            self.pipeline.begin_batch(self.step, batch.keys)
            embeddings = self.pipeline.gather(batch.keys)
            self.pipeline.run_overlap(self.step)
        else:
            flat_keys = batch.keys.reshape(-1).tolist()
            pulled = self.backend.pull(flat_keys, self.step)
            self.backend.maintain(self.step)
            embeddings = pulled.weights.reshape(
                self.batch_size, self.model.num_fields, self.model.dim
            )
        self.model.zero_grad()
        grads = self.model.train_batch(embeddings, batch.labels)
        self._pending.append(
            _PendingWork(
                worker=worker,
                step_computed=self.step,
                keys=batch.keys,
                embedding_grads=grads.embedding_grads,
                dense_grads=[np.array(g, copy=True) for g in self.model.mlp.gradients()],
                loss=grads.loss,
            )
        )
        self.loss_history.append(grads.loss)
        if self.staleness == 0:
            self._apply_due_pushes()
        if self.pipeline is not None:
            self.pipeline.end_batch(self.step)
        return grads.loss

    def _push(self, work: _PendingWork) -> None:
        """Apply one delayed gradient (through the pipeline if present)."""
        flat_keys = work.keys.reshape(-1).tolist()
        flat_grads = work.embedding_grads.reshape(-1, self.model.dim)
        if self.pipeline is not None:
            # Routing through the pipeline invalidates buffered copies
            # of the touched keys — the staleness invariant for the
            # async flow, where pushes land mid-schedule.
            self.pipeline.push(flat_keys, flat_grads, self.step)
        else:
            self.backend.push(flat_keys, flat_grads, self.step)
        self.dense_optimizer.step(self.model.mlp.parameters(), work.dense_grads)

    def _apply_due_pushes(self) -> None:
        while self._pending and (
            self.step - self._pending[0].step_computed >= self.staleness
        ):
            self._push(self._pending.popleft())

    # ------------------------------------------------------------------
    # checkpoints: the asynchronous caveat
    # ------------------------------------------------------------------

    def checkpoint(self, quiesce: bool = True) -> int:
        """Take a checkpoint.

        With ``quiesce=True`` all in-flight gradients are applied first
        (training pauses — effectively a momentary synchronous barrier),
        so the snapshot is consistent. With ``quiesce=False`` the
        snapshot is taken while pushes are still in flight — the
        asynchronous-checkpoint behaviour whose inconsistency the paper
        cites; the recovered state will have absorbed some workers'
        updates and not others'.

        Returns the number of in-flight gradients NOT captured.
        """
        in_flight = len(self._pending)
        if quiesce:
            while self._pending:
                self._push(self._pending.popleft())
            in_flight = 0
        self.backend.request_checkpoint(max(self.step - 1, 0))
        self.backend.complete_pending_checkpoints()
        return in_flight

    @property
    def pending_pushes(self) -> int:
        return len(self._pending)
