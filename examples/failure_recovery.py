"""Failure-recovery demo: crash mid-training, recover, prove equality.

Trains the same model twice:

* an **uninterrupted** reference run, and
* a run that is **killed** partway through, recovered from the
  batch-aware checkpoint in (simulated) PMem, and resumed.

Because the batch-aware checkpoint restores the exact state of the
checkpointed batch and the dataset is deterministic by batch id, the
two final models are bitwise identical — the property Section V-C's
recovery design exists to provide.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam
from repro.dlrm.trainer import SynchronousTrainer

FIELDS, DIM = 8, 16
TOTAL_BATCHES = 120
CRASH_AT = 75

SERVER_CONFIG = ServerConfig(
    num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 28, seed=21
)
CACHE_CONFIG = CacheConfig(capacity_bytes=64 << 10)


def build_trainer(dataset: CriteoSynthetic) -> SynchronousTrainer:
    server = OpenEmbeddingServer(SERVER_CONFIG, CACHE_CONFIG, PSAdagrad(lr=0.08))
    model = DeepFM(FIELDS, DIM, hidden=(32,), use_first_order=False, seed=21)
    return SynchronousTrainer(
        server,
        model,
        dataset,
        num_workers=4,
        batch_size=32,
        dense_optimizer=Adam(2e-3),
        checkpoint_every=20,  # periodic checkpoint thread
    )


def main() -> None:
    dataset = CriteoSynthetic(num_fields=FIELDS, vocab_per_field=400, seed=9)

    print(f"reference run: {TOTAL_BATCHES} batches, no failures ...")
    reference = build_trainer(dataset)
    reference.train(TOTAL_BATCHES)
    ref_state = reference.server.state_snapshot()

    print(f"failure run: killing the cluster after batch {CRASH_AT} ...")
    victim = build_trainer(dataset)
    victim.train(CRASH_AT)
    pools, __, dense_checkpoints = victim.crash()

    model = DeepFM(FIELDS, DIM, hidden=(32,), use_first_order=False, seed=21)
    recovered = SynchronousTrainer.recover(
        pools,
        dense_checkpoints,
        model=model,
        dataset=dataset,
        server_config=SERVER_CONFIG,
        cache_config=CACHE_CONFIG,
        ps_optimizer=PSAdagrad(lr=0.08),
        num_workers=4,
        batch_size=32,
        dense_optimizer=Adam(2e-3),
        checkpoint_every=20,
    )
    checkpoint = recovered.next_batch - 1
    lost = CRASH_AT - recovered.next_batch
    print(f"  recovered to checkpoint of batch {checkpoint} "
          f"(re-training {lost} lost batches)")
    recovered.train(TOTAL_BATCHES - recovered.next_batch)

    got_state = recovered.server.state_snapshot()
    mismatched = sum(
        0 if np.array_equal(got_state[key], ref_state[key]) else 1
        for key in ref_state
    )
    print(f"  final embedding entries: {len(got_state)}; "
          f"mismatched vs reference: {mismatched}")
    dense_equal = all(
        np.array_equal(a, b)
        for a, b in zip(reference.model.dense_state(), recovered.model.dense_state())
    )
    print(f"  dense (MLP) weights identical: {dense_equal}")
    assert mismatched == 0 and dense_equal
    print("crash + recover + resume reproduced the uninterrupted run exactly.")


if __name__ == "__main__":
    main()
