"""DRAM hash index: tag-bit consistency with entry locations."""

import pytest

from repro.core.entry import EmbeddingEntry, Location
from repro.core.hash_index import HashIndex
from repro.errors import ServerError


@pytest.fixture
def index():
    return HashIndex()


def make(key, location=Location.DRAM):
    entry = EmbeddingEntry(key)
    entry.location = location
    return entry


class TestIndex:
    def test_find_missing_returns_none(self, index):
        assert index.find(1) is None

    def test_insert_find(self, index):
        entry = make(1)
        index.insert(entry)
        assert index.find(1) is entry
        assert 1 in index
        assert len(index) == 1

    def test_duplicate_insert_rejected(self, index):
        index.insert(make(1))
        with pytest.raises(ServerError):
            index.insert(make(1))

    def test_location_of_reads_tag_bit(self, index):
        index.insert(make(1, Location.PMEM))
        assert index.location_of(1) == Location.PMEM

    def test_set_location_flips_tag_and_entry(self, index):
        entry = make(1, Location.DRAM)
        index.insert(entry)
        index.set_location(entry, Location.PMEM)
        assert entry.location == Location.PMEM
        assert index.location_of(1) == Location.PMEM
        index.validate()

    def test_set_location_unindexed_rejected(self, index):
        with pytest.raises(ServerError):
            index.set_location(make(1), Location.PMEM)

    def test_remove(self, index):
        index.insert(make(1))
        index.remove(1)
        assert index.find(1) is None
        with pytest.raises(KeyError):
            index.remove(1)

    def test_slot_reuse_after_remove(self, index):
        first = make(1)
        index.insert(first)
        index.remove(1)
        second = make(2)
        index.insert(second)
        assert index.find(2) is second
        index.validate()

    def test_entries_iteration(self, index):
        for key in range(5):
            index.insert(make(key))
        assert sorted(e.key for e in index.entries()) == list(range(5))
        assert sorted(index.keys()) == list(range(5))

    def test_validate_detects_desync(self, index):
        entry = make(1, Location.DRAM)
        index.insert(entry)
        entry.location = Location.PMEM  # bypassing set_location
        with pytest.raises(ServerError):
            index.validate()
