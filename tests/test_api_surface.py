"""Public API surface: everything exported resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.pmem",
    "repro.baselines",
    "repro.dlrm",
    "repro.workload",
    "repro.network",
    "repro.simulation",
    "repro.failure",
    "repro.cost",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, f"{package_name} missing a module docstring"
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name} in __all__ but missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_objects_documented(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"{package_name}.{name} has no docstring"


def test_version():
    import repro

    assert repro.__version__


def test_quickstart_snippet_from_readme():
    """The README's core snippet must actually run."""
    import numpy as np

    from repro import CacheConfig, OpenEmbeddingServer, ServerConfig

    server = OpenEmbeddingServer(
        ServerConfig(num_nodes=2, embedding_dim=16, pmem_capacity_bytes=1 << 22),
        CacheConfig(capacity_bytes=1 << 20),
    )
    keys = [3, 14, 159]
    result = server.pull(keys, 0)
    assert result.weights.shape == (3, 16)
    server.maintain(0)
    server.push(keys, np.ones((3, 16), dtype=np.float32), 0)
    server.request_checkpoint()
