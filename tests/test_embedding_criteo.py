"""PSEmbedding lookups and the synthetic Criteo dataset."""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.embedding import PSEmbedding
from repro.errors import ConfigError

DIM = 4


@pytest.fixture
def server():
    return OpenEmbeddingServer(
        ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 22),
        CacheConfig(capacity_bytes=1 << 16),
    )


class TestPSEmbedding:
    def test_pull_shape(self, server):
        emb = PSEmbedding(server, DIM)
        keys = np.array([[1, 2], [3, 4]])
        out = emb.pull(keys, 0)
        assert out.shape == (2, 2, DIM)

    def test_pull_routes_by_key(self, server):
        emb = PSEmbedding(server, DIM)
        keys = np.array([[7, 7]])
        out = emb.pull(keys, 0)
        assert np.array_equal(out[0, 0], out[0, 1])

    def test_push_aggregates_duplicates(self, server):
        emb = PSEmbedding(server, DIM)
        keys = np.array([[5, 5]])
        before = emb.pull(keys, 0)[0, 0].copy()
        server.maintain(0)
        grads = np.ones((1, 2, DIM), dtype=np.float32)
        emb.push(keys, grads, 0)
        after = emb.pull(keys, 1)[0, 0]
        # default PSSGD lr=0.01, summed grad = 2
        assert np.allclose(before - after, 0.02)

    def test_non_2d_keys_rejected(self, server):
        emb = PSEmbedding(server, DIM)
        with pytest.raises(ConfigError):
            emb.pull(np.array([1, 2, 3]), 0)

    def test_bad_grad_shape_rejected(self, server):
        emb = PSEmbedding(server, DIM)
        keys = np.array([[1]])
        emb.pull(keys, 0)
        server.maintain(0)
        with pytest.raises(ConfigError):
            emb.push(keys, np.ones((1, 1, DIM + 1), dtype=np.float32), 0)


class TestCriteoSynthetic:
    def test_deterministic_batches(self):
        a = CriteoSynthetic(num_fields=5, vocab_per_field=50, seed=9)
        b = CriteoSynthetic(num_fields=5, vocab_per_field=50, seed=9)
        ba, bb = a.batch(32, 3), b.batch(32, 3)
        assert np.array_equal(ba.keys, bb.keys)
        assert np.array_equal(ba.labels, bb.labels)

    def test_different_batches_differ(self):
        ds = CriteoSynthetic(num_fields=5, vocab_per_field=50)
        assert not np.array_equal(ds.batch(32, 0).keys, ds.batch(32, 1).keys)

    def test_keys_in_field_ranges(self):
        ds = CriteoSynthetic(num_fields=4, vocab_per_field=100)
        batch = ds.batch(64, 0)
        for field in range(4):
            column = batch.keys[:, field]
            assert np.all(column >= field * 100)
            assert np.all(column < (field + 1) * 100)

    def test_labels_binary_and_balanced_ish(self):
        ds = CriteoSynthetic(num_fields=8, vocab_per_field=100)
        labels = np.concatenate(
            [ds.batch(256, i).labels for i in range(8)]
        )
        assert set(np.unique(labels)) <= {0.0, 1.0}
        rate = labels.mean()
        assert 0.15 < rate < 0.85

    def test_skewed_popularity(self):
        ds = CriteoSynthetic(num_fields=1, vocab_per_field=1000, skew_rate=8.0)
        keys = np.concatenate([ds.batch(512, i).keys[:, 0] for i in range(8)])
        __, counts = np.unique(keys, return_counts=True)
        counts = np.sort(counts)[::-1]
        # Top 10 % of the 1000-key vocabulary should see the majority
        # of traffic at skew_rate 8 (analytically 1 - e^-0.8 ~ 55 %).
        top_share = counts[:100].sum() / counts.sum()
        assert top_share > 0.5

    def test_labels_learnable(self):
        """The same keys get (mostly) stable label propensities — a
        linear probe on key effects beats chance."""
        ds = CriteoSynthetic(num_fields=4, vocab_per_field=20, seed=1)
        counts = np.zeros(ds.num_keys)
        clicks = np.zeros(ds.num_keys)
        for i in range(40):
            batch = ds.batch(128, i)
            for row, label in zip(batch.keys, batch.labels):
                counts[row] += 1
                clicks[row] += label
        seen = counts > 10
        rates = clicks[seen] / counts[seen]
        # Key-level click rates must spread well beyond the global mean.
        assert rates.std() > 0.08

    def test_num_keys(self):
        assert CriteoSynthetic(num_fields=26, vocab_per_field=1000).num_keys == 26_000

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            CriteoSynthetic(num_fields=0)
        with pytest.raises(ConfigError):
            CriteoSynthetic(skew_rate=0)
        with pytest.raises(ConfigError):
            CriteoSynthetic().batch(0, 0)
