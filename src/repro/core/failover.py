"""Lease-based failure detection and client-driven hot failover.

The paper's only failure answer is offline recovery: rescan PMem,
discard versions past the Checkpointed Batch ID, rebuild the index
(~380 s at 2.1 B entries, Section V-C / Figure 14). Production PS
systems (Kraken SC'20, Check-N-Run NSDI'22) instead detect a dead node
automatically and fail over to a hot replica in seconds. This module
supplies the detection and orchestration half of that availability
layer; :class:`~repro.core.replication.ReplicatedPSNode` supplies the
replica.

Three pieces:

* :class:`FailureDetector` — a pure, SimClock-driven lease table. Each
  watched node holds a lease of ``ServerConfig.lease_s`` seconds that a
  successful heartbeat renews. A node whose lease has expired is DEAD;
  one past the suspect threshold but inside its lease is SUSPECT (do
  not reroute yet — the wire may just be slow).
* ``FailoverTransport`` — how the manager talks to the cluster. The
  in-process :class:`LocalFailoverTransport` is defined here; the RPC
  one (heartbeat probes over dedicated channels, promotion via a
  ``Promote`` message) lives in :mod:`repro.network.frontend` so core
  stays import-light.
* :class:`FailoverManager` — the policy loop. ``beat()`` probes every
  shard, renews leases and advances background re-replication;
  ``handle_timeout(node)`` is the client's reaction to an unanswered
  call: re-probe, wait out the remaining lease on the shared clock
  (detection latency is therefore *bounded by the lease*), promote the
  backup, publish the committed ring epoch to the promoted node, and
  account the whole unavailability window in ``repro_failover_*``
  metrics and ``failover.*`` spans.

Exactly-once across promotion: the manager never re-issues requests
itself — the caller retries with the SAME ``(worker_id, seq)``, and the
service-level dedup window (logically replicated with the shard)
suppresses duplicates, so a push that reached the replicas before the
primary died is not applied twice after promotion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.config import ServerConfig
from repro.errors import FailoverError, ServerError
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.clock import SimClock


class NodeState(enum.Enum):
    """Detector's belief about one shard."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class _Lease:
    last_beat: float
    deadline: float
    dead: bool = False


class FailureDetector:
    """A lease table over the shared simulated clock.

    Deliberately mechanism-free: it never probes anything. Callers feed
    it evidence (:meth:`heartbeat`) and ask for beliefs
    (:meth:`state_of`). Because leases live on the same
    :class:`SimClock` that prices training, detection latency shows up
    in every simulated-time measurement, exactly like retries do.
    """

    def __init__(
        self,
        clock: SimClock,
        lease_s: float,
        suspect_after_s: float | None = None,
    ):
        if lease_s <= 0:
            raise ServerError(f"lease_s must be positive, got {lease_s}")
        if suspect_after_s is None:
            suspect_after_s = lease_s / 2.0
        if not 0 < suspect_after_s <= lease_s:
            raise ServerError(
                f"need 0 < suspect_after_s <= lease_s, got {suspect_after_s}"
            )
        self.clock = clock
        self.lease_s = lease_s
        self.suspect_after_s = suspect_after_s
        self._leases: dict[int, _Lease] = {}

    def watch(self, node_id: int) -> None:
        """Start tracking ``node_id`` with a fresh lease from now."""
        now = self.clock.now
        self._leases[node_id] = _Lease(now, now + self.lease_s)

    def watched(self) -> list[int]:
        return sorted(self._leases)

    def _lease(self, node_id: int) -> _Lease:
        try:
            return self._leases[node_id]
        except KeyError:
            raise ServerError(f"node {node_id} is not watched") from None

    def heartbeat(self, node_id: int) -> None:
        """Record evidence of life; renews the lease.

        A heartbeat from a node already *declared* dead is ignored —
        promotion is a one-way door (the old primary's pool is crashed);
        the slot is re-armed with :meth:`reset` after the new primary
        takes over.
        """
        lease = self._lease(node_id)
        if lease.dead:
            return
        now = self.clock.now
        lease.last_beat = now
        lease.deadline = now + self.lease_s

    def state_of(self, node_id: int) -> NodeState:
        lease = self._lease(node_id)
        if lease.dead:
            return NodeState.DEAD
        now = self.clock.now
        if now >= lease.deadline:
            return NodeState.DEAD
        if now - lease.last_beat >= self.suspect_after_s:
            return NodeState.SUSPECT
        return NodeState.ALIVE

    def lease_deadline(self, node_id: int) -> float:
        """Instant after which the node may be declared dead."""
        return self._lease(node_id).deadline

    def last_heartbeat(self, node_id: int) -> float:
        return self._lease(node_id).last_beat

    def declared_dead(self, node_id: int) -> bool:
        """True only after :meth:`declare_dead` committed the verdict.

        Distinct from ``state_of(...) is DEAD``: an *expired* lease
        means the node MAY be declared dead, not that it was. Fresh
        evidence of life (a successful probe) still rescues an expired
        lease; nothing rescues a declared one until :meth:`reset`.
        """
        return self._lease(node_id).dead

    def declare_dead(self, node_id: int) -> None:
        """Commit to the death verdict (no resurrection until reset).

        Raises:
            ServerError: the lease has not expired yet — declaring a
                node dead early would break the lease safety argument.
        """
        lease = self._lease(node_id)
        if not lease.dead and self.clock.now < lease.deadline:
            raise ServerError(
                f"node {node_id} lease runs to {lease.deadline:.6f}, "
                f"now is {self.clock.now:.6f}: cannot declare dead early"
            )
        lease.dead = True

    def reset(self, node_id: int) -> None:
        """Re-arm the slot after a successful promotion."""
        self.watch(node_id)

    def dead_nodes(self) -> list[int]:
        return [n for n in sorted(self._leases) if self.state_of(n) is NodeState.DEAD]


@runtime_checkable
class FailoverTransport(Protocol):
    """How the manager observes and operates one cluster."""

    def num_nodes(self) -> int:
        """Shard count under watch."""

    def probe(self, node_id: int) -> bool:
        """One liveness check; True iff the primary answered."""

    def committed_epoch(self) -> int:
        """The durably committed ring epoch (0 for modulo routing)."""

    def promote(self, node_id: int, committed_epoch: int) -> float:
        """Promote the shard's backup; returns simulated seconds.

        Raises:
            FailoverError: double fault — no backup survives.
        """

    def rebuild_tick(self, node_id: int, max_keys: int) -> str:
        """Advance the shard's background re-replication one increment."""

    def rebuild_progress(self, node_id: int) -> float:
        """Fraction of the census copied (1.0 = fully replicated)."""


class LocalFailoverTransport:
    """In-process transport over an :class:`OpenEmbeddingServer` whose
    shards are :class:`~repro.core.replication.ReplicatedPSNode`."""

    def __init__(self, server):
        self.server = server

    def num_nodes(self) -> int:
        return len(self.server.nodes)

    def probe(self, node_id: int) -> bool:
        node = self.server.nodes[node_id]
        return bool(getattr(node, "primary_alive", True))

    def committed_epoch(self) -> int:
        return self.server.ring_epoch

    def promote(self, node_id: int, committed_epoch: int) -> float:
        node = self.server.nodes[node_id]
        if getattr(node, "primary_alive", True):
            # False positive (e.g. probes lost, lease lapsed while the
            # node lived): promotion must be an acknowledged no-op.
            return 0.0
        return node.failover(committed_epoch=committed_epoch)

    def rebuild_tick(self, node_id: int, max_keys: int) -> str:
        node = self.server.nodes[node_id]
        tick = getattr(node, "rebuild_tick", None)
        return tick(max_keys) if tick is not None else "idle"

    def rebuild_progress(self, node_id: int) -> float:
        node = self.server.nodes[node_id]
        report = getattr(node, "rebuild_report", None)
        if report is None:
            return 1.0
        return 1.0 if report.finished else report.progress


@dataclass
class PromotionReport:
    """One detection → promotion episode, fully accounted."""

    node_id: int
    #: Simulated instant the client first noticed trouble (timeout).
    noticed_at: float
    #: Seconds from last evidence of life to the death declaration.
    detection_seconds: float
    #: Seconds the promotion itself took (FAILOVER_SECONDS).
    promotion_seconds: float
    #: noticed -> serving again: the client-visible outage.
    unavailability_seconds: float
    #: Ring epoch published to the promoted primary.
    committed_epoch: int


class FailoverManager:
    """Detection + promotion + re-replication policy over one transport.

    The same manager drives the local server, the RPC client, and the
    RPC-client-over-FaultyLink — only the transport differs, which is
    what lets the chaos soak run all three against one schedule.
    """

    def __init__(
        self,
        transport: FailoverTransport,
        clock: SimClock,
        config: ServerConfig,
        *,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        rebuild_chunk: int = 64,
        recorder=None,
    ):
        self.transport = transport
        self.clock = clock
        self.config = config
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional :class:`~repro.obs.flightrec.FlightRecorder`. Every
        #: failover state transition lands in its ring, and the window
        #: is dumped on declare-dead, after a promotion, and on a
        #: double fault — the postmortem record of what the detector
        #: saw in the seconds around the outage.
        self.recorder = recorder
        self.rebuild_chunk = rebuild_chunk
        self.detector = FailureDetector(clock, config.lease_s)
        for node_id in range(transport.num_nodes()):
            self.detector.watch(node_id)
        self.promotions: list[PromotionReport] = []
        self.double_faults = 0

    # ------------------------------------------------------------------
    # periodic heartbeat round
    # ------------------------------------------------------------------

    def beat(self) -> dict[int, NodeState]:
        """Probe every shard, renew leases, advance rebuilds.

        Returns each shard's post-round state. Heartbeats ride the
        background (off the request critical path), so the round itself
        charges no clock time beyond what the transport's probes do.
        """
        states: dict[int, NodeState] = {}
        for node_id in range(self.transport.num_nodes()):
            if not self.detector.declared_dead(node_id):
                # An expired-but-undeclared lease is exactly what a
                # probe is for: a live answer renews it.
                if self.transport.probe(node_id):
                    self.detector.heartbeat(node_id)
                    self._tick_rebuild(node_id)
            states[node_id] = self.detector.state_of(node_id)
        return states

    def _tick_rebuild(self, node_id: int) -> None:
        state = self.transport.rebuild_tick(node_id, self.rebuild_chunk)
        if state == "idle":
            return
        progress = self.transport.rebuild_progress(node_id)
        if self.registry is not None:
            self.registry.gauge(
                "repro_failover_rereplication_progress",
                {"node": str(node_id)},
            ).set(progress)
            self.registry.counter(
                "repro_failover_rereplication_ticks_total",
                {"node": str(node_id)},
            ).add(1)
        if state == "done":
            self.tracer.instant(
                "failover.rereplicated", track="failure", node=node_id
            )

    # ------------------------------------------------------------------
    # the client's unanswered-call path
    # ------------------------------------------------------------------

    def handle_timeout(self, node_id: int) -> str:
        """React to an unanswered call on ``node_id``.

        Returns ``"retry"`` when a re-probe finds the node alive (the
        wire ate the message — retry the same endpoint) or
        ``"promoted"`` after a completed failover (re-issue the call
        with the same ``(worker_id, seq)``; the dedup window keeps it
        exactly-once).

        The death verdict waits out the node's lease on the shared
        clock: detection latency is bounded by ``lease_s`` plus
        whatever the caller already spent timing out, which is exactly
        the bound the chaos soak asserts on p99 unavailability.

        Raises:
            FailoverError: double fault — no backup left; fall back to
                checkpoint recovery.
        """
        noticed = self.clock.now
        self._rec("timeout_noticed", node=node_id)
        if not self.detector.declared_dead(node_id):
            # Even an expired lease yields to fresh evidence of life —
            # the one-way door is declare_dead, not expiry.
            if self.transport.probe(node_id):
                self.detector.heartbeat(node_id)
                self._rec("probe_alive", node=node_id)
                return "retry"
            deadline = self.detector.lease_deadline(node_id)
            if self.clock.now < deadline:
                # Cannot declare death before the lease runs out — the
                # client sits out the remainder (charged!).
                self._rec("lease_wait", node=node_id, deadline=deadline)
                self.clock.advance(deadline - self.clock.now)
            self._rec("lease_expired", node=node_id, deadline=deadline)
        last_beat = self.detector.last_heartbeat(node_id)
        self.detector.declare_dead(node_id)
        detection_s = self.clock.now - last_beat
        self._rec("declared_dead", node=node_id, detection_s=detection_s)
        if self.recorder is not None:
            self.recorder.dump("declare_dead", node=node_id)
        epoch = self.transport.committed_epoch()
        with self.tracer.span(
            "failover.promote", track="failure", node=node_id, epoch=epoch
        ) as span:
            try:
                promotion_s = self.transport.promote(node_id, epoch)
            except FailoverError:
                self.double_faults += 1
                if self.registry is not None:
                    self.registry.counter(
                        "repro_failover_double_faults_total"
                    ).add(1)
                span.set(outcome="double_fault")
                self._rec("double_fault", node=node_id, epoch=epoch)
                if self.recorder is not None:
                    self.recorder.dump("double_fault", node=node_id)
                raise
            self.clock.advance(promotion_s)
            span.set(outcome="promoted", seconds=promotion_s)
        self._rec("promoted", node=node_id, seconds=promotion_s, epoch=epoch)
        self.detector.reset(node_id)
        report = PromotionReport(
            node_id=node_id,
            noticed_at=noticed,
            detection_seconds=detection_s,
            promotion_seconds=promotion_s,
            unavailability_seconds=self.clock.now - noticed,
            committed_epoch=epoch,
        )
        self.promotions.append(report)
        self._record(report)
        if self.recorder is not None:
            # This dump's window covers the whole episode: lease
            # expiry -> declare-dead -> promotion.
            self.recorder.dump(
                "promotion",
                node=node_id,
                unavailability_s=report.unavailability_seconds,
            )
        return "promoted"

    def _rec(self, name: str, **attrs) -> None:
        if self.recorder is not None:
            self.recorder.record("failover", name, **attrs)

    def _record(self, report: PromotionReport) -> None:
        if self.registry is None:
            return
        labels = {"node": str(report.node_id)}
        self.registry.counter("repro_failover_promotions_total", labels).add(1)
        self.registry.histogram(
            "repro_failover_detection_seconds"
        ).observe(report.detection_seconds)
        self.registry.histogram(
            "repro_failover_unavailability_seconds"
        ).observe(report.unavailability_seconds)

    # ------------------------------------------------------------------
    # bounds & introspection
    # ------------------------------------------------------------------

    def unavailability_bound_s(self, call_timeout_s: float = 0.0) -> float:
        """The promised ceiling on one outage window.

        noticed -> promoted is at most: the remaining lease (full
        ``lease_s`` in the worst case) + one probe round trip (absorbed
        in ``call_timeout_s`` for RPC transports) + the promotion cost
        itself. The chaos soak asserts p99 under this.
        """
        from repro.core.replication import FAILOVER_SECONDS

        return self.config.lease_s + call_timeout_s + FAILOVER_SECONDS

    def max_unavailability_s(self) -> float:
        if not self.promotions:
            return 0.0
        return max(p.unavailability_seconds for p in self.promotions)
