"""End-to-end DLRM: train, evaluate, export, serve.

The full production lifecycle on the Naumov-style DLRM architecture
(bottom MLP over 13 dense features + embeddings + pairwise interactions
+ top MLP):

1. train synchronously on 4 workers against a 2-shard OpenEmbedding
   deployment with periodic batch-aware checkpoints, pulling through
   the lookahead prefetch pipeline (weights are bit-identical to the
   serial pull protocol — only request traffic changes),
2. evaluate AUC / log-loss / calibration on held-out batches,
3. export the trained model to a single artifact,
4. serve predictions from the artifact with no PS — and verify they
   match the live model bitwise.

Run:  python examples/dlrm_end_to_end.py
"""

import numpy as np

from repro.config import CacheConfig, PrefetchConfig, ServerConfig
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.dlrm_model import DLRM
from repro.dlrm.metrics import evaluate_model
from repro.dlrm.optimizers import Adam
from repro.dlrm.serving import InferenceSession, export_model
from repro.dlrm.trainer import SynchronousTrainer

FIELDS, DIM, DENSE = 10, 16, 13


def main() -> None:
    dataset = CriteoSynthetic(
        num_fields=FIELDS, vocab_per_field=400, num_dense=DENSE, seed=11
    )
    server = OpenEmbeddingServer(
        ServerConfig(
            num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 28, seed=11
        ),
        CacheConfig(capacity_bytes=256 << 10),
        PSAdagrad(lr=0.05),
    )
    model = DLRM(
        FIELDS, DIM, num_dense=DENSE, bottom_hidden=(32,), top_hidden=(64, 32),
        seed=11,
    )
    trainer = SynchronousTrainer(
        server, model, dataset,
        num_workers=4, batch_size=32,
        dense_optimizer=Adam(2e-3), checkpoint_every=50,
        prefetch=PrefetchConfig(lookahead=2),
    )

    print(f"training DLRM ({FIELDS} fields x dim {DIM} + {DENSE} dense features, "
          f"{model.dense_parameter_count} dense params) ...")
    results = trainer.train(250)
    losses = [r.loss for r in results]
    print(f"  loss {np.mean(losses[:25]):.4f} -> {np.mean(losses[-25:]):.4f}; "
          f"{server.num_entries} embedding entries, "
          f"miss rate {server.aggregate_miss_rate():.2%}")
    stats = trainer.pipeline.stats
    print(f"  prefetch: {stats.hit_rate:.1%} of lookups served from the "
          f"lookahead buffer ({stats.prefetch_keys} keys pulled ahead)")

    metrics = evaluate_model(
        model, trainer.embedding, dataset, batches=10, batch_size=128
    )
    print(f"  held-out: AUC {metrics['auc']:.4f}, "
          f"logloss {metrics['logloss']:.4f}, "
          f"calibration {metrics['calibration']:.3f}")

    path = "/tmp/dlrm_model.npz"
    exported = export_model(path, server, model)
    serving_model = DLRM(
        FIELDS, DIM, num_dense=DENSE, bottom_hidden=(32,), top_hidden=(64, 32),
        seed=0,  # parameters come from the artifact, not this seed
    )
    session = InferenceSession(path, serving_model)
    print(f"  exported {exported} entries to {path}")

    batch = dataset.batch(8, 999_999)
    live_emb = trainer.embedding.pull(batch.keys, 999_999)
    server.maintain(999_999)
    live = model.predict_proba(live_emb, batch.dense)
    served = session.predict_proba(batch.keys, batch.dense)
    print(f"  serving matches live model bitwise: {np.array_equal(live, served)}")
    assert np.array_equal(live, served)
    print("  sample predictions:", [f"{p:.3f}" for p in served])


if __name__ == "__main__":
    main()
