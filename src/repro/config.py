"""Configuration objects for every subsystem.

All configs are frozen dataclasses: construct once, validate eagerly in
``__post_init__``, and pass around freely. Sizes are in bytes and times
in (simulated) seconds unless a field name says otherwise.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.errors import ConfigError

FLOAT_BYTES = 4
"""Embedding weights are float32, as in the paper (vectors of floats)."""


class CheckpointMode(enum.Enum):
    """Checkpoint strategies evaluated in the paper (Table IV)."""

    NONE = "none"
    #: The paper's batch-aware checkpoint co-designed with cache replacement.
    BATCH_AWARE = "batch_aware"
    #: CheckFreq-style incremental checkpoint (state of the art baseline).
    INCREMENTAL = "incremental"
    #: Batch-aware for sparse features only, dense checkpoint disabled.
    SPARSE_ONLY = "sparse_only"


class EvictionPolicy(enum.Enum):
    """Cache replacement policies. The paper uses LRU throughout;
    FIFO and CLOCK (second chance) are ablation alternatives."""

    LRU = "lru"
    FIFO = "fifo"
    CLOCK = "clock"


@dataclass(frozen=True)
class CacheConfig:
    """DRAM cache in front of PMem (Section V-A/V-B).

    Attributes:
        capacity_bytes: DRAM budget for cached embedding entries. The
            paper sweeps 10 MB .. 20 GB (Figure 8); 2 GB is the default
            operating point.
        pipelined: when True, LRU maintenance / replacement / PMem flush
            costs are charged overlapped with GPU compute (the paper's
            pipeline); when False they sit on the request critical path.
        maintainer_threads: number of dedicated cache-maintainer threads
            consuming the access queue (Figure 5).
        track_dirty: skip the PMem write when evicting a clean entry.
            The paper always writes back; dirty tracking is an ablation.
        policy: replacement policy, LRU in all paper experiments.
        admission_threshold: TinyLFU-style admission filter (extension
            beyond the paper): a missed key is only promoted to DRAM
            after being seen this many times. 0 (the paper's behaviour)
            admits every miss.
        arena: store DRAM-resident payloads in one contiguous float32
            arena (``repro.core.arena``) and serve batched pulls/pushes
            through vectorized gather/scatter fast paths. Disabling it
            falls back to per-entry numpy arrays and per-key loops —
            functionally identical (the equivalence tests compare the
            two), kept as the reference path and benchmark baseline.
    """

    capacity_bytes: int = 2 << 30
    pipelined: bool = True
    maintainer_threads: int = 4
    track_dirty: bool = False
    policy: EvictionPolicy = EvictionPolicy.LRU
    admission_threshold: int = 0
    arena: bool = True

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError(f"cache capacity must be positive, got {self.capacity_bytes}")
        if self.maintainer_threads <= 0:
            raise ConfigError("maintainer_threads must be >= 1")
        if self.admission_threshold < 0:
            raise ConfigError("admission_threshold must be non-negative")

    def capacity_entries(self, entry_bytes: int) -> int:
        """How many entries of ``entry_bytes`` fit in the cache (>= 1)."""
        if entry_bytes <= 0:
            raise ConfigError(f"entry_bytes must be positive, got {entry_bytes}")
        return max(1, self.capacity_bytes // entry_bytes)


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpoint scheduling (Section VI-D).

    Attributes:
        mode: strategy from Table IV.
        interval_seconds: period of the automatic checkpoint thread. The
            paper's default is 20 minutes, chosen via Young's formula
            from Facebook's reported MTTF.
        include_dense: whether the dense (MLP) part is checkpointed via
            the framework's own mechanism ('Sparse Only' disables it).
    """

    mode: CheckpointMode = CheckpointMode.BATCH_AWARE
    interval_seconds: float = 20 * 60.0
    include_dense: bool = True

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ConfigError("checkpoint interval must be positive")

    @classmethod
    def none(cls) -> "CheckpointConfig":
        return cls(mode=CheckpointMode.NONE, include_dense=False)

    @classmethod
    def sparse_only(cls, interval_seconds: float = 20 * 60.0) -> "CheckpointConfig":
        return cls(
            mode=CheckpointMode.SPARSE_ONLY,
            interval_seconds=interval_seconds,
            include_dense=False,
        )


@dataclass(frozen=True)
class ServerConfig:
    """A distributed OpenEmbedding deployment.

    Attributes:
        num_nodes: number of PS shards; keys are hash-partitioned.
        embedding_dim: floats per embedding entry (paper default 64).
        pmem_capacity_bytes: persistent pool size per node.
        initializer_scale: uniform(-s, s) initialisation for new entries.
        seed: base RNG seed; node ``i`` derives ``seed + i``.
        auto_create: initialise unseen keys on first pull (Algorithm 1
            lines 6-12); when False unseen keys raise KeyNotFoundError.
        partitioner: key -> node routing scheme. ``"modulo"`` is the
            paper's static ``mix64(key) % num_nodes``; ``"ring"`` is a
            consistent-hash ring with virtual nodes that supports live
            scale-out/scale-in (``repro.core.migration``) with minimal
            key movement.
        ring_vnodes: virtual nodes per physical node when
            ``partitioner == "ring"`` (ignored for ``"modulo"``).
        replicas: replicas per shard. ``1`` is the paper's
            checkpoint-recovery-only deployment; ``2`` runs a hot
            backup (:class:`~repro.core.replication.ReplicatedPSNode`)
            that failure detection can promote in
            :data:`~repro.core.replication.FAILOVER_SECONDS` instead of
            the ~380 s PMem rescan (Section V-C).
        lease_s: failure-detection lease duration. A shard whose
            heartbeats stop is declared dead only once its lease
            expires, which bounds both false positives and the
            detection half of the unavailability window.
        heartbeat_interval_s: how often the detector probes each shard
            and renews its lease; must be strictly less than
            ``lease_s`` or healthy nodes would flap dead.
        serving_replica_policy: which replica of a shard answers
            serving lookups (see
            :class:`~repro.core.serving_backend.ReplicaSelector`):
            ``"round_robin"`` (default), ``"least_loaded"``, or
            ``"primary"``. Irrelevant with ``replicas=1``.
        staleness_bound: bounded-staleness admission ``k`` for
            asynchronous training: a pull whose reported worker
            progress is more than ``k`` batches behind the slowest
            *other* admitted worker is rejected with
            :class:`~repro.errors.StalenessError`. ``None`` (default)
            disables admission; anonymous pulls (no ``worker_id``)
            always bypass it, so synchronous training and serving are
            unaffected.
        aggregator: gradient fold applied before ``apply_batch`` —
            ``"none"`` (apply pushes directly, the synchronous-path
            default), ``"mean"``, ``"trimmed_mean"``, ``"median"`` or
            ``"krum"`` (see :mod:`repro.core.aggregators`). Anything
            but ``"none"`` buffers pushes per worker and folds them
            quorum-by-quorum.
        aggregator_workers: expected worker count ``n`` for the
            aggregation quorum (required when ``aggregator != "none"``).
        aggregator_f: Byzantine tolerance ``f`` the robust folds are
            sized for; defaults to ``max(0, (n - 2) // 3)`` — the
            largest ``f`` with an honest majority at ``n >= 3f + 2``.
    """

    num_nodes: int = 1
    embedding_dim: int = 64
    pmem_capacity_bytes: int = 756 << 30
    initializer_scale: float = 0.01
    seed: int = 0
    auto_create: bool = True
    partitioner: str = "modulo"
    ring_vnodes: int = 64
    replicas: int = 1
    lease_s: float = 0.5
    heartbeat_interval_s: float = 0.1
    serving_replica_policy: str = "round_robin"
    staleness_bound: int | None = None
    aggregator: str = "none"
    aggregator_workers: int = 0
    aggregator_f: int | None = None

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigError("num_nodes must be >= 1")
        if self.embedding_dim <= 0:
            raise ConfigError("embedding_dim must be >= 1")
        if self.pmem_capacity_bytes <= 0:
            raise ConfigError("pmem_capacity_bytes must be positive")
        if self.partitioner not in ("modulo", "ring"):
            raise ConfigError(
                f"partitioner must be 'modulo' or 'ring', got {self.partitioner!r}"
            )
        if self.ring_vnodes <= 0:
            raise ConfigError("ring_vnodes must be >= 1")
        if self.replicas not in (1, 2):
            raise ConfigError(
                f"replicas must be 1 (none) or 2 (hot backup), got {self.replicas}"
            )
        if self.lease_s <= 0:
            raise ConfigError("lease_s must be positive")
        if self.heartbeat_interval_s <= 0:
            raise ConfigError("heartbeat_interval_s must be positive")
        if self.heartbeat_interval_s >= self.lease_s:
            raise ConfigError(
                "heartbeat_interval_s must be < lease_s "
                f"({self.heartbeat_interval_s} >= {self.lease_s})"
            )
        if self.serving_replica_policy not in (
            "primary", "round_robin", "least_loaded"
        ):
            raise ConfigError(
                "serving_replica_policy must be 'primary', 'round_robin' "
                f"or 'least_loaded', got {self.serving_replica_policy!r}"
            )
        if self.staleness_bound is not None and self.staleness_bound < 0:
            raise ConfigError(
                f"staleness_bound must be >= 0 or None, got {self.staleness_bound}"
            )
        # Kept in sync with repro.core.aggregators.AGGREGATOR_NAMES
        # (not imported here: config must stay import-cycle free).
        if self.aggregator not in ("none", "mean", "trimmed_mean", "median", "krum"):
            raise ConfigError(
                "aggregator must be one of 'none', 'mean', 'trimmed_mean', "
                f"'median', 'krum'; got {self.aggregator!r}"
            )
        if self.aggregator != "none" and self.aggregator_workers < 1:
            raise ConfigError(
                f"aggregator {self.aggregator!r} needs aggregator_workers >= 1"
            )
        if self.aggregator_f is not None and (
            self.aggregator_f < 0
            or (
                self.aggregator != "none"
                and self.aggregator_f >= max(1, self.aggregator_workers)
            )
        ):
            raise ConfigError(
                f"aggregator_f={self.aggregator_f} must be in "
                f"[0, aggregator_workers)"
            )

    @property
    def entry_bytes(self) -> int:
        """Size of one embedding entry's weights in bytes."""
        return self.embedding_dim * FLOAT_BYTES


@dataclass(frozen=True)
class NetworkConfig:
    """Cluster interconnect (the paper: 30 Gb intranet, RDMA-style RPC).

    Attributes:
        bandwidth_bytes_per_s: link bandwidth shared by all workers.
        rpc_latency_s: one-way per-message latency.
    """

    bandwidth_bytes_per_s: float = 30e9 / 8
    rpc_latency_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.rpc_latency_s < 0:
            raise ConfigError("rpc latency must be non-negative")


@dataclass(frozen=True)
class RetryConfig:
    """Client-side RPC retry policy (exponential backoff with jitter).

    Every :class:`~repro.network.rpc.RpcChannel` call gets a total
    simulated-time budget (``call_timeout_s``); each attempt waits at
    most ``attempt_timeout_s`` for a response before declaring the
    message lost and backing off. All waiting — wire time, loss
    timeouts and backoff — is charged to the shared
    :class:`~repro.simulation.clock.SimClock`, so retries are visible
    in every simulated-time measurement.

    Attributes:
        max_attempts: total tries per call (first attempt included).
        attempt_timeout_s: patience per attempt before a retry.
        call_timeout_s: total per-call budget; exhausting it raises
            :class:`~repro.errors.RpcTimeoutError`.
        base_backoff_s: backoff before the second attempt.
        backoff_multiplier: exponential growth factor per retry.
        max_backoff_s: backoff ceiling.
        jitter: symmetric +/- fraction randomizing each backoff
            (0 disables jitter; draws come from a seeded per-channel
            RNG so retry traces are deterministic).
        seed: base RNG seed for jitter; channel ``i`` derives
            ``(seed, i)``.
    """

    max_attempts: int = 6
    attempt_timeout_s: float = 0.05
    call_timeout_s: float = 2.0
    base_backoff_s: float = 1e-3
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 0.1
    jitter: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.attempt_timeout_s <= 0:
            raise ConfigError("attempt_timeout_s must be positive")
        if self.call_timeout_s < self.attempt_timeout_s:
            raise ConfigError("call_timeout_s must be >= attempt_timeout_s")
        if self.base_backoff_s < 0 or self.max_backoff_s < self.base_backoff_s:
            raise ConfigError("need 0 <= base_backoff_s <= max_backoff_s")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")

    def backoff_for_attempt(self, attempt: int) -> float:
        """Deterministic (un-jittered) backoff after ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        raw = self.base_backoff_s * self.backoff_multiplier ** (attempt - 1)
        return min(self.max_backoff_s, raw)


@dataclass(frozen=True)
class NetworkFaultConfig:
    """Seeded fault injection on the simulated link.

    Extends the crash-only failure model of :mod:`repro.failure` to the
    network: a :class:`~repro.failure.network_faults.FaultyLink` wraps
    the :class:`~repro.simulation.network.NetworkModel` and flips a
    seeded coin per message per fault class. All rates are independent
    probabilities in ``[0, 1]``.

    Attributes:
        drop_rate: message silently lost (receiver sees nothing).
        duplicate_rate: message delivered twice.
        corrupt_rate: one byte of the frame is flipped in flight; the
            frame checksum makes this always detectable, so corruption
            degrades to a retryable error, never silent damage.
        delay_rate: probability of an extra in-flight delay.
        delay_mean_s: mean of the exponential extra delay.
        seed: RNG seed; the whole fault schedule is a deterministic
            function of it.
        on_request: inject on the worker -> PS direction.
        on_response: inject on the PS -> worker direction.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    delay_mean_s: float = 1e-3
    seed: int = 0
    on_request: bool = True
    on_response: bool = True

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "corrupt_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_mean_s < 0:
            raise ConfigError("delay_mean_s must be non-negative")

    @property
    def any_faults(self) -> bool:
        """True when at least one fault class can fire."""
        return (
            self.drop_rate > 0
            or self.duplicate_rate > 0
            or self.corrupt_rate > 0
            or self.delay_rate > 0
        )


@dataclass(frozen=True)
class ClusterConfig:
    """Training cluster shape (Section VI-A hardware setup).

    Attributes:
        num_workers: total GPU workers (the paper scales 4 -> 16, four
            V100s per machine).
        batch_size: per-worker training batch size (paper default 4096).
        gpu_batch_time_s: simulated GPU forward+backward time for one
            batch of the dense model. Calibrated in
            ``repro.simulation.calibration``.
        ps_threads_per_node: request-handler threads on each PS node.
        network: interconnect model.
    """

    num_workers: int = 4
    batch_size: int = 4096
    gpu_batch_time_s: float = 0.040
    ps_threads_per_node: int = 16
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ConfigError("num_workers must be >= 1")
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be >= 1")
        if self.gpu_batch_time_s < 0:
            raise ConfigError("gpu_batch_time_s must be non-negative")
        if self.ps_threads_per_node <= 0:
            raise ConfigError("ps_threads_per_node must be >= 1")


@dataclass(frozen=True)
class PrefetchConfig:
    """Lookahead prefetch pipeline (Section V-B, Figure 5; BagPipe-style).

    The trainer peeks up to ``lookahead`` future batches from the
    workload stream, deduplicates their keys against what is already
    buffered, and issues coalesced prefetch pulls whose simulated
    latency overlaps with GPU compute of the current batch. Cache
    maintenance (``maintain``) is deferred into the same overlap
    window, exactly as Algorithm 1 / Figure 5 prescribe.

    Correctness: the pipeline guarantees bit-identical weights versus
    serial execution. A buffered entry whose key is touched by an
    in-flight push is invalidated and re-pulled ("patched") before any
    later batch consumes it — the staleness invariant.

    Attributes:
        lookahead: how many future batches to peek. ``0`` disables the
            pipeline (strictly serial pull -> compute -> push ->
            maintain, the pre-pipeline behaviour).
        patch: re-pull pushed keys that remain in the lookahead window
            at the end of each step. Disabling this is only safe for
            measurement runs that do not read the trained weights;
            the equivalence tests always run with ``patch=True``.
        max_buffer_entries: optional cap on distinct keys held in the
            prefetch buffer; ``None`` means unbounded (the window is
            naturally bounded by ``lookahead`` x batch keys).
    """

    lookahead: int = 0
    patch: bool = True
    max_buffer_entries: int | None = None

    def __post_init__(self) -> None:
        if self.lookahead < 0:
            raise ConfigError(f"lookahead must be >= 0, got {self.lookahead}")
        if self.max_buffer_entries is not None and self.max_buffer_entries <= 0:
            raise ConfigError("max_buffer_entries must be positive when set")

    @property
    def enabled(self) -> bool:
        """True when the pipeline actually looks ahead."""
        return self.lookahead > 0


@dataclass(frozen=True)
class WorkloadConfig:
    """Synthetic DLRM access workload (Section III).

    The real trace has 2.1 B embedding entries with exponential-decay
    access skew (Figure 10); we scale the key count down and keep the
    skew. ``features_per_sample`` is the number of embedding lookups one
    training sample performs.

    Attributes:
        num_keys: distinct embedding ids in the model.
        features_per_sample: sparse-feature lookups per sample.
        skew: exponential-decay rate of the access distribution; larger
            means more skewed. ``1.0`` matches the paper's original
            workload; Figure 11 uses more/less skewed variants.
        seed: RNG seed for reproducible traces.
    """

    num_keys: int = 1_000_000
    features_per_sample: int = 26
    skew: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_keys <= 0:
            raise ConfigError("num_keys must be >= 1")
        if self.features_per_sample <= 0:
            raise ConfigError("features_per_sample must be >= 1")
        if self.skew <= 0:
            raise ConfigError("skew must be positive")
