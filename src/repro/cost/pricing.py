"""Cloud instance pricing and PS deployment cost (Table V).

Table V compares the parameter-server cost of the 500 GB model:

=============  =============  ===========  ============  ==========
Deployment     Instance       #Machines    $/hour (PS)   $/epoch
=============  =============  ===========  ============  ==========
DRAM-PS        r6e.13xlarge   2            6.07          34.9
PMem-OE        re6p.13xlarge  1            3.80          20.3
Ori-Cache      re6p.13xlarge  1            3.80          26.6
=============  =============  ===========  ============  ==========

(Prices are Alibaba Cloud pay-as-you-go.) The cost model reproduces
the table from first principles: instance specs, the minimum machine
count to hold a model, and an epoch time.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from repro.errors import ConfigError

GB = 1 << 30


@dataclass(frozen=True)
class InstanceType:
    """A cloud instance with its memory endowment and hourly price."""

    name: str
    cores: int
    dram_gb: int
    pmem_gb: int
    dollars_per_hour: float

    def usable_model_bytes(self, dram_reserved_gb: int = 32) -> int:
        """Bytes of embedding state one machine can hold.

        PMem machines store the model in PMem; DRAM machines store it in
        DRAM minus an OS/runtime reservation.
        """
        if self.pmem_gb > 0:
            return self.pmem_gb * GB
        return max(0, self.dram_gb - dram_reserved_gb) * GB


#: Alibaba Cloud ecs.r6e.13xlarge (Section VI-A): 52 cores, 384 GB DRAM.
R6E_13XLARGE = InstanceType(
    name="r6e.13xlarge", cores=52, dram_gb=384, pmem_gb=0, dollars_per_hour=6.07 / 2
)

#: Alibaba Cloud ecs.re6p.13xlarge: 52 cores, 192 GB DRAM + 756 GB PMem.
RE6P_13XLARGE = InstanceType(
    name="re6p.13xlarge", cores=52, dram_gb=192, pmem_gb=756, dollars_per_hour=3.80
)


@dataclass(frozen=True)
class Deployment:
    """A PS fleet: an instance type and a machine count."""

    name: str
    instance: InstanceType
    machines: int

    def __post_init__(self) -> None:
        if self.machines <= 0:
            raise ConfigError("machines must be >= 1")

    @property
    def dollars_per_hour(self) -> float:
        return self.instance.dollars_per_hour * self.machines

    def capacity_bytes(self) -> int:
        return self.instance.usable_model_bytes() * self.machines


#: Table V's three PS fleets for the 500 GB model.
DRAM_PS_DEPLOYMENT = Deployment("DRAM-PS", R6E_13XLARGE, 2)
PMEM_OE_DEPLOYMENT = Deployment("PMem-OE", RE6P_13XLARGE, 1)
ORI_CACHE_DEPLOYMENT = Deployment("Ori-Cache", RE6P_13XLARGE, 1)


def deployment_for_model(
    model_bytes: int, instance: InstanceType, name: str = ""
) -> Deployment:
    """Smallest fleet of ``instance`` that holds ``model_bytes``.

    This is the paper's sizing logic: 500 GB needs two 384 GB DRAM
    machines but a single 756 GB PMem machine.
    """
    if model_bytes <= 0:
        raise ConfigError("model_bytes must be positive")
    per_machine = instance.usable_model_bytes()
    if per_machine <= 0:
        raise ConfigError(f"{instance.name} has no usable model capacity")
    return Deployment(
        name or instance.name, instance, machines=math.ceil(model_bytes / per_machine)
    )


def cost_per_epoch(deployment: Deployment, epoch_hours: float) -> float:
    """PS-only dollars for one training epoch (Table V's bottom row)."""
    if epoch_hours <= 0:
        raise ConfigError("epoch_hours must be positive")
    return deployment.dollars_per_hour * epoch_hours


def storage_saving_vs(
    deployment: Deployment, other: Deployment, epoch_hours: float, other_hours: float
) -> float:
    """Fractional $/epoch saving of ``deployment`` over ``other``.

    ``storage_saving_vs(PMEM_OE, DRAM_PS, 5.33, 5.75) ~= 0.42`` — the
    paper's "saves up to 42 % storage cost" headline.
    """
    ours = cost_per_epoch(deployment, epoch_hours)
    theirs = cost_per_epoch(other, other_hours)
    return 1.0 - ours / theirs
