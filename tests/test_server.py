"""Distributed server facade: routing, gathering, cluster checkpoints."""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.server import OpenEmbeddingServer
from repro.errors import CheckpointError, RecoveryError


def make_server(num_nodes=3, dim=4, capacity_entries=8, seed=0):
    server_config = ServerConfig(
        num_nodes=num_nodes,
        embedding_dim=dim,
        pmem_capacity_bytes=1 << 22,
        seed=seed,
    )
    cache_config = CacheConfig(capacity_bytes=capacity_entries * dim * 4)
    return OpenEmbeddingServer(server_config, cache_config), server_config, cache_config


def grads(n, dim=4, value=1.0):
    return np.full((n, dim), value, dtype=np.float32)


class TestRouting:
    def test_pull_preserves_request_order(self):
        server, *_ = make_server()
        keys = [10, 3, 25, 7, 10]
        result = server.pull(keys, 0)
        solo, *_ = make_server(num_nodes=1)
        expected = solo.pull(keys, 0)
        assert np.array_equal(result.weights, expected.weights)

    def test_sharding_distributes_keys(self):
        server, *_ = make_server(num_nodes=3)
        server.pull(list(range(100)), 0)
        per_node = [node.num_entries for node in server.nodes]
        assert sum(per_node) == 100
        assert all(count > 0 for count in per_node)

    def test_push_routes_to_owner(self):
        server, *_ = make_server()
        keys = list(range(20))
        server.pull(keys, 0)
        server.maintain(0)
        assert server.push(keys, grads(20), 0) == 20
        for key in keys:
            assert np.allclose(server.read_weights(key), server.nodes[
                server.partitioner.node_of(key)
            ].read_weights(key))

    def test_sharded_matches_single_node_training(self):
        """Sharding is semantics-free: same weights either way."""
        sharded, *_ = make_server(num_nodes=3, seed=5)
        single, *_ = make_server(num_nodes=1, seed=5)
        keys = [1, 2, 3, 4, 5, 6]
        for batch in range(4):
            for server in (sharded, single):
                server.pull(keys, batch)
                server.maintain(batch)
                server.push(keys, grads(len(keys), value=0.1 * (batch + 1)), batch)
        for key in keys:
            assert np.allclose(sharded.read_weights(key), single.read_weights(key))


class TestClusterCheckpoint:
    def _train(self, server, keys, batch):
        server.pull(keys, batch)
        server.maintain(batch)
        server.push(keys, grads(len(keys)), batch)

    def test_barrier_checkpoint_all_nodes(self):
        server, *_ = make_server()
        self._train(server, list(range(12)), 0)
        server.barrier_checkpoint()
        assert server.global_completed_checkpoint == 0
        for node in server.nodes:
            assert node.coordinator.last_completed == 0

    def test_checkpoint_without_training_rejected(self):
        server, *_ = make_server()
        with pytest.raises(CheckpointError):
            server.request_checkpoint()

    def test_global_checkpoint_is_minimum(self):
        server, *_ = make_server(num_nodes=2)
        self._train(server, list(range(8)), 0)
        server.barrier_checkpoint()
        # One node completes a later checkpoint on its own.
        self._train(server, list(range(8)), 1)
        server.nodes[0].coordinator.request(1)
        server.nodes[0].cache.complete_pending_checkpoints()
        assert server.global_completed_checkpoint == 0


class TestClusterRecovery:
    def _train(self, server, keys, batch):
        server.pull(keys, batch)
        server.maintain(batch)
        server.push(keys, grads(len(keys)), batch)

    def test_recover_to_global_checkpoint(self):
        server, server_config, cache_config = make_server()
        keys = list(range(20))
        for batch in range(3):
            self._train(server, keys, batch)
        server.barrier_checkpoint()
        snapshot = server.state_snapshot()
        for batch in range(3, 6):
            self._train(server, keys, batch)
        pools = server.crash()
        recovered, reports = OpenEmbeddingServer.recover(
            pools, server_config, cache_config
        )
        assert recovered.global_completed_checkpoint == 2
        assert len(reports) == 3
        restored = recovered.state_snapshot()
        assert set(restored) == set(snapshot)
        for key, weights in snapshot.items():
            assert np.array_equal(restored[key], weights)

    def test_recover_with_straggler_node(self):
        """A node that completed a later checkpoint still recovers to
        the cluster-wide minimum, thanks to the external barrier."""
        server, server_config, cache_config = make_server(num_nodes=2)
        keys = list(range(16))
        self._train(server, keys, 0)
        server.barrier_checkpoint()
        snapshot = server.state_snapshot()
        self._train(server, keys, 1)
        # Node 0 races ahead with its own checkpoint of batch 1.
        server.nodes[0].coordinator.request(1)
        server.nodes[0].cache.complete_pending_checkpoints()
        self._train(server, keys, 2)
        pools = server.crash()
        recovered, __ = OpenEmbeddingServer.recover(pools, server_config, cache_config)
        assert recovered.global_completed_checkpoint == 0
        restored = recovered.state_snapshot()
        for key, weights in snapshot.items():
            assert np.array_equal(restored[key], weights)

    def test_recover_pool_count_mismatch(self):
        server, server_config, cache_config = make_server()
        pools = server.crash()
        with pytest.raises(RecoveryError):
            OpenEmbeddingServer.recover(pools[:2], server_config, cache_config)

    def test_recover_without_any_checkpoint(self):
        server, server_config, cache_config = make_server()
        self._train(server, list(range(8)), 0)
        pools = server.crash()
        with pytest.raises(RecoveryError):
            OpenEmbeddingServer.recover(pools, server_config, cache_config)

    def test_training_resumes_after_recovery(self):
        server, server_config, cache_config = make_server()
        keys = list(range(10))
        self._train(server, keys, 0)
        server.barrier_checkpoint()
        pools = server.crash()
        recovered, __ = OpenEmbeddingServer.recover(pools, server_config, cache_config)
        self._train(recovered, keys, 1)
        assert recovered.latest_completed_batch == 1


class TestAggregates:
    def test_miss_rate_aggregation(self):
        server, *_ = make_server(num_nodes=2, capacity_entries=2)
        keys = list(range(30))
        for batch in range(3):
            server.pull(keys, batch)
            server.maintain(batch)
        assert 0.0 < server.aggregate_miss_rate() <= 1.0

    def test_num_entries_across_shards(self):
        server, *_ = make_server()
        server.pull(list(range(50)), 0)
        assert server.num_entries == 50
