"""Chaos soak: hostile workers vs the PS defense layer.

Acceptance (ISSUE 10): with ``f`` Byzantine workers out of
``n >= 3f + 2``, trimmed-mean or coordinate-median aggregation keeps
held-out AUC / log-loss inside a pinned envelope of the synchronous
fault-free baseline, while plain mean under the *same* seeded injection
demonstrably diverges; no pull is ever admitted beyond the staleness
bound; and a quiesced async checkpoint recovers batch-consistently
through the existing crash-recovery path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.server import OpenEmbeddingServer
from repro.core.staleness import StalenessController
from repro.dlrm.async_trainer import AsynchronousTrainer
from repro.dlrm.optimizers import Adam
from repro.errors import StalenessError
from repro.failure.injection import WorkerFaultProfile, hostile_fleet
from repro.obs.registry import MetricsRegistry

from tests.harness.async_chaos import (
    BATCH,
    DIM,
    build_dataset,
    build_model,
    build_server,
    evaluate,
    run_async,
    run_sync_baseline,
)

WORKERS = 6  # n >= 3f + 2 for f = 1
F = 1
STEPS = 180
SCALE = 6.0  # sign-flip amplification: unmistakably hostile
BOUND = 3

# Pinned envelope (seeded runs are exactly reproducible; observed
# values: sync auc .837 / logloss .503, robust hostile auc .74-.76,
# mean hostile auc .55).
HONEST_AUC_SLACK = 0.03
ROBUST_AUC_FLOOR = 0.70
ROBUST_AUC_SLACK = 0.12
ROBUST_LOGLOSS_CEIL = 0.65
MEAN_AUC_CEIL = 0.62
DEFENSE_MARGIN = 0.08  # robust must beat mean by at least this much


def byzantine_fleet(**overrides):
    kwargs = dict(scale=SCALE, duplicate_prob=0.1, delay_prob=0.1, seed=7)
    kwargs.update(overrides)
    return hostile_fleet(WORKERS, F, "sign_flip", **kwargs)


@pytest.fixture(scope="module")
def sync_baseline():
    return run_sync_baseline(batches=STEPS)


@pytest.fixture(scope="module")
def hostile_runs():
    """Same fleet, same seeds — only the aggregator differs."""
    return {
        agg: run_async(
            steps=STEPS,
            workers=WORKERS,
            staleness=1,
            staleness_bound=BOUND,
            aggregator=agg,
            f=F,
            fleet=byzantine_fleet(),
        )
        for agg in ("trimmed_mean", "median", "mean")
    }


class TestConvergenceEnvelope:
    def test_sync_baseline_converged(self, sync_baseline):
        assert sync_baseline["auc"] > 0.80
        assert sync_baseline["logloss"] < 0.55

    def test_honest_async_within_tight_envelope(self, sync_baseline):
        run = run_async(
            steps=STEPS,
            workers=WORKERS,
            staleness=1,
            staleness_bound=BOUND,
            aggregator="trimmed_mean",
            f=F,
        )
        assert run.metrics["auc"] >= sync_baseline["auc"] - HONEST_AUC_SLACK
        assert run.metrics["logloss"] <= sync_baseline["logloss"] + HONEST_AUC_SLACK

    @pytest.mark.parametrize("agg", ["trimmed_mean", "median"])
    def test_robust_aggregation_survives_byzantine_minority(
        self, hostile_runs, sync_baseline, agg
    ):
        metrics = hostile_runs[agg].metrics
        assert metrics["auc"] >= ROBUST_AUC_FLOOR
        assert metrics["auc"] >= sync_baseline["auc"] - ROBUST_AUC_SLACK
        assert metrics["logloss"] <= ROBUST_LOGLOSS_CEIL
        assert hostile_runs[agg].stats.byzantine_pushes > 0  # injection ran

    def test_mean_demonstrably_diverges_under_same_injection(
        self, hostile_runs
    ):
        """The ablation: defense off, identical injection, model ruined."""
        mean_auc = hostile_runs["mean"].metrics["auc"]
        assert mean_auc <= MEAN_AUC_CEIL
        for agg in ("trimmed_mean", "median"):
            assert (
                hostile_runs[agg].metrics["auc"] - mean_auc >= DEFENSE_MARGIN
            )

    def test_duplicates_and_delays_were_absorbed(self, hostile_runs):
        run = hostile_runs["trimmed_mean"]
        assert run.stats.duplicate_pushes > 0
        assert run.stats.delayed_pushes > 0
        dropped = sum(
            node.aggregation.stats.duplicates_dropped
            for node in run.server.nodes
        )
        # Every duplicated push was sent to every shard holding its keys
        # and absorbed by the (worker_id, seq) dedup window.
        assert dropped > 0


class TestBoundedStalenessInvariant:
    @pytest.fixture(scope="class")
    def straggler_run(self):
        fleet = byzantine_fleet(duplicate_prob=0.0, delay_prob=0.0)
        for w in (1, 2):
            fleet[w] = WorkerFaultProfile(
                straggle_prob=0.4, straggle_steps=24, seed=7
            )
        registry = MetricsRegistry()
        run = run_async(
            steps=240,
            workers=WORKERS,
            staleness=1,
            staleness_bound=2,
            aggregator="trimmed_mean",
            f=F,
            fleet=fleet,
            registry=registry,
        )
        run.server.collect_metrics(registry)
        return run, registry

    def test_stragglers_get_rejected_then_fast_forward(self, straggler_run):
        run, __ = straggler_run
        assert run.stats.straggle_skips > 0
        assert run.stats.staleness_rejects > 0
        assert run.stats.skipped_batches > 0
        assert set(run.stats.rejects_by_worker) <= {1, 2}  # only stragglers

    def test_no_pull_admitted_beyond_bound(self, straggler_run):
        run, __ = straggler_run
        for node in run.server.nodes:
            controller = node.staleness
            assert controller.rejected + run.stats.staleness_rejects >= 0
            assert controller.max_admitted_lag() <= 2
            assert all(lag <= 2 for __, lag in controller.admitted_lags)

    def test_metrics_surface_admission_and_folds(self, straggler_run):
        run, registry = straggler_run
        rejected = sum(
            m.value
            for name, __, m in registry.items()
            if name == "repro_async_pulls_rejected"
        )
        folds = sum(
            m.value
            for name, __, m in registry.items()
            if name == "repro_async_aggregator_folds"
        )
        assert rejected > 0
        assert folds > 0
        assert (
            registry.counter("repro_async_staleness_rejects_total").value
            == run.stats.staleness_rejects
        )
        assert (
            registry.counter("repro_async_straggle_steps_total").value
            == run.stats.straggle_skips
        )

    def test_still_converges_despite_rejections(self, straggler_run):
        run, __ = straggler_run
        assert run.metrics["auc"] >= 0.65
        assert run.metrics["logloss"] < np.log(2)

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # worker
                st.integers(min_value=-1, max_value=40),  # progress
            ),
            max_size=200,
        ),
        bound=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_controller_invariant_over_arbitrary_interleavings(
        self, ops, bound
    ):
        """Hypothesis: whatever the interleaving of pulls, every ADMITTED
        pull has lag <= bound, and rejected pulls never advance the
        progress vector."""
        controller = StalenessController(bound)
        for worker, progress in ops:
            before = dict(controller.last_pull)
            try:
                controller.admit_pull(worker, progress)
            except StalenessError as exc:
                assert exc.lag > bound
                assert controller.last_pull == before
        assert controller.max_admitted_lag() <= bound
        assert all(lag <= bound for __, lag in controller.admitted_lags)
        assert controller.admitted == len(controller.admitted_lags)


class TestQuiescedCheckpointRecovery:
    def test_async_checkpoint_recovers_through_crash_path(self):
        """Quiesce -> checkpoint -> crash -> recover: bitwise state, and
        training continues on the recovered cluster."""
        dataset = build_dataset()
        server = build_server(
            staleness_bound=BOUND, aggregator="trimmed_mean",
            workers=WORKERS, f=F,
        )
        model = build_model()
        trainer = AsynchronousTrainer(
            server, model, dataset,
            num_workers=WORKERS, batch_size=BATCH, staleness=2,
            dense_optimizer=Adam(1e-2), worker_faults=byzantine_fleet(),
        )
        trainer.run_steps(60)
        missed = trainer.checkpoint(quiesce=True)
        assert missed == 0
        assert trainer.pending_pushes == 0
        assert sum(n.aggregation.pending for n in server.nodes) == 0
        snapshot = {
            k: np.array(v, copy=True)
            for k, v in server.state_snapshot().items()
        }

        pools = server.crash()
        recovered, reports = OpenEmbeddingServer.recover(
            pools, server.server_config, server.cache_config, server.optimizer
        )
        restored = recovered.state_snapshot()
        assert set(restored) == set(snapshot)
        for key in snapshot:
            assert np.array_equal(restored[key], snapshot[key])
        assert all(r.entries_recovered > 0 for r in reports)

        # The recovered cluster keeps its defenses and keeps training.
        assert all(n.staleness.bound == BOUND for n in recovered.nodes)
        assert all(n.aggregation is not None for n in recovered.nodes)
        resumed = AsynchronousTrainer(
            recovered, model, dataset,
            num_workers=WORKERS, batch_size=BATCH, staleness=2,
            dense_optimizer=Adam(1e-2), worker_faults=byzantine_fleet(),
        )
        losses = resumed.run_steps(12)
        assert losses and all(np.isfinite(l) for l in losses)
        metrics = evaluate(recovered, model, dataset)
        assert metrics["logloss"] < np.log(2)
