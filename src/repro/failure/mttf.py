"""Checkpoint-interval planning via Young's formula.

Section VI-A: *"According to Young's formula and the mean time to
failure reporting by Facebook, we set the checkpoint interval to be 20
minutes"*. Young (1974): the optimum interval between checkpoints is

    ``T_opt = sqrt(2 * C * MTTF)``

where ``C`` is the cost of taking one checkpoint and ``MTTF`` the mean
time to failure. With near-zero-cost batch-aware checkpoints the
formula degenerates, so the paper keeps a fixed operational interval;
these helpers let users reproduce that reasoning and budget expected
lost work.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError


def young_interval_seconds(checkpoint_cost_seconds: float, mttf_seconds: float) -> float:
    """Young's optimal checkpoint interval ``sqrt(2 * C * MTTF)``."""
    if checkpoint_cost_seconds <= 0:
        raise ConfigError("checkpoint cost must be positive")
    if mttf_seconds <= 0:
        raise ConfigError("MTTF must be positive")
    return math.sqrt(2.0 * checkpoint_cost_seconds * mttf_seconds)


def expected_lost_work_seconds(interval_seconds: float, mttf_seconds: float) -> float:
    """Expected re-training time lost per failure.

    A failure lands uniformly inside the current interval, so on
    average ``interval / 2`` of work is lost (plus whatever recovery
    takes, accounted separately).
    """
    if interval_seconds <= 0 or mttf_seconds <= 0:
        raise ConfigError("interval and MTTF must be positive")
    return interval_seconds / 2.0


def expected_total_overhead_seconds(
    run_seconds: float,
    interval_seconds: float,
    checkpoint_cost_seconds: float,
    mttf_seconds: float,
    recovery_seconds: float,
) -> float:
    """Expected overhead of a run: checkpoint pauses + failure losses.

    ``(#checkpoints * C) + (#expected failures * (interval/2 + R))`` —
    the quantity the 20-minute default trades off for the measured
    checkpoint cost and recovery time.
    """
    if run_seconds <= 0:
        raise ConfigError("run length must be positive")
    checkpoints = run_seconds / interval_seconds
    failures = run_seconds / mttf_seconds
    lost = expected_lost_work_seconds(interval_seconds, mttf_seconds)
    return checkpoints * checkpoint_cost_seconds + failures * (
        lost + recovery_seconds
    )


def sample_failure_times(
    mttf_seconds: float, horizon_seconds: float, seed: int = 0
) -> tuple[float, ...]:
    """Poisson-process failure instants on ``[0, horizon_seconds)``.

    Inter-arrival gaps are exponential with mean ``mttf_seconds``
    (memoryless — a node that just survived a kill is no safer than a
    fresh one). The whole schedule is a deterministic function of
    ``seed``, so a chaos soak and its fault-free reference replay agree
    on *when* the faults would have fired even though only one of them
    actually injects the kills. Failure times land anywhere in
    continuous simulated time, i.e. mid-batch, not at tidy barriers.
    """
    if mttf_seconds <= 0:
        raise ConfigError("MTTF must be positive")
    if horizon_seconds <= 0:
        raise ConfigError("horizon must be positive")
    rng = np.random.default_rng((seed, 0xFA33))
    times: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(mttf_seconds))
        if t >= horizon_seconds:
            break
        times.append(t)
    return tuple(times)
