"""Bounded-staleness admission control for asynchronous training.

Synchronous training (the paper's choice, Section II) bounds gradient
staleness structurally: every worker trains the same batch and waits at
the barrier. Asynchronous training removes the barrier, so staleness
must be bounded *at the parameter server* instead. Each PS node runs a
:class:`StalenessController` that tracks a per-worker progress vector
(batches completed, as reported on every pull, and batches pushed) and
admits a pull only while the caller is within ``bound`` batches of the
slowest *other* admitted worker:

    frontier = min(progress of every other tracked worker)
    admit    iff  frontier - caller_progress <= bound

A worker that straggles past the bound gets a typed
:class:`~repro.errors.StalenessError` — its basis is too old for the
gradient it would eventually push to be foldable — and must
fast-forward (abandon the stale cursor, re-sync progress) before
retrying. Anonymous pulls (``worker_id=None`` / ``-1`` on the wire:
the synchronous trainers, the serving tier, migration) bypass admission
entirely, which keeps every pre-existing flow byte-identical.

The controller records every admission decision in ``admitted_lags``
(bounded ring) so property tests can assert the invariant *no pull was
ever admitted beyond lag k* over arbitrary interleavings.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError, StalenessError

__all__ = ["StalenessController"]

#: How many admission records :attr:`StalenessController.admitted_lags`
#: retains for invariant checking; old records age out FIFO.
ADMISSION_LOG_LIMIT = 4096


class StalenessController:
    """Per-node progress vectors + the bounded-staleness admission check.

    Args:
        bound: max admissible lag ``k`` in batches behind the slowest
            other tracked worker; ``None`` disables admission (progress
            is still tracked for observability).
    """

    def __init__(self, bound: int | None = None):
        if bound is not None and bound < 0:
            raise ConfigError(f"staleness bound must be >= 0, got {bound}")
        self.bound = bound
        #: worker_id -> highest progress carried by an *admitted* pull.
        self.last_pull: dict[int, int] = {}
        #: worker_id -> highest batch_id folded from a push.
        self.last_push: dict[int, int] = {}
        self.admitted = 0
        self.rejected = 0
        #: ``(worker_id, lag)`` per admission, for invariant tests.
        self.admitted_lags: deque[tuple[int, int]] = deque(
            maxlen=ADMISSION_LOG_LIMIT
        )

    def frontier(self, worker_id: int | None = None) -> int | None:
        """Slowest tracked progress, excluding ``worker_id``.

        ``None`` while no *other* worker has been admitted — a lone
        worker can never be stale relative to itself.
        """
        others = [
            progress
            for wid, progress in self.last_pull.items()
            if wid != worker_id
        ]
        return min(others) if others else None

    def admit_pull(self, worker_id: int | None, progress: int | None) -> None:
        """Admit or reject one pull; records progress on admission.

        Raises:
            StalenessError: the caller's progress is more than
                :attr:`bound` batches behind the slowest other tracked
                worker.
        """
        if worker_id is None or worker_id < 0:
            return  # anonymous: pre-staleness semantics
        progress = 0 if progress is None or progress < 0 else int(progress)
        frontier = self.frontier(worker_id)
        lag = 0 if frontier is None else max(0, frontier - progress)
        if self.bound is not None and lag > self.bound:
            self.rejected += 1
            raise StalenessError(
                f"worker {worker_id} progress {progress} is {lag} batches "
                f"behind the admitted frontier {frontier} (bound {self.bound})",
                worker_id=worker_id,
                lag=lag,
                bound=self.bound,
            )
        self.admitted += 1
        self.admitted_lags.append((int(worker_id), int(lag)))
        known = self.last_pull.get(worker_id, -1)
        if progress > known:
            self.last_pull[worker_id] = progress

    def record_push(self, worker_id: int | None, batch_id: int) -> None:
        """Track the highest batch a worker has pushed (observability)."""
        if worker_id is None or worker_id < 0:
            return
        known = self.last_push.get(worker_id, -1)
        if batch_id > known:
            self.last_push[worker_id] = int(batch_id)

    def max_admitted_lag(self) -> int:
        """Largest lag ever admitted (0 when nothing was admitted)."""
        return max((lag for __, lag in self.admitted_lags), default=0)

    def snapshot(self) -> dict:
        """Progress vectors + counters, for checkpoints and debugging."""
        return {
            "bound": self.bound,
            "last_pull": dict(self.last_pull),
            "last_push": dict(self.last_push),
            "admitted": self.admitted,
            "rejected": self.rejected,
        }
