"""DRAM hash index: key -> tagged handle -> entry.

Figure 4/5: every request thread consults the *DRAM-based Hash Index* to
locate an entry in either DRAM or PMem; the stored value is a tagged
pointer whose low bit is the location. The index itself is volatile —
after a crash it is reconstructed from the PMem scan
(:mod:`repro.core.recovery`).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.entry import EmbeddingEntry, EntryArena, Location, pack_handle, unpack_handle
from repro.errors import ServerError


class HashIndex:
    """Key -> tagged-handle map over an entry arena.

    All mutations keep the handle's tag bit in sync with the entry's
    ``location`` field; :meth:`validate` checks that invariant.
    """

    def __init__(self) -> None:
        self._handles: dict[int, int] = {}
        self._arena = EntryArena()

    def __len__(self) -> int:
        return len(self._handles)

    def __contains__(self, key: int) -> bool:
        return key in self._handles

    def find(self, key: int) -> EmbeddingEntry | None:
        """Look up ``key``; returns None when absent (Algorithm 1 ``find``)."""
        handle = self._handles.get(key)
        if handle is None:
            return None
        slot, __ = unpack_handle(handle)
        return self._arena.get(slot)

    def location_of(self, key: int) -> Location:
        """Read the tag bit without dereferencing the entry.

        Raises:
            KeyError: unknown key.
        """
        __, location = unpack_handle(self._handles[key])
        return location

    def insert(self, entry: EmbeddingEntry) -> None:
        """Register a new entry.

        Raises:
            ServerError: the key is already present.
        """
        if entry.key in self._handles:
            raise ServerError(f"key {entry.key} already indexed")
        slot = self._arena.alloc(entry)
        self._handles[entry.key] = pack_handle(slot, entry.location)

    def set_location(self, entry: EmbeddingEntry, location: Location) -> None:
        """Flip the entry's location and its handle's tag bit together."""
        if entry.key not in self._handles:
            raise ServerError(f"key {entry.key} not indexed")
        entry.location = location
        self._handles[entry.key] = pack_handle(entry.slot, location)

    def remove(self, key: int) -> None:
        """Drop ``key`` entirely (entry leaves the node)."""
        handle = self._handles.pop(key, None)
        if handle is None:
            raise KeyError(key)
        slot, __ = unpack_handle(handle)
        self._arena.free(slot)

    def entries(self) -> Iterator[EmbeddingEntry]:
        """Iterate all indexed entries (order unspecified)."""
        for handle in self._handles.values():
            slot, __ = unpack_handle(handle)
            yield self._arena.get(slot)

    def keys(self) -> Iterator[int]:
        return iter(self._handles)

    def validate(self) -> None:
        """Check tag-bit/entry consistency; used by tests."""
        for key, handle in self._handles.items():
            slot, location = unpack_handle(handle)
            entry = self._arena.get(slot)
            if entry.key != key:
                raise ServerError(f"handle for {key} resolves to entry {entry.key}")
            if entry.location != location:
                raise ServerError(
                    f"tag bit {location.name} disagrees with entry location "
                    f"{entry.location.name} for key {key}"
                )
