"""Satellite: async == sync, bitwise, when every async knob is neutral.

At ``staleness=0`` with one worker, a staleness bound of ``k=0`` and the
``mean`` aggregator (identity for single-contribution folds), the
asynchronous trainer performs the *exact* operation sequence of the
synchronous trainer: pull, maintain, compute, push, dense step. The
first-class machinery — admission checks on every pull, worker identity
and seq on every push, the aggregation buffer — must therefore be
bit-transparent, and must stay so over RPC and over a lossy wire with
retries (the dedup window absorbing replays exactly-once).
"""

import numpy as np
import pytest

from repro.config import (
    CacheConfig,
    NetworkFaultConfig,
    RetryConfig,
    ServerConfig,
)
from repro.core.optimizers import PSSGD
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.async_trainer import AsynchronousTrainer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam
from repro.dlrm.trainer import SynchronousTrainer
from repro.network.frontend import RemotePSClient

FIELDS, DIM = 5, 8
BATCH = 16
STEPS = 30
SEED = 11

FAULTS = NetworkFaultConfig(
    drop_rate=0.05, duplicate_rate=0.03, corrupt_rate=0.02, seed=5
)
RETRY = RetryConfig(
    max_attempts=12, attempt_timeout_s=0.05, call_timeout_s=30.0, seed=5
)

TRANSPORTS = ("local", "rpc", "faulty")


def configs(*, defended: bool):
    server_config = ServerConfig(
        num_nodes=2,
        embedding_dim=DIM,
        pmem_capacity_bytes=1 << 26,
        seed=SEED,
        staleness_bound=0 if defended else None,
        aggregator="mean" if defended else "none",
        aggregator_workers=1 if defended else 0,
        aggregator_f=0 if defended else None,
    )
    return server_config, CacheConfig(capacity_bytes=64 << 10)


def build_backend(transport: str, *, defended: bool):
    server_config, cache_config = configs(defended=defended)
    if transport == "local":
        return OpenEmbeddingServer(server_config, cache_config, PSSGD(lr=0.05))
    if transport == "rpc":
        return RemotePSClient(server_config, cache_config, PSSGD(lr=0.05))
    return RemotePSClient(
        server_config, cache_config, PSSGD(lr=0.05), faults=FAULTS, retry=RETRY
    )


def model_and_data():
    dataset = CriteoSynthetic(num_fields=FIELDS, vocab_per_field=60, seed=2)
    model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=SEED)
    return model, dataset


@pytest.fixture(scope="module")
def sync_reference():
    """Synchronous run on an undefended in-process server."""
    model, dataset = model_and_data()
    backend = build_backend("local", defended=False)
    trainer = SynchronousTrainer(
        backend, model, dataset,
        num_workers=1, batch_size=BATCH, dense_optimizer=Adam(1e-2),
    )
    trainer.train(STEPS)
    return (
        backend.state_snapshot(),
        [np.array(p, copy=True) for p in model.mlp.parameters()],
    )


def assert_bitwise(backend, model, sync_reference):
    ref_state, ref_params = sync_reference
    state = backend.state_snapshot()
    assert set(state) == set(ref_state)
    for key in ref_state:
        assert np.array_equal(state[key], ref_state[key]), f"key {key} differs"
    for got, want in zip(model.mlp.parameters(), ref_params):
        assert np.array_equal(got, want)


class TestAsyncVsSyncBitwise:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_k0_mean_single_worker_is_bitwise_sync(
        self, transport, sync_reference
    ):
        model, dataset = model_and_data()
        backend = build_backend(transport, defended=True)
        trainer = AsynchronousTrainer(
            backend, model, dataset,
            num_workers=1, batch_size=BATCH, staleness=0,
            dense_optimizer=Adam(1e-2),
        )
        # The defended backend auto-enables identity tracking; every
        # pull passes the k=0 admission gate, every push crosses the
        # mean aggregator as an identity fold.
        assert trainer.track_progress
        trainer.run_steps(STEPS)
        assert_bitwise(backend, model, sync_reference)
        if transport == "faulty":
            reliability = backend.reliability()
            assert reliability.faults_injected > 0  # the wire was lossy

    def test_admission_and_identity_are_bit_transparent_multiworker(self):
        """Progress tracking alone (no aggregation) must not change a
        single float of a multi-worker async run."""
        model_a, dataset = model_and_data()
        plain = build_backend("local", defended=False)
        baseline = AsynchronousTrainer(
            plain, model_a, dataset,
            num_workers=3, batch_size=BATCH, staleness=2,
            dense_optimizer=Adam(1e-2),
        )
        assert not baseline.track_progress
        baseline.run_steps(STEPS)

        model_b, dataset = model_and_data()
        tracked_backend = OpenEmbeddingServer(
            ServerConfig(
                num_nodes=2, embedding_dim=DIM,
                pmem_capacity_bytes=1 << 26, seed=SEED,
                staleness_bound=10_000,  # never rejects
            ),
            CacheConfig(capacity_bytes=64 << 10),
            PSSGD(lr=0.05),
        )
        tracked = AsynchronousTrainer(
            tracked_backend, model_b, dataset,
            num_workers=3, batch_size=BATCH, staleness=2,
            dense_optimizer=Adam(1e-2),
        )
        assert tracked.track_progress
        tracked.run_steps(STEPS)

        a, b = plain.state_snapshot(), tracked_backend.state_snapshot()
        assert set(a) == set(b)
        for key in a:
            assert np.array_equal(a[key], b[key])
        for pa, pb in zip(model_a.mlp.parameters(), model_b.mlp.parameters()):
            assert np.array_equal(pa, pb)
        assert all(
            node.staleness.admitted > 0 for node in tracked_backend.nodes
        )
