"""Extension: recovery vs hot-standby replication.

The paper chooses checkpoint *recovery* for reliability; the classic
alternative is synchronous *replication*. This bench quantifies both
sides of the trade at the paper's scale:

* downtime per failure: Figure 14's recovery (380 s, scaling with the
  table) vs a constant sub-second failover;
* what replication costs: 2x PS hardware (Table V pricing) and a
  doubled update path;
* and a live demo that failover really loses nothing (post-checkpoint
  batches included), where recovery by design rolls back.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import Headline, Param, register
from repro.config import CacheConfig, ServerConfig
from repro.core.replication import (
    FAILOVER_SECONDS,
    ReplicatedPSNode,
    replication_vs_recovery_seconds,
)
from repro.core.optimizers import PSSGD
from repro.cost.pricing import PMEM_OE_DEPLOYMENT, cost_per_epoch

DIM = 8
PAPER_ENTRIES = 2_100_000_000


def live_demo():
    node = ReplicatedPSNode(
        0,
        ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 24, seed=6),
        CacheConfig(capacity_bytes=32 << 10),
        PSSGD(lr=0.1),
    )
    keys = list(range(500))

    def cycle(batch):
        node.pull(keys, batch)
        node.maintain(batch)
        node.push(keys, np.full((len(keys), DIM), 0.1, dtype=np.float32), batch)

    cycle(0)
    node.barrier_checkpoint(0)
    cycle(1)  # work past the checkpoint
    live_state = node.state_snapshot()
    node.verify_replicas_identical()
    node.fail_primary()
    elapsed = node.failover()
    preserved = all(
        np.array_equal(node.state_snapshot()[k], live_state[k]) for k in live_state
    )
    return elapsed, preserved


def test_ablation_replication_vs_recovery(benchmark, report):
    def run():
        failover, recovery = replication_vs_recovery_seconds(
            entries=PAPER_ENTRIES, entry_bytes=256
        )
        return failover, recovery, live_demo()

    failover, recovery, (demo_elapsed, demo_preserved) = run_once(benchmark, run)
    report.title(
        "ablation_replication",
        "Extension: checkpoint recovery vs hot-standby replication",
    )
    report.row("downtime per failure: recovery", "380.2 s (Fig 14)", f"{recovery:.1f} s")
    report.row("downtime per failure: failover", "O(seconds)", f"{failover:.1f} s")
    report.row("failover speedup", "-", f"{recovery / failover:.0f}x")
    single = cost_per_epoch(PMEM_OE_DEPLOYMENT, 5.33)
    report.row(
        "PS cost per epoch (1x -> 2x)",
        "replication doubles Table V",
        f"${single:.1f} -> ${2 * single:.1f}",
    )
    report.line()
    report.line(
        f"  live demo: failover took {demo_elapsed:.1f} s (simulated) and "
        f"preserved post-checkpoint work: {demo_preserved}"
    )

    assert failover == FAILOVER_SECONDS
    assert recovery / failover > 100
    assert demo_preserved


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if not metrics["demo_preserved"]:
        failures.append("failover lost post-checkpoint work")
    if metrics["speedup_x"] <= 100:
        failures.append(
            f"failover only {metrics['speedup_x']:.0f}x faster than recovery"
        )
    return failures


@register(
    "ablation_replication",
    params=[Param("entries", "int", PAPER_ENTRIES, help="analytic scale")],
    headline={
        "speedup_x": Headline(direction="higher", max_regression=0.05),
        "demo_preserved": Headline(),
    },
    check=_check,
)
def entry(*, entries):
    """Downtime of checkpoint recovery vs hot-standby failover at the
    analytic scale, plus the nothing-lost live failover demo."""
    failover, recovery = replication_vs_recovery_seconds(
        entries=entries, entry_bytes=256
    )
    __, demo_preserved = live_demo()
    return {
        "failover_s": failover,
        "recovery_s": recovery,
        "speedup_x": recovery / failover,
        "demo_preserved": demo_preserved,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("ablation_replication"))
