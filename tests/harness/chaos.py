"""MTTF-driven chaos soak over the hot-failover stack.

Where :mod:`tests.harness.crashpoints` kills the *whole cluster* at a
labelled migration step, this harness kills *individual PS primaries*
at Poisson-distributed instants of simulated time
(:class:`~repro.failure.injection.NodeKillSchedule`) while a
deterministic training workload runs, and lets the availability layer
answer:

* a :class:`~repro.core.failover.FailoverManager` detects each death by
  lease expiry and promotes the shard's synchronous backup
  (:class:`~repro.core.replication.ReplicatedPSNode`);
* over RPC the detection is *client-driven*: the dead shard simply goes
  silent, the worker's call times out (or fast-fails with
  :class:`~repro.errors.NodeDeadError` once the lease verdict is in),
  ``RemotePSClient._ha_call`` reports the timeout and re-issues the
  SAME request after promotion — the service dedup window keeps retried
  pushes exactly-once across the failover;
* a *double fault* (the backup dies before re-replication finishes)
  falls back to the paper's answer — checkpoint recovery — and the lost
  batches are replayed from the deterministic payload stream.

The soak's verdict is the same bitwise bar the crash-point sweep sets:
after K kills the final weights must equal an unsharded fault-free
replay exactly, the Checkpointed Batch ID trail must be monotone, and
every promotion's unavailability must sit under the lease-derived
bound.

One harness drives all three transports (in-process, RPC, RPC over a
lossy :class:`~repro.network.netsim.FaultyLink`) so the kill schedule,
workload, and assertions are shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import ServerConfig
from repro.core.failover import (
    FailoverManager,
    LocalFailoverTransport,
    PromotionReport,
)
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.errors import FailoverError
from repro.failure.injection import NodeKillInjector, NodeKillSchedule
from repro.network.frontend import RemotePSClient
from repro.obs.flightrec import FlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.simulation.clock import SimClock

from tests.harness.crashpoints import (
    DIM,
    FAULTS,
    RETRY,
    RING_VNODES,
    batch_payload,
    cache_config,
    reference_state,
)

#: Probe-channel call budget absorbed into the unavailability bound for
#: RPC transports (the re-probe inside ``handle_timeout`` costs wire
#: time before the lease wait starts).
PROBE_BUDGET_S = 0.5


def replicated_config(
    num_nodes: int, seed: int, lease_s: float
) -> ServerConfig:
    """Ring-partitioned cluster with hot replicas and the given lease."""
    return ServerConfig(
        num_nodes=num_nodes,
        embedding_dim=DIM,
        pmem_capacity_bytes=1 << 26,
        partitioner="ring",
        ring_vnodes=RING_VNODES,
        seed=seed,
        replicas=2,
        lease_s=lease_s,
    )


@dataclass
class SoakResult:
    """Everything one chaos soak observed, for assertions."""

    kills: int
    promotions: list[PromotionReport]
    double_faults: int
    recoveries: int
    #: ``global_completed_checkpoint`` after every batch (including the
    #: replays after a double-fault recovery) — must be non-decreasing.
    checkpoint_trail: list[int]
    final_state: dict[int, np.ndarray]
    reference: dict[int, np.ndarray]
    #: Promised per-promotion ceiling (lease + probe budget + failover).
    unavailability_bound_s: float
    backend: object
    registry: MetricsRegistry
    rebuilds_completed: int = 0
    unavailability_seconds: list[float] = field(default_factory=list)
    #: Kills that landed on a primary that was already dead (the shard
    #: was between death and promotion) — answered by the promotion the
    #: earlier kill triggered, not by one of their own.
    absorbed_kills: int = 0
    #: The soak's flight recorder: dumps were taken at every
    #: declare-dead / promotion / double-fault, and a failed audit
    #: snapshots it into a postmortem artifact.
    recorder: FlightRecorder | None = None


class ChaosSoak:
    """One soak run: workload + kill schedule + failover + assertions.

    The loop polls the kill injector at *operation boundaries inside a
    batch* (before the batch and between pull and push), so a kill lands
    mid-batch and the in-flight push must survive the promotion without
    being lost or double-applied.

    Transport semantics differ deliberately:

    * ``remote``: kills are silent. The client discovers each death
      through an unanswered call and drives promotion itself — the
      tentpole's client-driven path.
    * local (in-process): there is no wire; the "client" and the server
      share a process, so the soak reacts to a kill by immediately
      reporting the timeout (``handle_timeout``), which still pays the
      full lease wait on the shared clock before promoting.

    A double fault from either path crashes the surviving pools and
    recovers in-process (checkpoint recovery does not care which shell
    served the shards); training resumes at the recovered Checkpointed
    Batch ID and replays the lost batches from the deterministic
    payload stream.
    """

    def __init__(
        self,
        *,
        remote: bool = False,
        faulty: bool = False,
        seed: int = 0,
        nodes: int = 3,
        kills: int = 3,
        batches: int = 30,
        checkpoint_every: int = 3,
        lease_s: float = 0.5,
        mttf_s: float = 4.0,
        batch_seconds: float = 1.0,
        schedule: NodeKillSchedule | None = None,
    ):
        if faulty and not remote:
            raise ValueError("fault injection needs the remote backend")
        self.seed = seed
        self.batches = batches
        self.checkpoint_every = checkpoint_every
        self.batch_seconds = batch_seconds
        self.config = replicated_config(nodes, seed, lease_s)
        self.registry = MetricsRegistry()
        self.clock = SimClock()
        self.remote = remote
        self.recorder = FlightRecorder(node="soak", clock=self.clock)
        if remote:
            backend = RemotePSClient(
                self.config,
                cache_config(),
                PSAdagrad(lr=0.05),
                clock=self.clock,
                faults=FAULTS if faulty else None,
                retry=RETRY,
                registry=self.registry,
                recorder=self.recorder,
            )
            manager = backend.enable_failover(self.registry)
            self.local_mode = False
            self.probe_budget_s = PROBE_BUDGET_S
        else:
            backend = OpenEmbeddingServer(
                self.config, cache_config(), PSAdagrad(lr=0.05)
            )
            manager = FailoverManager(
                LocalFailoverTransport(backend),
                self.clock,
                self.config,
                registry=self.registry,
                recorder=self.recorder,
            )
            self.local_mode = True
            self.probe_budget_s = 0.0
        self.backend = backend
        self.manager = manager
        if schedule is None:
            horizon = max(batches * batch_seconds * 4.0, mttf_s * (kills + 2))
            schedule = NodeKillSchedule.poisson(
                mttf_s, horizon, nodes, seed=seed, max_kills=kills
            )
        self.injector = NodeKillInjector(schedule)
        self.trail: list[int] = []
        self.kills_fired = 0
        self.recoveries = 0
        self.double_faults = 0
        self.absorbed_kills = 0
        self._promotions: list[PromotionReport] = []

    # ------------------------------------------------------------------
    # chaos plumbing
    # ------------------------------------------------------------------

    def _node_by_id(self, node_id: int):
        for node in self.backend.nodes:
            if node.node_id == node_id:
                return node
        raise LookupError(f"no node {node_id}")

    def _poll_kills(self) -> None:
        """Fire every kill that is due at the current simulated instant.

        Remote mode stops here: the primary is dead, the shard is
        silent, and the client must notice on its own. Local mode reacts
        immediately (same process — the very next call would observe the
        death), which still pays the lease wait before promotion.
        """
        fired = self.injector.due(self.clock.now)
        for __, victim in fired:
            node = self._node_by_id(victim)
            if not getattr(node, "primary_alive", True):
                self.absorbed_kills += 1
                continue
            kill = getattr(node, "kill_primary", None)
            if kill is not None:
                kill()
        self.kills_fired += len(fired)
        if self.local_mode and fired:
            self._ensure_alive()

    def _ensure_alive(self) -> None:
        """Promote every dead primary (raises FailoverError on a double
        fault — the caller falls back to checkpoint recovery)."""
        for node in list(self.backend.nodes):
            if not getattr(node, "primary_alive", True):
                self.manager.handle_timeout(node.node_id)

    def _recover_from_double_fault(self) -> None:
        """The paper's path: crash the survivors, rebuild from PMem.

        ``OpenEmbeddingServer.recover`` restores every shard to the
        newest globally-completed checkpoint and — because
        ``replicas=2`` — re-wraps each as a freshly re-replicated pair,
        so the recovered cluster regains single-fault tolerance before
        serving. The soak continues in-process afterwards (checkpoint
        recovery is transport-agnostic; state equivalence is what the
        soak asserts).
        """
        self.double_faults += 1
        self.recoveries += 1
        self._promotions.extend(self.manager.promotions)
        pools = [node.crash() for node in self.backend.nodes]
        server, __ = OpenEmbeddingServer.recover(
            pools, self.config, cache_config(), PSAdagrad(lr=0.05)
        )
        self.backend = server
        self.manager = FailoverManager(
            LocalFailoverTransport(server),
            self.clock,
            self.config,
            registry=self.registry,
            recorder=self.recorder,
        )
        self.local_mode = True
        self.probe_budget_s = max(self.probe_budget_s, 0.0)
        self.trail.append(server.global_completed_checkpoint)

    # ------------------------------------------------------------------
    # the soak loop
    # ------------------------------------------------------------------

    def _run_one_batch(self, batch: int) -> None:
        self._poll_kills()
        self.manager.beat()
        keys, grads = batch_payload(self.seed, batch)
        self.backend.pull(keys, batch)
        # Mid-batch kill point: the pull landed, the push has not — a
        # promotion here must serve the push from the backup's mirror of
        # the pull's effects.
        self._poll_kills()
        self.backend.maintain(batch)
        self.backend.push(keys, grads, batch)
        if (batch + 1) % self.checkpoint_every == 0:
            # The checkpoint barrier touches every shard through
            # non-HA surfaces too; promote any still-undetected corpse
            # first so the barrier only ever sees serving primaries.
            self._ensure_alive()
            self.backend.barrier_checkpoint(batch)
        self.trail.append(self.backend.global_completed_checkpoint)
        self.clock.advance(self.batch_seconds)

    def run(self) -> SoakResult:
        batch = 0
        while batch < self.batches:
            try:
                self._run_one_batch(batch)
            except FailoverError:
                self._recover_from_double_fault()
                # Resume at the recovered Checkpointed Batch ID; the
                # deterministic payloads replay the lost work exactly.
                batch = self.backend.global_completed_checkpoint + 1
                continue
            batch += 1
        # Flush any kill scheduled before the horizon but after the last
        # batch boundary would have observed it.
        try:
            self._ensure_alive()
        except FailoverError:
            self._recover_from_double_fault()
            for replay in range(
                self.backend.global_completed_checkpoint + 1, self.batches
            ):
                self._run_one_batch(replay)
        if self.backend.global_completed_checkpoint < self.batches - 1:
            self.backend.barrier_checkpoint(self.batches - 1)
        self.trail.append(self.backend.global_completed_checkpoint)
        promotions = self._promotions + self.manager.promotions
        return SoakResult(
            kills=self.kills_fired,
            promotions=promotions,
            double_faults=self.double_faults,
            recoveries=self.recoveries,
            checkpoint_trail=self.trail,
            final_state=self.backend.state_snapshot(),
            reference=reference_state(self.seed, self.batches),
            unavailability_bound_s=self.manager.unavailability_bound_s(
                self.probe_budget_s
            ),
            backend=self.backend,
            registry=self.registry,
            rebuilds_completed=sum(
                1
                for node in self.backend.nodes
                if getattr(node, "backup", None) is not None
            ),
            unavailability_seconds=[
                p.unavailability_seconds for p in promotions
            ],
            absorbed_kills=self.absorbed_kills,
            recorder=self.recorder,
        )


def run_chaos_soak(**kwargs) -> SoakResult:
    """Convenience wrapper: build a :class:`ChaosSoak` and run it."""
    return ChaosSoak(**kwargs).run()


# ----------------------------------------------------------------------
# assertions
# ----------------------------------------------------------------------


def assert_soak_survived(
    result: SoakResult, *, min_kills: int, artifact_dir=None
) -> None:
    """The chaos soak's full verdict in one call.

    Bitwise equality against the fault-free unsharded replay (no update
    lost, none double-applied, across every promotion and recovery),
    monotone Checkpointed Batch IDs, at least ``min_kills`` kills
    actually delivered, every kill answered (promotion or checkpoint
    recovery), and every promotion's unavailability under the
    lease-derived bound.

    A failed audit is not a bare assert: the soak's flight recorder is
    dumped to a postmortem JSON artifact (``artifact_dir``, default
    ``tests/artifacts/``) and the artifact path is appended to the
    assertion message — the seconds around the failure travel with the
    failure.
    """
    try:
        _audit_soak(result, min_kills=min_kills)
    except AssertionError as exc:
        path = _write_postmortem(result, str(exc), artifact_dir)
        if path is None:
            raise
        raise AssertionError(f"{exc}\npostmortem artifact: {path}") from None


def _audit_soak(result: SoakResult, *, min_kills: int) -> None:
    from tests.harness.crashpoints import (
        assert_bitwise_equal,
        assert_monotone_checkpoints,
    )

    assert result.kills >= min_kills, (
        f"schedule delivered only {result.kills} kills, wanted {min_kills}"
    )
    assert_bitwise_equal(result.final_state, result.reference)
    assert_monotone_checkpoints(result.checkpoint_trail)
    answered = (
        len(result.promotions) + result.recoveries + result.absorbed_kills
    )
    assert answered >= result.kills, (
        f"{result.kills} kills but only {answered} answered"
    )
    for seconds in result.unavailability_seconds:
        assert seconds <= result.unavailability_bound_s + 1e-9, (
            f"unavailability {seconds:.3f}s exceeds bound "
            f"{result.unavailability_bound_s:.3f}s"
        )


def _write_postmortem(result: SoakResult, reason: str, artifact_dir) -> str | None:
    """Dump the soak's flight recorder next to the failure; returns the
    artifact path (None when the soak ran without a recorder)."""
    import json
    from pathlib import Path

    if result.recorder is None:
        return None
    dump = result.recorder.dump("soak_audit_failed", reason=reason)
    artifact = {
        "reason": reason,
        "kills": result.kills,
        "promotions": len(result.promotions),
        "double_faults": result.double_faults,
        "recoveries": result.recoveries,
        "checkpoint_trail": result.checkpoint_trail,
        "unavailability_seconds": result.unavailability_seconds,
        "unavailability_bound_s": result.unavailability_bound_s,
        "flightrec": dump,
    }
    directory = Path(artifact_dir) if artifact_dir is not None else (
        Path(__file__).resolve().parent.parent / "artifacts"
    )
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "postmortem_chaos_soak.json"
    path.write_text(json.dumps(artifact, indent=2, default=float))
    return str(path)


def percentile(values: list[float], q: float) -> float:
    """Inclusive percentile of a non-empty list (q in [0, 100])."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))
