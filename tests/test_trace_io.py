"""Trace persistence and replay through the simulator."""

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.errors import ConfigError
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace_io import (
    TraceReplayGenerator,
    load_trace,
    record_synthetic_trace,
    save_trace,
)


@pytest.fixture
def batches():
    rng = np.random.default_rng(0)
    return [rng.integers(0, 1000, size=rng.integers(5, 30)) for __ in range(12)]


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, batches):
        path = tmp_path / "trace.npz"
        save_trace(path, batches, num_keys=1000)
        loaded, num_keys = load_trace(path)
        assert num_keys == 1000
        assert len(loaded) == len(batches)
        for original, restored in zip(batches, loaded):
            assert np.array_equal(original, restored)

    def test_ragged_batches(self, tmp_path):
        batches = [np.array([1]), np.array([2, 3, 4]), np.array([], dtype=np.int64)]
        path = tmp_path / "trace.npz"
        save_trace(path, batches, num_keys=10)
        loaded, __ = load_trace(path)
        assert [len(b) for b in loaded] == [1, 3, 0]

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            save_trace(tmp_path / "t.npz", [], num_keys=10)

    def test_out_of_range_keys_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            save_trace(tmp_path / "t.npz", [np.array([99])], num_keys=10)

    def test_not_a_trace_file(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(ConfigError):
            load_trace(path)


class TestReplay:
    def test_replays_in_order(self, batches):
        replay = TraceReplayGenerator(batches, num_keys=1000)
        first = replay.sample_batch_keys(0, deduplicate=False)
        assert np.array_equal(first, batches[0])

    def test_wraps_around(self, batches):
        replay = TraceReplayGenerator(batches, num_keys=1000)
        for __ in range(len(batches) + 1):
            replay.sample_batch_keys(0, deduplicate=False)
        assert replay.wrapped == 1

    def test_worker_batches_consume_sequentially(self, batches):
        replay = TraceReplayGenerator(batches, num_keys=1000)
        worker_batches = replay.sample_worker_batches(3, 0)
        assert len(worker_batches) == 3
        assert np.array_equal(worker_batches[1], np.unique(batches[1]))

    def test_from_file(self, tmp_path, batches):
        path = tmp_path / "trace.npz"
        save_trace(path, batches, num_keys=1000)
        replay = TraceReplayGenerator.from_file(path)
        assert replay.config.num_keys == 1000

    def test_replay_drives_simulator(self, tmp_path):
        """A recorded synthetic trace replayed through the simulator
        produces the same functional counts as the live generator."""
        from repro.config import (
            CacheConfig,
            CheckpointConfig,
            ClusterConfig,
            ServerConfig,
        )
        from repro.simulation.cluster import SystemKind
        from repro.simulation.trainer_sim import TrainingSimulator

        workload_config = WorkloadConfig(
            num_keys=5000, features_per_sample=4, seed=9
        )
        recorded = record_synthetic_trace(
            WorkloadGenerator(workload_config), num_batches=24, batch_size=16
        )
        path = tmp_path / "trace.npz"
        save_trace(path, recorded, num_keys=5000)

        def run(workload):
            sim = TrainingSimulator(
                SystemKind.PMEM_OE,
                ClusterConfig(num_workers=2, batch_size=16),
                ServerConfig(embedding_dim=8, pmem_capacity_bytes=1 << 24),
                CacheConfig(capacity_bytes=64 * 8 * 4),
                CheckpointConfig.none(),
                workload,
            )
            return sim.run(10)

        live = run(TraceReplayGenerator(recorded, 5000))
        replayed = run(TraceReplayGenerator.from_file(path))
        assert live.total_requests == replayed.total_requests
        assert live.miss_rate == replayed.miss_rate
        assert live.sim_seconds == pytest.approx(replayed.sim_seconds)


class TestRecord:
    def test_record_synthetic(self):
        generator = WorkloadGenerator(WorkloadConfig(num_keys=100, features_per_sample=2))
        trace = record_synthetic_trace(generator, num_batches=5, batch_size=8)
        assert len(trace) == 5
        assert all(len(batch) == 16 for batch in trace)

    def test_invalid_count(self):
        generator = WorkloadGenerator()
        with pytest.raises(ConfigError):
            record_synthetic_trace(generator, 0, 8)
