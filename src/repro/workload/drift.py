"""Temporal drift in the access distribution (extension).

The paper's production trace spans 147 days; real CTR hot sets rotate
as catalogues, campaigns and user interests move. The synthetic
generator holds its distribution fixed, which flatters any cache. A
:class:`DriftingWorkload` rotates a configurable fraction of the
rank->key mapping at every simulated "day" boundary, so yesterday's hot
keys cool off and fresh keys heat up — the pattern that makes LRU's
recency adaptation (and the paper's frequent retraining) matter.

The drift is deterministic given the seed, so performance runs remain
reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.config import WorkloadConfig
from repro.errors import ConfigError
from repro.workload.distributions import BandedSkewDistribution, TABLE2_BANDS


class DriftingWorkload:
    """A skewed workload whose hot set rotates day by day.

    Drop-in for :class:`~repro.workload.generator.WorkloadGenerator`
    (the training simulator's interface). Time advances with the
    batches drawn: every ``batches_per_day`` *worker* batches start a
    new day, at which point ``drift_fraction`` of rank->key assignments
    are reshuffled among themselves (the mapping stays a bijection; the
    marginal skew is unchanged — only WHICH keys are hot moves).

    Args:
        config: base workload parameters (keys, lookups, skew, seed).
        drift_fraction: share of the key mapping rotated per day.
        batches_per_day: worker batches per simulated day.
    """

    def __init__(
        self,
        config: WorkloadConfig | None = None,
        drift_fraction: float = 0.05,
        batches_per_day: int = 64,
    ):
        if not 0.0 <= drift_fraction <= 1.0:
            raise ConfigError(f"drift_fraction must be in [0, 1], got {drift_fraction}")
        if batches_per_day <= 0:
            raise ConfigError("batches_per_day must be positive")
        self.config = config or WorkloadConfig()
        self.drift_fraction = drift_fraction
        self.batches_per_day = batches_per_day
        self.distribution = BandedSkewDistribution(
            self.config.num_keys,
            TABLE2_BANDS,
            temperature=self.config.skew,
            seed=self.config.seed,
        )
        self._drift_rng = np.random.default_rng((self.config.seed, 0xD21F7))
        self._batches_drawn = 0
        self.day = 0
        self.rotations = 0

    # ------------------------------------------------------------------
    # drift mechanics
    # ------------------------------------------------------------------

    def _advance_time(self, batches: int) -> None:
        self._batches_drawn += batches
        target_day = self._batches_drawn // self.batches_per_day
        while self.day < target_day:
            self.day += 1
            self._rotate()

    def _rotate(self) -> None:
        """Reshuffle ``drift_fraction`` of rank->key assignments."""
        mapping = self.distribution._permutation._rank_to_key
        count = int(round(self.drift_fraction * len(mapping)))
        if count < 2:
            return
        positions = self._drift_rng.choice(len(mapping), size=count, replace=False)
        values = mapping[positions]
        self._drift_rng.shuffle(values)
        mapping[positions] = values
        self.rotations += 1

    # ------------------------------------------------------------------
    # generator interface
    # ------------------------------------------------------------------

    def sample_batch_keys(self, batch_size: int, deduplicate: bool = True) -> np.ndarray:
        """One worker batch; advances simulated time by one batch."""
        if batch_size <= 0:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        raw = self.distribution.sample_keys(
            batch_size * self.config.features_per_sample
        )
        self._advance_time(1)
        if deduplicate:
            return np.unique(raw)
        return raw

    def sample_worker_batches(
        self, num_workers: int, batch_size: int
    ) -> list[np.ndarray]:
        if num_workers <= 0:
            raise ConfigError(f"num_workers must be >= 1, got {num_workers}")
        return [self.sample_batch_keys(batch_size) for __ in range(num_workers)]

    def access_stream(self, num_batches: int, batch_size: int) -> np.ndarray:
        chunks = [
            self.sample_batch_keys(batch_size, deduplicate=False)
            for __ in range(num_batches)
        ]
        return np.concatenate(chunks)

    def current_hot_keys(self, top_ranks: int = 100) -> np.ndarray:
        """The key ids currently holding the hottest ranks."""
        mapping = self.distribution._permutation._rank_to_key
        return np.array(mapping[:top_ranks], copy=True)
