"""Closed-loop online-serving simulation (QPS / tail latency / chaos).

Drives a :class:`~repro.dlrm.hps.HierarchicalPS` tier with a
closed-loop request generator over the simulated device and network
models, producing the p50/p95/p99 read-latency distributions the
serving benchmark reports:

* a **cache hit** costs a client-local DRAM probe
  (:data:`~repro.simulation.device.DRAM_SPEC`);
* a **miss** pays the RPC wire both ways plus a PMem burst read on the
  authoritative shard (:data:`~repro.simulation.device.PMEM_SPEC`).
  When the backend is a :class:`~repro.network.frontend.RemotePSClient`
  sharing the driver's :class:`~repro.simulation.clock.SimClock`, the
  wire time is already charged by the RPC channel and the cost model
  charges only the device side.

:class:`TrainServeSoak` runs the same read loop *while training pushes
and checkpoint barriers land on the same cluster*, recording a
reference copy of the embedding table at every completed checkpoint and
auditing every served row against the reference pinned at the row's
reported Checkpointed Batch ID — the torn-row / staleness-bound check
the consistency contract promises. With ``kill_primary_at`` set it also
kills one serving replica mid-soak and asserts reads keep flowing
through the failover machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.obs.histogram import Histogram
from repro.simulation.clock import SimClock
from repro.simulation.device import DRAM_SPEC, PMEM_SPEC, MemoryDevice
from repro.simulation.network import NetworkModel

#: LookupRequest / LookupResponse fixed header bytes (network.messages).
_REQUEST_HEADER = 16
_RESPONSE_HEADER = 24
#: Wire frame overhead: type + length + crc32.
_FRAME_HEADER = 9


class ServingCostModel:
    """Simulated time per hierarchical-read component.

    Args:
        network: wire model for the client -> shard miss path. Pass
            None when the backend charges its own wire time (the RPC
            transports), so only device time is added here.
        probe_threads: client-side threads probing the hot-row cache.
        device_threads: PS-node device threads serving the store reads.
    """

    def __init__(
        self,
        network: NetworkModel | None = None,
        probe_threads: int = 8,
        device_threads: int = 4,
    ):
        self.dram = MemoryDevice(DRAM_SPEC)
        self.pmem = MemoryDevice(PMEM_SPEC)
        self.network = network
        self.probe_threads = probe_threads
        self.device_threads = device_threads

    def hit_seconds(self, rows: int, row_bytes: int) -> float:
        """Client-local DRAM probe of ``rows`` cached rows."""
        return self.dram.burst_read(rows, row_bytes, self.probe_threads)

    def miss_seconds(self, rows: int, row_bytes: int, flows: int = 1) -> float:
        """Remote fetch: wire (if modelled here) + shard device read."""
        elapsed = self.pmem.burst_read(rows, row_bytes, self.device_threads)
        if self.network is not None and rows:
            request = _FRAME_HEADER + _REQUEST_HEADER + 8 * rows
            response = _FRAME_HEADER + _RESPONSE_HEADER + rows * row_bytes
            elapsed += self.network.transfer_time(request, flows)
            elapsed += self.network.transfer_time(response, flows)
        return elapsed


@dataclass
class ServingReport:
    """One serving run's headline numbers."""

    requests: int
    rows: int
    sim_seconds: float
    latency: Histogram
    hit_latency: Histogram
    miss_latency: Histogram
    hit_rate: float
    cold_rows: int

    @property
    def qps(self) -> float:
        return self.requests / self.sim_seconds if self.sim_seconds else 0.0

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "rows": self.rows,
            "sim_seconds": self.sim_seconds,
            "qps": self.qps,
            "hit_rate": self.hit_rate,
            "cold_rows": self.cold_rows,
            "p50_us": self.latency.p50 * 1e6,
            "p95_us": self.latency.p95 * 1e6,
            "p99_us": self.latency.p99 * 1e6,
            "hit_p99_us": self.hit_latency.p99 * 1e6,
            "miss_p99_us": self.miss_latency.p99 * 1e6,
        }


class ServingLoadDriver:
    """Closed-loop QPS/latency driver over a serving tier.

    One in-flight request at a time (closed loop): sample a key batch
    from ``distribution``, issue ``tier.lookup``, charge the cost model
    for what the lookup actually did (hits probe DRAM, misses pay wire
    + PMem), and record the request's simulated latency.

    Args:
        tier: a :class:`~repro.dlrm.hps.HierarchicalPS` (or any object
            with ``lookup`` + ``stats``).
        distribution: key sampler (``sample_keys(n)``).
        cost_model: see :class:`ServingCostModel`.
        clock: simulated clock; shared with the backend's RPC channels
            when the wire should charge itself.
        batch_keys: rows per request.
        key_offset: added (mod ``num_keys``) to every sampled key —
            switching it mid-run re-targets the hot set, which is how
            the flash-crowd scenario is expressed.
        slo: optional :class:`~repro.obs.SLOTracker`; every request's
            simulated latency feeds the ``serving_p99`` latency
            objective (registered get-or-create with a 2 ms default
            threshold — register it first to pick your own target).
    """

    def __init__(
        self,
        tier,
        distribution,
        cost_model: ServingCostModel,
        clock: SimClock,
        batch_keys: int = 64,
        num_keys: int | None = None,
        key_offset: int = 0,
        slo=None,
    ):
        if batch_keys < 1:
            raise SimulationError(f"batch_keys must be >= 1, got {batch_keys}")
        self.tier = tier
        self.distribution = distribution
        self.cost = cost_model
        self.clock = clock
        self.batch_keys = batch_keys
        self.num_keys = num_keys
        self.key_offset = key_offset
        self.slo = slo
        if slo is not None:
            slo.latency("serving_p99", 2e-3)
        dim = tier.backend.server_config.embedding_dim
        self.row_bytes = dim * 4

    def sample(self) -> np.ndarray:
        keys = np.asarray(self.distribution.sample_keys(self.batch_keys))
        if self.key_offset and self.num_keys:
            keys = (keys + self.key_offset) % self.num_keys
        return keys

    def run(self, requests: int, on_request=None) -> ServingReport:
        """Drive ``requests`` closed-loop lookups; returns the report.

        ``on_request(i)`` (optional) runs before each request — the
        soak hooks train/checkpoint/kill events in there.
        """
        latency = Histogram("serving_latency")
        hit_latency = Histogram("serving_latency_hit")
        miss_latency = Histogram("serving_latency_miss")
        stats = self.tier.stats
        t_start = self.clock.now
        rows = cold = 0
        for i in range(requests):
            if on_request is not None:
                on_request(i)
            keys = self.sample()
            hits0, remote0 = stats.cache_hits, stats.remote_rows
            t0 = self.clock.now
            self.tier.lookup(keys)
            hits = stats.cache_hits - hits0
            remote = stats.remote_rows - remote0
            elapsed = 0.0
            if hits:
                elapsed += self.cost.hit_seconds(hits, self.row_bytes)
            if remote:
                elapsed += self.cost.miss_seconds(remote, self.row_bytes)
            if elapsed:
                self.clock.advance(elapsed)
            request_latency = self.clock.now - t0
            latency.observe(request_latency)
            if self.slo is not None:
                self.slo.observe_latency("serving_p99", request_latency)
            if remote == 0:
                hit_latency.observe(request_latency)
            else:
                miss_latency.observe(request_latency)
            rows += len(keys)
        cold = stats.cold_rows
        return ServingReport(
            requests=requests,
            rows=rows,
            sim_seconds=self.clock.now - t_start,
            latency=latency,
            hit_latency=hit_latency,
            miss_latency=miss_latency,
            hit_rate=stats.hit_rate,
            cold_rows=cold,
        )


@dataclass
class SoakVerdict:
    """Consistency audit of a train-while-serve soak."""

    requests: int
    rows_audited: int
    torn_rows: int
    stale_rows: int
    max_staleness: int
    checkpoints: int
    kills: int
    report: ServingReport | None = None
    served_through_kill: bool = False
    snapshots_seen: list[int] = field(default_factory=list)


class TrainServeSoak:
    """Serve reads while training mutates the same cluster.

    Every ``train_every`` requests one training step (pull + push)
    lands on the backend; every ``checkpoint_every`` training steps a
    barrier checkpoint completes and the soak snapshots a *reference
    copy* of every trained key's live weights at that Checkpointed
    Batch ID. Each served row is audited against the reference pinned
    at the row's reported snapshot:

    * value mismatch => **torn row** (the read mixed checkpoints);
    * row snapshot more than ``tier.staleness_bound_k`` checkpoints
      behind the newest completed => **stale row**.

    Args:
        tier: the hierarchical serving tier under test.
        train_backend: the training-facing backend (may be the same
            object as ``tier.backend``).
        driver: the closed-loop read driver.
        train_keys_per_step: rows trained per step.
        kill_primary_at: request index at which to kill the primary of
            ``kill_node``; None disables the chaos variant.
        slo: optional :class:`~repro.obs.SLOTracker`; every audited
            row records a good/bad event on the ``serving_staleness``
            objective (bad when the row's checkpoint lag exceeds the
            tier's bound), and at the end of :meth:`run` the tracker's
            ``repro_slo_*`` series are emitted on the tier's registry.
    """

    def __init__(
        self,
        tier,
        train_backend,
        driver: ServingLoadDriver,
        rng_seed: int = 0,
        train_every: int = 4,
        checkpoint_every: int = 4,
        train_keys_per_step: int = 32,
        kill_primary_at: int | None = None,
        kill_node: int = 0,
        slo=None,
    ):
        self.tier = tier
        self.train_backend = train_backend
        self.driver = driver
        self.slo = slo
        if slo is not None:
            slo.staleness("serving_staleness", tier.staleness_bound_k)
        self.rng = np.random.default_rng(rng_seed)
        self.train_every = train_every
        self.checkpoint_every = checkpoint_every
        self.train_keys_per_step = train_keys_per_step
        self.kill_primary_at = kill_primary_at
        self.kill_node = kill_node
        self.dim = tier.backend.server_config.embedding_dim
        #: Checkpointed Batch ID -> {key: weights at that checkpoint}.
        self.references: dict[int, dict[int, np.ndarray]] = {}
        # Continue the backend's batch sequence: starting below its
        # watermark would make the soak's barriers resolve to an
        # already-completed checkpoint, whose reference must not be
        # re-recorded from now-mutated live state.
        self._batch = train_backend.latest_completed_batch + 1
        self._steps = 0
        self._kills = 0
        self._served_after_kill = 0

    # -- training interleave -------------------------------------------

    def _train_step(self) -> None:
        n = self.train_keys_per_step
        num_keys = self.driver.num_keys or 1 << 20
        keys = self.rng.integers(0, num_keys, size=n)
        grads = self.rng.normal(0, 0.01, size=(n, self.dim)).astype(np.float32)
        backend = self.train_backend
        backend.pull(keys, self._batch)
        backend.maintain(self._batch)
        backend.push(keys, grads, self._batch)
        self._steps += 1
        if self._steps % self.checkpoint_every == 0:
            before = backend.checkpoints_completed
            snapshot_id = backend.barrier_checkpoint()
            # Record only a NEWLY completed checkpoint: a barrier that
            # resolves to an existing pin (nothing new to flush) must
            # not overwrite that pin's reference with later live state.
            if backend.checkpoints_completed > before:
                self._record_reference(snapshot_id)
        self._batch += 1

    def _record_reference(self, snapshot_id: int) -> None:
        # The live state right after a barrier IS the checkpointed
        # state (the barrier flushes bitwise); keep a deep copy per pin.
        state = self.train_backend.state_snapshot()
        self.references[snapshot_id] = {
            int(k): np.array(v, copy=True) for k, v in state.items()
        }
        # Bound memory: the audit only ever needs the serving tier's
        # staleness window.
        keep = sorted(self.references)[-(self.tier.staleness_bound_k + 2):]
        self.references = {s: self.references[s] for s in keep}

    def _on_request(self, i: int) -> None:
        if self.kill_primary_at is not None and i == self.kill_primary_at:
            node = self.train_backend.nodes[self.kill_node]
            kill = getattr(node, "kill_primary", None)
            if kill is not None:
                kill()
                self._kills += 1
        if i % self.train_every == 0:
            # Chaos mode stops training at the kill (a real deployment
            # fails the trainer over separately); reads keep flowing.
            if self._kills == 0:
                self._train_step()

    # -- the audited read loop -----------------------------------------

    def run(self, requests: int) -> SoakVerdict:
        # Seed at least one checkpoint so serving has a pin.
        self._train_step()
        while not self.references:
            self._train_step()
        torn = stale = audited = 0
        max_staleness = 0
        snapshots_seen: set[int] = set()
        original_lookup = self.tier.lookup

        def audited_lookup(keys, snapshot_id=None):
            nonlocal torn, stale, audited, max_staleness
            result = original_lookup(keys, snapshot_id)
            newest = max(self.references)
            for j, key in enumerate(keys):
                pin = int(result.row_snapshots[j])
                snapshots_seen.add(pin)
                lag = sum(1 for s in self.references if pin < s <= newest)
                max_staleness = max(max_staleness, lag)
                over_bound = lag > self.tier.staleness_bound_k
                if over_bound:
                    stale += 1
                if self.slo is not None:
                    self.slo.record(
                        "serving_staleness",
                        good=0 if over_bound else 1,
                        bad=1 if over_bound else 0,
                    )
                reference = self.references.get(pin)
                if reference is None:
                    continue  # pin older than the audit window
                audited += 1
                expected = reference.get(int(key))
                if expected is None:
                    expected = self._cold_reference(int(key))
                if not np.array_equal(result.weights[j], expected):
                    torn += 1
            if self._kills:
                self._served_after_kill += 1
            return result

        self.tier.lookup = audited_lookup
        try:
            report = self.driver.run(requests, on_request=self._on_request)
        finally:
            self.tier.lookup = original_lookup
        if self.slo is not None and self.tier.registry is not None:
            self.slo.emit_metrics(self.tier.registry)
        return SoakVerdict(
            requests=requests,
            rows_audited=audited,
            torn_rows=torn,
            stale_rows=stale,
            max_staleness=max_staleness,
            checkpoints=len(snapshots_seen),
            kills=self._kills,
            report=report,
            served_through_kill=self._kills > 0 and self._served_after_kill > 0,
            snapshots_seen=sorted(snapshots_seen),
        )

    def _cold_reference(self, key: int) -> np.ndarray:
        cfg = self.tier.backend.server_config
        rng = np.random.default_rng((cfg.seed, key))
        return rng.uniform(
            -cfg.initializer_scale, cfg.initializer_scale, self.dim
        ).astype(np.float32)
