"""Flight recorder: a per-node ring buffer of recent telemetry.

Post-incident debugging of a distributed PS needs the *seconds around*
a failure, not a full-run trace: what the failure detector saw, which
lease expired, what the promotion did, which migration step was in
flight. The :class:`FlightRecorder` keeps a fixed-size ring of recent
spans/instants/state transitions that is cheap enough to leave on in
production-shaped runs (one bounded ``deque.append`` per event), and
:meth:`dump` snapshots the window into a schema-versioned JSON record
when something goes wrong.

Dump triggers wired across the codebase:

- ``declare_dead`` / ``promotion`` — :class:`~repro.core.failover.FailoverManager`
  dumps when the detector declares a node dead and again after the
  promotion, so the second dump's window covers the whole
  lease-expiry → declare-dead → promotion sequence.
- ``double_fault`` — promotion itself failed.
- ``migration_abort`` — a :class:`~repro.core.migration.ShardMigrator`
  step raised; the dump names the step that was executing.
- ``soak_audit_failed`` — a chaos-soak audit assertion failed; the
  harness writes the dump as a postmortem artifact next to the error.

A recorder can also be attached to a :class:`~repro.obs.tracer.Tracer`
(``tracer.recorder = rec``), which feeds every closed span and instant
into the ring — the full causal context, not just the explicit state
transitions.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

from repro.errors import ConfigError

FLIGHTREC_SCHEMA = "repro-flightrec-v1"


class FlightRecorder:
    """Bounded ring of recent events with snapshot-on-trigger dumps.

    Args:
        capacity: maximum events retained; older events fall off.
        node: identity stamped into every dump (node id or role name).
        clock: timestamp source; ``None`` uses wall ``time.monotonic``
            relative to construction.
        dump_dir: when given, every :meth:`dump` is also written to
            ``<dump_dir>/flightrec_<trigger>_<n>.json``.
    """

    def __init__(
        self,
        capacity: int = 4096,
        node: str = "node",
        clock=None,
        dump_dir: str | Path | None = None,
    ):
        if capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.node = node
        self.clock = clock
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.recorded = 0
        #: Every dump taken, in order (each also returned by ``dump``).
        self.dumps: list[dict] = []
        #: Paths of dumps written to ``dump_dir``.
        self.dump_paths: list[Path] = []
        self._wall_origin = time.monotonic()

    def now(self) -> float:
        if self.clock is not None:
            return self.clock.now
        return time.monotonic() - self._wall_origin

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(self, kind: str, name: str, t: float | None = None, **attrs) -> None:
        """Append one event to the ring (O(1), bounded memory)."""
        event = {
            "t": self.now() if t is None else t,
            "kind": kind,
            "name": name,
        }
        if attrs:
            event["attrs"] = attrs
        self._ring.append(event)
        self.recorded += 1

    def record_span(self, span) -> None:
        """Ring a closed :class:`~repro.obs.tracer.Span` (tracer tap)."""
        self.record(
            "span",
            span.name,
            t=span.end if span.end is not None else span.start,
            track=span.track,
            duration=span.duration if span.end is not None else 0.0,
            **span.attrs,
        )

    def events(self) -> list[dict]:
        """Current ring contents, oldest first."""
        return list(self._ring)

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------

    def dump(self, trigger: str, **attrs) -> dict:
        """Snapshot the ring into a schema-versioned postmortem record.

        The ring is *not* cleared: a later trigger still sees the same
        window (promotion dumps include the declare-dead prelude).
        """
        record = {
            "schema": FLIGHTREC_SCHEMA,
            "node": self.node,
            "trigger": trigger,
            "t": self.now(),
            "attrs": attrs,
            "recorded": self.recorded,
            "dropped": max(0, self.recorded - len(self._ring)),
            "events": self.events(),
        }
        self.dumps.append(record)
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            path = self.dump_dir / f"flightrec_{trigger}_{len(self.dumps)}.json"
            path.write_text(json.dumps(record, indent=2, default=float))
            self.dump_paths.append(path)
        return record

    def dumps_triggered(self, trigger: str) -> list[dict]:
        """All dumps taken for one trigger, in order."""
        return [d for d in self.dumps if d["trigger"] == trigger]
