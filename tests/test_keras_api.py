"""Keras-like API over the trainer."""

import numpy as np
import pytest

from repro.config import CacheConfig
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.keras_api import Model, PSEmbeddingLayer
from repro.dlrm.optimizers import Adam
from repro.errors import ConfigError

FIELDS = 4


@pytest.fixture
def dataset():
    return CriteoSynthetic(num_fields=FIELDS, vocab_per_field=50, seed=2)


def make_model():
    layer = PSEmbeddingLayer(
        num_fields=FIELDS,
        dim=8,
        num_nodes=2,
        cache=CacheConfig(capacity_bytes=1 << 16),
        pmem_capacity_bytes=1 << 24,
    )
    model = Model(layer, hidden=(16,))
    model.compile(optimizer=Adam(1e-2))
    return model


class TestModel:
    def test_fit_returns_history(self, dataset):
        model = make_model()
        history = model.fit(dataset, batches=10, batch_size=16, workers=2)
        assert len(history.losses) == 10
        assert np.isfinite(history.final_loss)

    def test_fit_continues_across_calls(self, dataset):
        model = make_model()
        model.fit(dataset, batches=3, batch_size=16)
        model.fit(dataset, batches=2, batch_size=16)
        assert model.trainer.next_batch == 5

    def test_fit_without_compile_rejected(self, dataset):
        layer = PSEmbeddingLayer(num_fields=FIELDS, dim=8, pmem_capacity_bytes=1 << 24)
        model = Model(layer)
        with pytest.raises(ConfigError):
            model.fit(dataset, batches=1)

    def test_predict_proba(self, dataset):
        model = make_model()
        model.fit(dataset, batches=5, batch_size=16)
        keys = dataset.batch(8, 100).keys
        probs = model.predict_proba(keys)
        assert probs.shape == (8,)
        assert np.all((probs > 0) & (probs < 1))

    def test_predict_before_fit_rejected(self, dataset):
        model = make_model()
        with pytest.raises(ConfigError):
            model.predict_proba(dataset.batch(4, 0).keys)

    def test_save_checkpoint(self, dataset):
        model = make_model()
        model.fit(dataset, batches=4, batch_size=16)
        batch_id = model.save_checkpoint()
        assert batch_id == 3
        assert model.embedding_layer.server.global_completed_checkpoint == 3

    def test_history_helpers(self):
        from repro.dlrm.keras_api import FitHistory

        history = FitHistory(losses=[3.0, 2.0, 1.0])
        assert history.final_loss == 1.0
        assert history.mean_loss(last_n=2) == pytest.approx(1.5)
        assert np.isnan(FitHistory(losses=[]).final_loss)
