"""Crash recovery (Section V-C).

*"the recovery can be done by (1) scanning all the embedding entries in
PMem and discarding those with batch IDs larger than the Checkpointed
Batch ID, (2) and then reconstruct the hash index in DRAM."*

:func:`recover_node` takes a surviving :class:`PmemPool` (what a node
process leaves behind) and produces a fresh :class:`PSNode` whose live
state is exactly the last completed checkpoint. It also returns a
:class:`RecoveryReport` with the simulated recovery time, modelled as a
sequential PMem scan of every stored version plus per-entry index
rebuild cost — the two components the paper says dominate (Section
VI-E). Sharded recovery divides both by the parallelism, the paper's
suggested speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CacheConfig, ServerConfig
from repro.core.entry import EmbeddingEntry, Location
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSOptimizer
from repro.errors import RecoveryError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pmem.pool import PmemPool
from repro.simulation.calibration import Calibration, DEFAULT_CALIBRATION
from repro.simulation.device import PMEM_SPEC


@dataclass(frozen=True)
class RecoveryReport:
    """What a node recovery did and how long it (simulated-)took."""

    node_id: int
    checkpoint_batch_id: int
    entries_recovered: int
    versions_scanned: int
    versions_discarded: int
    sim_seconds: float


def recover_node(
    pool: PmemPool,
    server_config: ServerConfig,
    cache_config: CacheConfig | None = None,
    optimizer: PSOptimizer | None = None,
    *,
    node_id: int = 0,
    metadata_only: bool = False,
    target_batch_id: int | None = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    parallelism: int = 1,
    cluster_mode: bool = False,
    tracer: Tracer | None = None,
) -> tuple[PSNode, RecoveryReport]:
    """Rebuild a PS node from a crashed pool.

    Args:
        pool: the surviving persistent pool (after ``PSNode.crash``).
        target_batch_id: recover to this checkpoint instead of the
            node's own last completed one — the distributed server
            passes the cluster-wide minimum here so all shards restore
            the same batch.
        parallelism: partitions scanning/rebuilding in parallel
            (Section VI-E's "partition a single embedding table into
            several parameter server processes").
        tracer: emits a ``recovery.node`` span covering the simulated
            scan+rebuild time; also handed to the recovered node.

    Returns:
        ``(node, report)`` — the node starts with an empty, consistent
        DRAM cache; all recovered entries are PMem-resident.

    Raises:
        RecoveryError: no checkpoint was ever completed, or the target
            batch id exceeds what this pool durably holds.
    """
    if parallelism < 1:
        raise RecoveryError(f"parallelism must be >= 1, got {parallelism}")
    tracer = tracer if tracer is not None else NULL_TRACER
    node = PSNode(
        node_id,
        server_config,
        cache_config,
        optimizer,
        metadata_only=metadata_only,
        pool=pool,
        cluster_mode=cluster_mode,
        tracer=tracer,
    )
    store = node.store

    # Step 0: the volatile version index died with the process; rebuild
    # it by scanning the pool, then establish the recovery target.
    store.rebuild_from_pool()
    versions_scanned = store.total_versions()
    own_checkpoint = store.checkpointed_batch_id()
    if own_checkpoint < 0:
        raise RecoveryError("no completed checkpoint recorded in PMem root")
    checkpoint_id = own_checkpoint if target_batch_id is None else target_batch_id
    if checkpoint_id > own_checkpoint:
        raise RecoveryError(
            f"target checkpoint {checkpoint_id} newer than durable {own_checkpoint}"
        )

    # Step 1: discard versions newer than the checkpoint.
    discarded = store.discard_newer_than(checkpoint_id)

    # Step 2: reconstruct the DRAM hash index; every entry is
    # PMem-resident (the DRAM cache refills as training resumes).
    recovered = {key: versions[-1] for key, versions in _surviving(store).items()}
    for key, batch_id in recovered.items():
        entry = EmbeddingEntry(key, version=batch_id)
        entry.location = Location.PMEM
        entry.weights = None
        node.cache.index.insert(entry)

    # The node resumes from the checkpoint; its coordinator state must
    # agree with what is durable.
    node.coordinator.last_completed = checkpoint_id
    store.set_checkpointed_batch_id(checkpoint_id)
    node.coordinator._sync_barriers()
    node.latest_completed_batch = checkpoint_id

    sim_seconds = estimate_recovery_seconds(
        entries=len(recovered),
        versions=versions_scanned,
        entry_bytes=store.entry_bytes,
        calibration=calibration,
        parallelism=parallelism,
    )
    report = RecoveryReport(
        node_id=node_id,
        checkpoint_batch_id=checkpoint_id,
        entries_recovered=len(recovered),
        versions_scanned=versions_scanned,
        versions_discarded=discarded,
        sim_seconds=sim_seconds,
    )
    # The span covers the *simulated* recovery window on the recovery
    # track, so traces show how long the shard was dark (Figure 14).
    tracer.add_span(
        "recovery.node",
        start=tracer.now(),
        duration=sim_seconds,
        track="recovery",
        node=node_id,
        checkpoint=checkpoint_id,
        entries=len(recovered),
        discarded=discarded,
    )
    return node, report


def estimate_recovery_seconds(
    *,
    entries: int,
    versions: int,
    entry_bytes: int,
    calibration: Calibration = DEFAULT_CALIBRATION,
    parallelism: int = 1,
) -> float:
    """Simulated PMem-OE recovery time (Figure 14's right bar).

    Sequential scan of every stored version at PMem read bandwidth plus
    per-entry index reconstruction, divided by shard parallelism.
    """
    scan = versions * entry_bytes / PMEM_SPEC.read_bw
    rebuild = entries * calibration.index_rebuild_pmem_oe_s
    return (scan + rebuild) / parallelism


def estimate_dram_ps_recovery_seconds(
    *,
    entries: int,
    entry_bytes: int,
    checkpoint_device: str = "pmem",
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """Simulated DRAM-PS recovery time (Figure 14's left two bars).

    DRAM-PS must read the whole checkpoint file back from persistent
    storage and insert every entry into a fresh DRAM hash; the read
    dominates on slow devices, the inserts on fast ones.

    Args:
        checkpoint_device: ``"pmem"`` (39 GB/s) or ``"ssd"`` (the
            calibrated ~0.65 GB/s effective NAS/SSD read path).
    """
    if checkpoint_device == "pmem":
        read_bw = PMEM_SPEC.read_bw
    elif checkpoint_device == "ssd":
        read_bw = calibration.checkpoint_ssd_read_bw
    else:
        raise RecoveryError(f"unknown checkpoint device {checkpoint_device!r}")
    read = entries * entry_bytes / read_bw
    insert = entries * calibration.index_insert_dram_ps_s
    return read + insert


def _surviving(store) -> dict[int, list[int]]:
    return {key: store.versions_of(key) for key in store.keys()}
