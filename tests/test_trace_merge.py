"""Merged multi-node traces: flow linking and the failover causal story.

Unit coverage for :mod:`repro.obs.merge` (pid assignment, process
naming, client→server flow pairing, summarization) plus the acceptance
property for the distributed-tracing tentpole: a merged multi-node
trace of one pull shows the client's ``rpc.attempt`` spans flow-linked
to the server shard span they caused — **including a retried attempt
re-routed across a replica promotion**, all under one trace id.
"""

from __future__ import annotations

import json

import pytest

from repro.core.optimizers import PSAdagrad
from repro.errors import ConfigError
from repro.network.frontend import RemotePSClient
from repro.obs import Tracer, to_chrome_trace
from repro.obs.merge import (
    MERGED_TRACE_SCHEMA,
    merge_trace_files,
    merge_traces,
    summarize_trace,
)
from repro.simulation.clock import SimClock
from tests.harness.chaos import replicated_config
from tests.harness.crashpoints import RETRY, batch_payload, cache_config

US = 1e6  # Chrome trace timestamps are microseconds


def _span(name, ts_s, dur_s=0.001, track="main", **attrs):
    return {
        "ph": "X",
        "name": name,
        "ts": ts_s * US,
        "dur": dur_s * US,
        "pid": 0,
        "tid": 1,
        "args": attrs,
    }


def _trace(events):
    return {
        "traceEvents": events,
        "otherData": {"schema": "repro-trace-v1", "dropped_events": 0},
    }


# ----------------------------------------------------------------------
# merge mechanics
# ----------------------------------------------------------------------


class TestMergeTraces:
    def test_empty_input_rejected(self):
        with pytest.raises(ConfigError, match="nothing to merge"):
            merge_traces([])
        with pytest.raises(ConfigError, match="names"):
            merge_traces([_trace([])], names=["a", "b"])

    def test_flow_drawn_from_client_attempt_to_server_span(self):
        client = _trace(
            [_span("rpc.attempt", 1.0, trace_id=77, span_id=5, attempt=1)]
        )
        server = _trace(
            [_span("ps.pull", 1.1, trace_id=77, parent_span_id=5, keys=3)]
        )
        merged = merge_traces([client, server], names=["client", "ps0"])
        other = merged["otherData"]
        assert other["schema"] == MERGED_TRACE_SCHEMA
        assert other["sources"] == ["client", "ps0"]
        assert other["flows"] == 1
        starts = [e for e in merged["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in merged["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"] == "4d.5"
        assert starts[0]["pid"] == 0 and finishes[0]["pid"] == 1
        # Every source pid got a process_name metadata event.
        named = {
            e["pid"]: e["args"]["name"]
            for e in merged["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert named == {0: "client", 1: "ps0"}

    def test_orphan_server_span_draws_no_flow(self):
        server = _trace(
            [_span("ps.pull", 1.0, trace_id=1, parent_span_id=99)]
        )
        merged = merge_traces([_trace([]), server])
        assert merged["otherData"]["flows"] == 0
        assert not [e for e in merged["traceEvents"] if e["ph"] in ("s", "f")]

    def test_summarize_counts_flows_and_processes(self):
        client = _trace(
            [_span("rpc.attempt", 1.0, trace_id=7, span_id=2)]
        )
        server = _trace(
            [_span("ps.pull", 1.2, trace_id=7, parent_span_id=2)]
        )
        merged = merge_traces([client, server], names=["client", "ps0"])
        text = summarize_trace(merged)
        assert "flows: 1" in text
        assert "[client]" in text and "[ps0]" in text
        assert "rpc.attempt" in text and "ps.pull" in text


# ----------------------------------------------------------------------
# acceptance: one pull's journey across a replica promotion
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def merged_promotion_trace(tmp_path_factory):
    """Train, kill a primary, pull through the promotion, merge traces."""
    seed, nodes = 0, 3
    config = replicated_config(nodes, seed, lease_s=0.5)
    clock = SimClock()
    client_tracer = Tracer(clock=clock)
    node_tracers = [Tracer(clock=clock) for __ in range(nodes)]
    client = RemotePSClient(
        config,
        cache_config(),
        PSAdagrad(lr=0.05),
        clock=clock,
        retry=RETRY,
        tracer=client_tracer,
        node_tracers=node_tracers,
    )
    client.enable_failover()
    for batch in range(3):
        keys, grads = batch_payload(seed, batch)
        client.pull(keys, batch)
        client.maintain(batch)
        client.push(keys, grads, batch)

    client.nodes[0].kill_primary()
    # This pull fans out per shard; the sub-request to shard 0 times
    # out against the corpse, the failover manager waits out the lease
    # and promotes the backup, and the SAME request (same trace id) is
    # re-issued and answered by the promoted replica.
    keys, __ = batch_payload(seed, 3)
    client.pull(keys, 3)
    assert len(client.failover.promotions) == 1

    tmp = tmp_path_factory.mktemp("traces")
    paths = []
    for name, tracer in [("client", client_tracer)] + [
        (f"ps{i}", node_tracers[i]) for i in range(nodes)
    ]:
        path = tmp / f"{name}.json"
        path.write_text(json.dumps(to_chrome_trace(tracer, name)))
        paths.append(path)
    out = tmp / "merged.json"
    merge_trace_files(paths, out=out)
    return json.loads(out.read_text())


class TestPromotionStory:
    def test_schema_and_processes(self, merged_promotion_trace):
        other = merged_promotion_trace["otherData"]
        assert other["schema"] == MERGED_TRACE_SCHEMA
        assert other["sources"] == ["client", "ps0", "ps1", "ps2"]
        assert other["flows"] > 0

    def test_one_trace_spans_the_promotion(self, merged_promotion_trace):
        events = merged_promotion_trace["traceEvents"]
        attempts = [
            e
            for e in events
            if e.get("ph") == "X"
            and e.get("name") == "rpc.attempt"
            and e["pid"] == 0  # the client process
        ]
        by_trace: dict[int, list[dict]] = {}
        for e in attempts:
            by_trace.setdefault(e["args"]["trace_id"], []).append(e)

        # Exactly one trace saw both lost attempts (against the dead
        # primary) and a final ok (served by the promoted backup).
        crossing = {
            t: evs
            for t, evs in by_trace.items()
            if {"lost", "ok"}
            <= {e["args"].get("reason") for e in evs}
        }
        assert len(crossing) == 1
        trace_id, evs = crossing.popitem()
        lost = [e for e in evs if e["args"]["reason"] == "lost"]
        ok = [e for e in evs if e["args"]["reason"] == "ok"]
        # The client burns attempts against the corpse until the lease
        # expires under it (then fails fast on the death check), so the
        # lost count is several-but-not-necessarily-the-full-budget.
        assert 2 <= len(lost) <= RETRY.max_attempts
        assert [e["args"]["attempt"] for e in lost] == list(
            range(1, len(lost) + 1)
        )
        assert len(ok) == 1
        ok = ok[0]

        # The re-issued attempt restarts the attempt counter but keeps
        # the operation's trace id across the re-route.
        assert ok["args"]["attempt"] == 1
        assert max(e["ts"] for e in lost) < ok["ts"]

        # The promotion sits between the last lost attempt and the ok
        # one, in shard 0's process.
        promotes = [
            e
            for e in events
            if e.get("ph") == "X" and e.get("name") == "ps.promote"
        ]
        assert len(promotes) == 1
        promote = promotes[0]
        assert promote["pid"] != 0
        assert max(e["ts"] for e in lost) < promote["ts"] < ok["ts"]

        # Flow link: the ok attempt is flow-linked to the server-side
        # ps.pull span it caused, across process tracks.
        span_id = ok["args"]["span_id"]
        flow_id = f"{trace_id:x}.{span_id:x}"
        starts = [
            e for e in events if e.get("ph") == "s" and e["id"] == flow_id
        ]
        finishes = [
            e for e in events if e.get("ph") == "f" and e["id"] == flow_id
        ]
        assert len(starts) == 1 and len(finishes) == 1
        assert starts[0]["pid"] == 0
        server_pid = finishes[0]["pid"]
        assert server_pid != 0
        served = [
            e
            for e in events
            if e.get("ph") == "X"
            and e.get("name") == "ps.pull"
            and e["pid"] == server_pid
            and e["args"].get("trace_id") == trace_id
            and e["args"].get("parent_span_id") == span_id
        ]
        assert len(served) == 1

    def test_lost_attempts_draw_no_flows(self, merged_promotion_trace):
        # A lost attempt never reached a server, so no flow may start
        # at it: every flow start coincides with some ok attempt.
        events = merged_promotion_trace["traceEvents"]
        ok_ids = {
            f"{e['args']['trace_id']:x}.{e['args']['span_id']:x}"
            for e in events
            if e.get("ph") == "X"
            and e.get("name") == "rpc.attempt"
            and e["args"].get("reason") == "ok"
        }
        lost_ids = {
            f"{e['args']['trace_id']:x}.{e['args']['span_id']:x}"
            for e in events
            if e.get("ph") == "X"
            and e.get("name") == "rpc.attempt"
            and e["args"].get("reason") == "lost"
        }
        flow_ids = {e["id"] for e in events if e.get("ph") == "s"}
        assert flow_ids <= ok_ids
        assert not (flow_ids & lost_ids)
