"""Reusable test harnesses (deterministic fault/crash drivers)."""
