"""Quickstart: train a DeepFM on OpenEmbedding with the Keras-like API.

Builds a 2-shard parameter server with a DRAM cache over (simulated)
PMem, trains a DeepFM CTR model on a synthetic Criteo-like dataset with
two synchronous workers, takes a checkpoint, and runs inference.

Run:  python examples/quickstart.py
"""

from repro.config import CacheConfig
from repro.core.optimizers import PSAdagrad
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.keras_api import Model, PSEmbeddingLayer
from repro.dlrm.optimizers import Adam


def main() -> None:
    dataset = CriteoSynthetic(num_fields=13, vocab_per_field=500, seed=7)

    # The embedding layer deploys the parameter server: 2 shards, each
    # with a 256 KiB DRAM cache in front of its persistent pool.
    embedding = PSEmbeddingLayer(
        num_fields=13,
        dim=16,
        num_nodes=2,
        cache=CacheConfig(capacity_bytes=256 << 10),
        ps_optimizer=PSAdagrad(lr=0.08),
        pmem_capacity_bytes=1 << 28,
        seed=7,
    )
    model = Model(embedding, hidden=(64, 32), seed=7)
    model.compile(optimizer=Adam(2e-3))

    print("training DeepFM (13 fields, dim 16) on 2 workers ...")
    history = model.fit(dataset, batches=300, batch_size=64, workers=2)
    print(f"  loss: first 20 batches {history.mean_loss(len(history.losses)):.4f} "
          f"-> last 20 batches {history.mean_loss(20):.4f}")

    batch_id = model.save_checkpoint()
    server = embedding.server
    print(f"  checkpoint completed at batch {batch_id}; "
          f"{server.num_entries} embedding entries on {len(server.nodes)} shards; "
          f"cluster miss rate {server.aggregate_miss_rate():.2%}")

    sample = dataset.batch(8, 10_000)
    probs = model.predict_proba(sample.keys)
    print("  sample click probabilities:", [f"{p:.3f}" for p in probs])


if __name__ == "__main__":
    main()
