"""Distributed OpenEmbedding server: hash-partitioned PS nodes.

The facade the training framework talks to. Keys are routed to shards
with :class:`HashPartitioner`; pulls gather per-node responses back into
request order; checkpoints are coordinated cluster-wide so recovery
always restores a single consistent batch across all shards.

This is the reference implementation of the
:class:`~repro.core.backend.PSBackend` protocol — the surface the
trainers and the lookahead :class:`~repro.dlrm.prefetch.PrefetchPipeline`
program against. :class:`~repro.network.frontend.RemotePSClient` speaks
the same protocol over RPC and is a drop-in replacement.
"""

from __future__ import annotations

import numpy as np

from repro.config import CacheConfig, ServerConfig
from repro.core.cache import MaintainResult, PullResult
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSOptimizer, PSSGD
from repro.core.recovery import RecoveryReport, recover_node
from repro.core.serving_backend import LookupResult, ReplicaSelector
from repro.core.sharding import (
    RING_STATE_FIELD,
    HashPartitioner,
    make_partitioner,
    pack_ring_state,
    unpack_ring_state,
)
from repro.errors import CheckpointError, RecoveryError
from repro.obs.registry import MetricsRegistry, collect_bundle
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pmem.pool import PmemPool
from repro.simulation.calibration import Calibration, DEFAULT_CALIBRATION
from repro.pmem.space import CHECKPOINT_ID_FIELD, NO_CHECKPOINT


class OpenEmbeddingServer:
    """A cluster of PS nodes behind one pull/push interface
    (the in-process :class:`~repro.core.backend.PSBackend`).

    Args:
        server_config: shard count, embedding dim, pool sizing, seed.
        cache_config: per-node DRAM cache parameters.
        optimizer: PS-side optimizer (shared rule, per-entry state).
        metadata_only: no real weights (performance simulations).
        tracer: span/event sink threaded through to every shard (cache
            maintenance, PMem traffic, checkpoint completion).
    """

    def __init__(
        self,
        server_config: ServerConfig | None = None,
        cache_config: CacheConfig | None = None,
        optimizer: PSOptimizer | None = None,
        metadata_only: bool = False,
        nodes: list[PSNode] | None = None,
        cluster_mode: bool | None = None,
        tracer: Tracer | None = None,
    ):
        self.server_config = server_config or ServerConfig()
        self.cache_config = cache_config or CacheConfig()
        self.optimizer = optimizer or PSSGD()
        self.metadata_only = metadata_only
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Cluster retention semantics are needed whenever some wider
        # scope must agree on a common checkpoint: multiple shards here,
        # or this server being one table of a collection (the caller
        # passes True then).
        if cluster_mode is None:
            cluster_mode = self.server_config.num_nodes > 1
        self.cluster_mode = cluster_mode
        self.partitioner = make_partitioner(
            self.server_config.partitioner,
            self.server_config.num_nodes,
            self.server_config.ring_vnodes,
        )
        self.ring_epoch = 0
        # Serving reads fan out across a replicated shard's primary +
        # backup (reads never mutate, so the hot-standby doubles as a
        # serving replica).
        self.replica_selector = ReplicaSelector(
            policy=self.server_config.serving_replica_policy
        )
        if nodes is None:
            self.nodes = [
                self._build_node(node_id, self.server_config)
                for node_id in range(self.server_config.num_nodes)
            ]
        else:
            if len(nodes) != self.server_config.num_nodes:
                raise RecoveryError(
                    f"got {len(nodes)} nodes for {self.server_config.num_nodes} shards"
                )
            self.nodes = nodes
        if self.server_config.partitioner == "ring":
            self._restore_or_seed_ring_state()

    def _build_node(self, node_id: int, server_config: ServerConfig):
        """One shard: plain for ``replicas=1``; a synchronously-mirrored
        primary/backup pair (:class:`ReplicatedPSNode`) for
        ``replicas=2``, enabling hot failover instead of ~380 s
        checkpoint recovery."""
        if server_config.replicas == 2:
            from repro.core.replication import ReplicatedPSNode

            return ReplicatedPSNode(
                node_id,
                server_config,
                self.cache_config,
                self.optimizer,
                metadata_only=self.metadata_only,
                cluster_mode=self.cluster_mode,
                tracer=self.tracer,
            )
        return PSNode(
            node_id,
            server_config,
            self.cache_config,
            self.optimizer,
            metadata_only=self.metadata_only,
            cluster_mode=self.cluster_mode,
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    # PS protocol
    # ------------------------------------------------------------------

    def pull(
        self,
        keys,
        batch_id: int,
        *,
        worker_id: int | None = None,
        progress: int | None = None,
    ) -> PullResult:
        """Gather weights for ``keys`` across shards, in request order.

        ``worker_id`` / ``progress`` feed each touched shard's
        bounded-staleness admission check; anonymous pulls (the
        default) bypass it. A :class:`~repro.errors.StalenessError`
        from any shard aborts the pull.
        """
        with self.tracer.span(
            "server.pull", batch=batch_id, keys=len(keys)
        ) as span:
            per_node_keys, per_node_positions = self.partitioner.split(keys)
            value_mode = not self.metadata_only
            out = (
                np.empty(
                    (len(keys), self.server_config.embedding_dim), dtype=np.float32
                )
                if value_mode
                else None
            )
            hits = misses = created = 0
            for node, node_keys, positions in zip(
                self.nodes, per_node_keys, per_node_positions
            ):
                if len(node_keys) == 0:
                    continue
                result = node.pull(
                    node_keys, batch_id,
                    worker_id=worker_id, progress=progress,
                )
                hits += result.hits
                misses += result.misses
                created += result.created
                if out is not None:
                    out[positions] = result.weights
            span.set(hits=hits, misses=misses, created=created)
            return PullResult(weights=out, hits=hits, misses=misses, created=created)

    def lookup(self, keys, snapshot_id: int | None = None) -> LookupResult:
        """Serve a snapshot-pinned batched read across shards.

        The serving read path: pinned to a cluster-wide Checkpointed
        Batch ID (defaults to :attr:`latest_serving_snapshot`), routed
        by the partitioner, and — on replicated shards — fanned out
        across primary/backup replicas by the configured
        :class:`~repro.core.serving_backend.ReplicaSelector` policy.
        Never perturbs cache or LRU state.
        """
        with self.tracer.span(
            "server.lookup", track="serving", keys=len(keys)
        ) as span:
            if snapshot_id is None:
                snapshot_id = self.global_completed_checkpoint
            per_node_keys, per_node_positions = self.partitioner.split(keys)
            out = np.empty(
                (len(keys), self.server_config.embedding_dim), dtype=np.float32
            )
            row_snapshots = np.empty(len(keys), dtype=np.int64)
            hits = cold = 0
            for node, node_keys, positions in zip(
                self.nodes, per_node_keys, per_node_positions
            ):
                if len(node_keys) == 0:
                    continue
                replicas = ReplicaSelector.replica_count(node)
                if replicas > 1:
                    replica = self.replica_selector.pick(node.node_id, replicas)
                    result = node.lookup(node_keys, snapshot_id, replica=replica)
                else:
                    result = node.lookup(node_keys, snapshot_id)
                hits += result.hits
                cold += result.cold
                out[positions] = result.weights
                row_snapshots[positions] = (
                    result.row_snapshots
                    if result.row_snapshots is not None
                    else result.snapshot_id
                )
            span.set(snapshot=snapshot_id, hits=hits, cold=cold)
            return LookupResult(
                weights=out,
                snapshot_id=snapshot_id,
                hits=hits,
                cold=cold,
                row_snapshots=row_snapshots,
            )

    @property
    def latest_serving_snapshot(self) -> int:
        """Newest checkpoint completed by ALL shards — the serving pin."""
        return self.global_completed_checkpoint

    @property
    def checkpoints_completed(self) -> int:
        """Monotone count of checkpoints completed by ALL shards (the
        serving tier's staleness clock — checkpoint ids are batch ids,
        so lag in checkpoints cannot be derived from id arithmetic)."""
        return min(node.checkpoints_completed for node in self.nodes)

    def maintain(self, batch_id: int) -> list[MaintainResult]:
        """Run the maintenance round on every shard."""
        with self.tracer.span("server.maintain", batch=batch_id) as span:
            results = [node.maintain(batch_id) for node in self.nodes]
            self._sync_external_barriers()
            span.set(processed=sum(r.processed for r in results))
            return results

    def push(
        self,
        keys,
        grads: np.ndarray | None,
        batch_id: int,
        *,
        worker_id: int | None = None,
        seq: int = 0,
    ) -> int:
        """Scatter gradients to owning shards; returns entries updated.

        ``worker_id`` / ``seq`` identify the push for the per-shard
        aggregation buffer (robust folding + duplicate absorption);
        both default to the anonymous direct-apply path.
        """
        with self.tracer.span(
            "server.push", batch=batch_id, keys=len(keys)
        ) as span:
            per_node_keys, per_node_positions = self.partitioner.split(keys)
            updated = 0
            for node, node_keys, positions in zip(
                self.nodes, per_node_keys, per_node_positions
            ):
                if len(node_keys) == 0:
                    continue
                node_grads = grads[positions] if grads is not None else None
                updated += node.push(
                    node_keys, node_grads, batch_id,
                    worker_id=worker_id, seq=seq,
                )
            span.set(updated=updated)
            return updated

    def flush_aggregation(self) -> int:
        """Fold every shard's buffered contributions now (quiesce)."""
        return sum(node.flush_aggregation() for node in self.nodes)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        """Queue a cluster-wide checkpoint on every shard.

        Raises:
            CheckpointError: no trained batch to snapshot.
        """
        if batch_id is None:
            batch_id = self.latest_completed_batch
        if batch_id < 0:
            raise CheckpointError("no completed batch to checkpoint")
        for node in self.nodes:
            node.request_checkpoint(batch_id)
        return batch_id

    def barrier_checkpoint(self, batch_id: int | None = None) -> int:
        """Checkpoint and synchronously complete on every shard."""
        with self.tracer.span(
            "server.barrier_checkpoint", track="checkpoint"
        ) as span:
            requested = self.request_checkpoint(batch_id)
            self.complete_pending_checkpoints()
            span.set(batch=requested)
            return requested

    def complete_pending_checkpoints(self) -> None:
        """Force every shard's queued checkpoints to complete (flushes
        each shard's cache — a training barrier, not the hot path)."""
        for node in self.nodes:
            node.complete_pending_checkpoints()
        self._sync_external_barriers()

    @property
    def latest_completed_batch(self) -> int:
        """Newest batch whose updates reached every shard it touched."""
        return max(node.latest_completed_batch for node in self.nodes)

    @property
    def global_completed_checkpoint(self) -> int:
        """Newest checkpoint durably completed by ALL shards (-1 if none)."""
        return min(node.coordinator.last_completed for node in self.nodes)

    def _sync_external_barriers(self) -> None:
        """Keep every shard's retention covering the global checkpoint."""
        global_ckpt = self.global_completed_checkpoint
        barrier = None if global_ckpt == NO_CHECKPOINT else global_ckpt
        for node in self.nodes:
            node.set_external_barrier(barrier)

    # ------------------------------------------------------------------
    # elasticity (repro.core.migration drives these)
    # ------------------------------------------------------------------

    @property
    def coordinator_pool(self) -> PmemPool:
        """Node 0's pool — where the committed ring state lives."""
        return self.nodes[0].pool

    def _restore_or_seed_ring_state(self) -> None:
        """Adopt the durable ring state, or persist epoch 0 on first boot.

        The ring state lives in a single root field of the coordinator
        pool, so a fresh cluster seeds it once and a recovered cluster
        (whose config already matches the committed ring — see
        :func:`repro.core.migration.recover_elastic`) adopts the durable
        epoch instead of clobbering it.
        """
        if RING_STATE_FIELD not in self.coordinator_pool.root.fields():
            # Write through the node (not the pool) so a replicated
            # coordinator mirrors the ring word onto both replica pools.
            self.nodes[0].set_root_field(
                RING_STATE_FIELD,
                pack_ring_state(
                    0,
                    self.server_config.num_nodes,
                    self.server_config.ring_vnodes,
                ),
            )
            return
        epoch, num_nodes, vnodes = unpack_ring_state(
            self.coordinator_pool.root.get(RING_STATE_FIELD)
        )
        if (
            num_nodes != self.server_config.num_nodes
            or vnodes != self.server_config.ring_vnodes
        ):
            raise RecoveryError(
                f"durable ring ({num_nodes} nodes, {vnodes} vnodes) does not "
                f"match config ({self.server_config.num_nodes} nodes, "
                f"{self.server_config.ring_vnodes} vnodes); recover via "
                "repro.core.migration.recover_elastic"
            )
        self.ring_epoch = epoch

    def commit_ring(
        self,
        partitioner: HashPartitioner,
        server_config: ServerConfig,
        nodes: list[PSNode],
    ) -> int:
        """Atomically commit a new ring epoch and switch routing to it.

        The single root-field write below is the migration's commit
        point: a crash before it recovers on the old ring, a crash
        after it recovers on the new one. Returns the new epoch.
        """
        new_epoch = self.ring_epoch + 1
        # NOTE: write through the OLD coordinator node first — for
        # scale-in the coordinator never changes (node 0 survives), and
        # for scale-out it is also node 0. One atomic set, never torn;
        # a replicated coordinator mirrors it onto both replica pools.
        self.nodes[0].set_root_field(
            RING_STATE_FIELD,
            pack_ring_state(
                new_epoch, server_config.num_nodes, server_config.ring_vnodes
            ),
        )
        self.partitioner = partitioner
        self.server_config = server_config
        self.nodes = nodes
        self.cluster_mode = True
        self.ring_epoch = new_epoch
        for node in nodes:
            follow = getattr(node, "follow_ring", None)
            if follow is not None:
                # Replicated shards track the committed epoch so a later
                # failover never resurrects pre-migration routing.
                follow(new_epoch)
        self._sync_external_barriers()
        self.tracer.instant(
            "migration.ring_commit",
            track="migration",
            epoch=new_epoch,
            nodes=server_config.num_nodes,
        )
        return new_epoch

    def provision_node(self, node_id: int, server_config: ServerConfig) -> PSNode:
        """Build an empty PS node for scale-out (same stack as __init__,
        replicated when ``replicas=2``)."""
        if server_config.replicas == 2:
            from repro.core.replication import ReplicatedPSNode

            return ReplicatedPSNode(
                node_id,
                server_config,
                self.cache_config,
                self.optimizer,
                metadata_only=self.metadata_only,
                cluster_mode=True,
                tracer=self.tracer,
            )
        return PSNode(
            node_id,
            server_config,
            self.cache_config,
            self.optimizer,
            metadata_only=self.metadata_only,
            cluster_mode=True,
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    # failure / recovery
    # ------------------------------------------------------------------

    def crash(self) -> list[PmemPool]:
        """Kill every node process; the pools survive."""
        return [node.crash() for node in self.nodes]

    @classmethod
    def recover(
        cls,
        pools: list[PmemPool],
        server_config: ServerConfig,
        cache_config: CacheConfig | None = None,
        optimizer: PSOptimizer | None = None,
        *,
        metadata_only: bool = False,
        calibration: Calibration = DEFAULT_CALIBRATION,
        target_batch_id: int | None = None,
        cluster_mode: bool | None = None,
        tracer: Tracer | None = None,
    ) -> tuple["OpenEmbeddingServer", list[RecoveryReport]]:
        """Rebuild a whole cluster from surviving pools.

        Every shard is restored to the newest checkpoint completed by
        ALL shards (or to ``target_batch_id`` when a wider scope — e.g.
        a multi-table collection — must agree on an older one), so the
        recovered model is batch-consistent. Per-shard recoveries are
        independent and would run in parallel on real hardware; the
        reports' times reflect one shard each.
        """
        if len(pools) != server_config.num_nodes:
            raise RecoveryError(
                f"got {len(pools)} pools for {server_config.num_nodes} shards"
            )
        targets = [
            pool.root.get(CHECKPOINT_ID_FIELD, NO_CHECKPOINT) for pool in pools
        ]
        global_target = min(targets)
        if target_batch_id is not None:
            if target_batch_id > global_target:
                raise RecoveryError(
                    f"target {target_batch_id} newer than durable {global_target}"
                )
            global_target = target_batch_id
        if global_target < 0:
            raise RecoveryError("some shard has no completed checkpoint")
        if cluster_mode is None:
            cluster_mode = server_config.num_nodes > 1
        nodes = []
        reports = []
        for node_id, pool in enumerate(pools):
            node, report = recover_node(
                pool,
                server_config,
                cache_config,
                optimizer,
                node_id=node_id,
                metadata_only=metadata_only,
                target_batch_id=global_target,
                calibration=calibration,
                cluster_mode=cluster_mode,
                tracer=tracer,
            )
            nodes.append(node)
            reports.append(report)
        if server_config.replicas == 2:
            # Recovered shards come back replicated: wrap each fresh
            # node as a degraded pair and re-replicate synchronously so
            # the cluster regains single-fault tolerance before serving.
            from repro.core.replication import ReplicatedPSNode

            wrapped = []
            for node in nodes:
                replicated = ReplicatedPSNode.from_primary(node)
                replicated.rebuild_backup()
                wrapped.append(replicated)
            nodes = wrapped
        server = cls(
            server_config,
            cache_config,
            optimizer,
            metadata_only=metadata_only,
            nodes=nodes,
            cluster_mode=cluster_mode,
            tracer=tracer,
        )
        server._sync_external_barriers()
        return server, reports

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return sum(node.num_entries for node in self.nodes)

    def owned_keys(self) -> list[int]:
        """Every key the cluster currently holds, across all shards."""
        keys: list[int] = []
        for node in self.nodes:
            keys.extend(node.owned_keys())
        return keys

    def read_weights(self, key: int) -> np.ndarray:
        """Live weights of one key, routed to its shard."""
        return self.nodes[self.partitioner.node_of(key)].read_weights(key)

    def state_snapshot(self) -> dict[int, np.ndarray]:
        """Live weights of every key across all shards.

        Training/debug-only: not checkpoint-consistent (in-flight batch
        updates are visible). Serving and export go through the pinned
        :meth:`lookup` path instead.
        """
        snapshot: dict[int, np.ndarray] = {}
        for node in self.nodes:
            snapshot.update(node.state_snapshot())
        return snapshot

    def aggregate_miss_rate(self) -> float:
        """Cluster-wide cache miss rate."""
        hits = sum(node.metrics.cache.hits for node in self.nodes)
        misses = sum(node.metrics.cache.misses for node in self.nodes)
        if hits + misses == 0:
            return 0.0
        return misses / (hits + misses)

    def collect_metrics(self, registry: MetricsRegistry) -> None:
        """Hoist every shard's stat bundle into ``registry``.

        Each shard contributes under a ``node=<id>`` label, so merged
        registries keep per-shard resolution while queries can still sum
        across the label.
        """
        for node in self.nodes:
            labels = {"node": str(node.node_id)}
            collect_bundle(registry, node.metrics, labels)
            controller = getattr(node, "staleness", None)
            if controller is not None:
                registry.gauge(
                    "repro_async_pulls_admitted", labels
                ).set(controller.admitted)
                registry.gauge(
                    "repro_async_pulls_rejected", labels
                ).set(controller.rejected)
                registry.gauge(
                    "repro_async_max_admitted_lag", labels
                ).set(controller.max_admitted_lag())
            buffer = getattr(node, "aggregation", None)
            if buffer is not None:
                registry.gauge(
                    "repro_async_aggregator_folds", labels
                ).set(buffer.stats.folds)
                registry.gauge(
                    "repro_async_aggregator_pending", labels
                ).set(buffer.pending)
                registry.gauge(
                    "repro_async_duplicates_dropped", labels
                ).set(buffer.stats.duplicates_dropped)
