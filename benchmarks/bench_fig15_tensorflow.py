"""Figure 15: performance comparison with TensorFlow on Criteo.

The Section VI-F sanity check on the (smaller) Criteo Kaggle dataset,
embedding dims 16 and 64, 1/2/4 GPUs, 128 MB cache for PMem-OE.

Paper: PMem-OE's training-time reduction vs TensorFlow is
6.3/19.5/30.1 % (dim 16) and 6.4/34.2/52 % (dim 64) at 1/2/4 GPUs;
DRAM-PS is best with PMem-OE within 5 %; PMem-Hash needs up to 4.3x
TensorFlow's time. Also: the 500 GB production model simply does not
fit the TensorFlow single-server baseline.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import pytest

from benchmarks.conftest import run_once
from repro.baselines.tensorflow_ps import TensorFlowPS
from repro.bench import Headline, Param, register
from repro.config import (
    CacheConfig,
    CheckpointConfig,
    ClusterConfig,
    NetworkConfig,
    ServerConfig,
    WorkloadConfig,
)
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator
from repro.workload.generator import WorkloadGenerator

PAPER_OE_REDUCTION = {
    16: {1: 0.063, 2: 0.195, 4: 0.301},
    64: {1: 0.064, 2: 0.342, 4: 0.52},
}

#: Criteo-scale operating point (scaled like the main profile).
CRITEO_KEYS = 100_000
FEATURES = 8
BATCH = 64


def criteo_epoch(system, workers, dim):
    server = ServerConfig(embedding_dim=dim, pmem_capacity_bytes=1 << 30)
    table_bytes = CRITEO_KEYS * dim * 4
    # 128 MB of a 2 GB (dim-16) table = 6.4 %; same absolute cache for
    # dim 64 = 1.6 % — exactly the paper's setup.
    cache = CacheConfig(capacity_bytes=max(1, int(0.064 * CRITEO_KEYS * 16 * 4)))
    cluster = ClusterConfig(
        num_workers=workers,
        batch_size=BATCH,
        network=NetworkConfig(bandwidth_bytes_per_s=60e6),
    )
    workload = WorkloadGenerator(
        WorkloadConfig(num_keys=CRITEO_KEYS, features_per_sample=FEATURES, seed=3)
    )
    simulator = TrainingSimulator(
        system, cluster, server, cache, CheckpointConfig.none(), workload
    )
    return simulator.run(max(60, 960 // (workers * 4)))


def test_fig15_vs_tensorflow(benchmark, report):
    def run():
        rows = {}
        for dim in (16, 64):
            for workers in (1, 2, 4):
                tf = criteo_epoch(SystemKind.TF_PS, workers, dim).sim_seconds
                oe = criteo_epoch(SystemKind.PMEM_OE, workers, dim).sim_seconds
                dram = criteo_epoch(SystemKind.DRAM_PS, workers, dim).sim_seconds
                ph = criteo_epoch(SystemKind.PMEM_HASH, workers, dim).sim_seconds
                rows[(dim, workers)] = {"tf": tf, "oe": oe, "dram": dram, "ph": ph}
        return rows

    rows = run_once(benchmark, run)
    report.title("fig15_tensorflow", "Figure 15: Criteo comparison vs TensorFlow")
    for (dim, workers), row in rows.items():
        reduction = 1 - row["oe"] / row["tf"]
        report.row(
            f"OE vs TF, dim {dim:>2} @ {workers} GPUs",
            f"{PAPER_OE_REDUCTION[dim][workers]:.1%} faster",
            f"{reduction:.1%} faster",
        )
    report.line()
    worst_gap = max(row["oe"] / row["dram"] - 1 for row in rows.values())
    worst_ph = max(row["ph"] / row["tf"] for row in rows.values())
    report.row("OE gap to DRAM-PS (max)", "< 5%", f"{worst_gap:.1%}")
    report.row("PMem-Hash vs TF (max)", "up to 4.3x", f"{worst_ph:.2f}x")
    tf_500gb = TensorFlowPS(ServerConfig(embedding_dim=64))
    report.row(
        "500 GB model deployable on TF",
        "no (exceeds 384 GB DRAM)",
        str(tf_500gb.supports_model_bytes(500 << 30)),
    )

    for dim in (16, 64):
        reductions = [1 - rows[(dim, w)]["oe"] / rows[(dim, w)]["tf"] for w in (1, 2, 4)]
        # OE always wins and the gap widens with workers.
        assert all(r > 0 for r in reductions)
        assert reductions == sorted(reductions)
    # Dim 64 amplifies the gap at scale.
    assert (1 - rows[(64, 4)]["oe"] / rows[(64, 4)]["tf"]) > (
        1 - rows[(16, 4)]["oe"] / rows[(16, 4)]["tf"]
    )
    assert worst_gap < 0.08
    assert worst_ph < 5.0
    assert not tf_500gb.supports_model_bytes(500 << 30)


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if metrics["reduction_vs_tf"] <= 0:
        failures.append("PMem-OE should beat the TensorFlow baseline")
    if metrics["gap_vs_dram"] >= 0.08:
        failures.append(
            f"PMem-OE gap to DRAM-PS {metrics['gap_vs_dram']:.1%} >= 8%"
        )
    return failures


@register(
    "fig15_tensorflow",
    params=[
        Param("dim", "int", 64, choices=[16, 64]),
        Param("workers", "int", 4, choices=[1, 2, 4]),
    ],
    headline={
        "reduction_vs_tf": Headline(direction="higher", max_regression=0.10),
        "gap_vs_dram": Headline(direction="lower", max_regression=0.10,
                                noise=0.01),
    },
    check=_check,
)
def entry(*, dim, workers):
    """Criteo-scale training-time comparison against TensorFlow,
    DRAM-PS, and PMem-Hash at one (dim, workers) point."""
    tf = criteo_epoch(SystemKind.TF_PS, workers, dim).sim_seconds
    oe = criteo_epoch(SystemKind.PMEM_OE, workers, dim).sim_seconds
    dram = criteo_epoch(SystemKind.DRAM_PS, workers, dim).sim_seconds
    ph = criteo_epoch(SystemKind.PMEM_HASH, workers, dim).sim_seconds
    return {
        "reduction_vs_tf": 1 - oe / tf,
        "gap_vs_dram": oe / dram - 1,
        "ph_vs_tf": ph / tf,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig15_tensorflow"))
