"""Loader for the real Criteo click-logs format.

The Criteo Kaggle / Terabyte datasets (the paper's Section VI-F
benchmark and its bigger sibling) ship as TSV lines::

    <label> \\t <I1> ... <I13> \\t <C1> ... <C26>

with integer counters ``I*`` (possibly empty) and 32-bit hex category
ids ``C*`` (possibly empty). This loader converts them into the same
:class:`~repro.dlrm.criteo.CriteoBatch` structure the synthetic
generator produces, so a real file drops into any trainer or example:

* categorical values hash into per-field buckets of size
  ``hash_buckets`` (the standard "hashing trick"; empty -> bucket 0),
  offset into the global key space field by field;
* dense counters get the standard ``log(1 + max(x, 0))`` transform
  (empty -> 0).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.sharding import mix64
from repro.dlrm.criteo import CriteoBatch
from repro.errors import ConfigError

NUM_DENSE = 13
NUM_CATEGORICAL = 26


class CriteoFileDataset:
    """Batches from a Criteo-format TSV file.

    The file is parsed once into memory (use a sliced/sampled file for
    anything big — this is a reproduction harness, not an ETL system).
    Batches are indexable like the synthetic dataset: batch ``i`` is the
    ``i``-th contiguous slice, wrapping around at the end so any batch
    index is valid (deterministic replay for recovery tests).

    Args:
        path: TSV file in Criteo format.
        hash_buckets: vocabulary size per categorical field.
    """

    def __init__(self, path: str | pathlib.Path, hash_buckets: int = 10_000):
        if hash_buckets <= 0:
            raise ConfigError("hash_buckets must be positive")
        self.hash_buckets = hash_buckets
        self.num_fields = NUM_CATEGORICAL
        self.num_dense = NUM_DENSE
        labels, dense, keys = [], [], []
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, 1):
                line = line.rstrip("\n")
                if not line:
                    continue
                parts = line.split("\t")
                if len(parts) != 1 + NUM_DENSE + NUM_CATEGORICAL:
                    raise ConfigError(
                        f"{path}:{line_number}: expected "
                        f"{1 + NUM_DENSE + NUM_CATEGORICAL} fields, got {len(parts)}"
                    )
                labels.append(self._parse_label(parts[0], line_number))
                dense.append(
                    [self._parse_dense(v) for v in parts[1 : 1 + NUM_DENSE]]
                )
                keys.append(
                    [
                        self._hash_categorical(field, value)
                        for field, value in enumerate(parts[1 + NUM_DENSE :])
                    ]
                )
        if not labels:
            raise ConfigError(f"{path} contains no samples")
        self._labels = np.array(labels, dtype=np.float32)
        self._dense = np.array(dense, dtype=np.float32)
        self._keys = np.array(keys, dtype=np.int64)

    # ------------------------------------------------------------------
    # dataset interface (mirrors CriteoSynthetic)
    # ------------------------------------------------------------------

    @property
    def num_samples(self) -> int:
        return len(self._labels)

    @property
    def num_keys(self) -> int:
        """Total key-space size across all fields."""
        return NUM_CATEGORICAL * self.hash_buckets

    def batch(self, batch_size: int, batch_index: int) -> CriteoBatch:
        """The ``batch_index``-th batch, wrapping at the end of the file."""
        if batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {batch_size}")
        indices = (
            np.arange(batch_size) + batch_index * batch_size
        ) % self.num_samples
        return CriteoBatch(
            keys=self._keys[indices],
            labels=self._labels[indices],
            dense=self._dense[indices],
        )

    def batches(self, batch_size: int, num_batches: int):
        for index in range(num_batches):
            yield self.batch(batch_size, index)

    def positive_rate(self) -> float:
        return float(self._labels.mean())

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_label(value: str, line_number: int) -> float:
        if value not in ("0", "1"):
            raise ConfigError(f"line {line_number}: label must be 0/1, got {value!r}")
        return float(value)

    @staticmethod
    def _parse_dense(value: str) -> float:
        if value == "":
            return 0.0
        return float(np.log1p(max(int(value), 0)))

    def _hash_categorical(self, field: int, value: str) -> int:
        offset = field * self.hash_buckets
        if value == "":
            return offset  # the per-field missing-value bucket
        bucket = mix64((field << 34) ^ int(value, 16)) % (self.hash_buckets - 1)
        return offset + 1 + bucket
