"""Typed parameter spaces and declarative sweep grids.

Two layers:

* :class:`Param` — one typed, defaulted parameter of a registered
  benchmark (``BenchSpec.params``). The registry coerces and validates
  every sweep cell against these before a worker ever runs.
* :class:`Axis` / :class:`Grid` — a declarative sweep grid: the cross
  product of axes, where an axis may be *conditional* (``when=``) on
  the values of other axes. The canonical grid carries a ``bench``
  axis, so one grid fans out over several benchmarks with per-benchmark
  parameter axes.

Grids come from three places: Python (construct :class:`Grid`
directly), an inline spec string (``parse_grid``), or a JSON file
(``load_grid``). The inline syntax::

    bench=prefetch,hotpath; lookahead[bench=prefetch]=0,1,2,4

declares a ``bench`` axis with two values and a ``lookahead`` axis that
only applies to ``prefetch`` cells. Scalars are type-inferred
(int -> float -> bool -> str).
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = [
    "Axis",
    "Grid",
    "Param",
    "expand_grid",
    "load_grid",
    "parse_grid",
]

_TYPES = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
}


def _infer(token: str):
    """Type-infer one scalar token from an inline grid spec."""
    text = token.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


@dataclass(frozen=True)
class Param:
    """One typed parameter of a registered benchmark."""

    name: str
    type: str = "int"
    default: object = None
    choices: tuple | None = None
    help: str = ""

    def __post_init__(self):
        if self.type not in _TYPES:
            raise ConfigError(
                f"param {self.name!r}: unknown type {self.type!r} "
                f"(one of {sorted(_TYPES)})"
            )

    def coerce(self, value):
        """Coerce ``value`` to this parameter's type; raise ConfigError."""
        target = _TYPES[self.type]
        if self.type == "bool" and isinstance(value, str):
            if value.lower() in ("true", "1", "yes"):
                value = True
            elif value.lower() in ("false", "0", "no"):
                value = False
        if self.type == "float" and isinstance(value, int):
            value = float(value)
        if not isinstance(value, target) or (
            target is int and isinstance(value, bool)
        ):
            try:
                if target is not bool:
                    value = target(value)
                else:
                    raise ValueError(value)
            except (TypeError, ValueError):
                raise ConfigError(
                    f"param {self.name!r}: {value!r} is not a {self.type}"
                ) from None
        if self.choices is not None and value not in self.choices:
            raise ConfigError(
                f"param {self.name!r}: {value!r} not in {list(self.choices)}"
            )
        return value


@dataclass(frozen=True)
class Axis:
    """One sweep axis: a name, its values, and an optional condition.

    ``when`` maps *other* axis names to the values under which this
    axis applies. In cells where the condition does not hold, the axis
    is simply omitted (the benchmark's declared default applies).
    """

    name: str
    values: tuple
    when: tuple = ()  # ((axis_name, (allowed, ...)), ...)

    def __post_init__(self):
        if not self.values:
            raise ConfigError(f"axis {self.name!r}: empty value list")

    def applies(self, partial: dict) -> bool:
        """Does this axis apply to a cell with the given axis values?"""
        for other, allowed in self.when:
            if other not in partial:
                raise ConfigError(
                    f"axis {self.name!r}: condition on {other!r}, which is "
                    "not declared before it"
                )
            if partial[other] not in allowed:
                return False
        return True


@dataclass
class Grid:
    """A declarative sweep grid: ordered axes, expanded on demand."""

    axes: list = field(default_factory=list)
    name: str = "grid"

    def axis(self, name: str, *values, when: dict | None = None) -> "Grid":
        """Append an axis; returns self for chaining."""
        condition = tuple(
            (key, tuple(value if isinstance(value, (list, tuple)) else (value,)))
            for key, value in (when or {}).items()
        )
        self.axes.append(Axis(name, tuple(values), condition))
        return self

    def cells(self) -> list:
        """Expand to the ordered, de-duplicated list of cell dicts."""
        return expand_grid(self.axes)


def expand_grid(axes) -> list:
    """Cross product of ``axes`` honouring conditional (``when``) axes.

    Axes are processed in declared order; a conditional axis may only
    reference axes declared before it. Cells that collapse to the same
    parameter dict (because a conditional axis was omitted) are
    de-duplicated, keeping first occurrence order.
    """
    names = [axis.name for axis in axes]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate axis names in {names}")
    cells = [{}]
    for axis in axes:
        expanded = []
        for cell in cells:
            if axis.applies(cell):
                for value in axis.values:
                    grown = dict(cell)
                    grown[axis.name] = value
                    expanded.append(grown)
            else:
                expanded.append(cell)
        cells = expanded
    unique, seen = [], set()
    for cell in cells:
        key = tuple(sorted(cell.items()))
        if key not in seen:
            seen.add(key)
            unique.append(cell)
    return unique


def parse_grid(spec: str, name: str = "inline") -> Grid:
    """Parse the inline ``a=1,2; b[a=1]=x,y`` grid syntax."""
    grid = Grid(name=name)
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ConfigError(f"grid clause {clause!r}: expected name=v1,v2,...")
        when: dict = {}
        bracket = clause.find("[")
        if bracket != -1 and bracket < clause.find("="):
            close = clause.find("]", bracket)
            if close == -1:
                raise ConfigError(f"grid clause {clause!r}: unclosed condition")
            head = clause[:bracket]
            condition = clause[bracket + 1 : close]
            rest = clause[close + 1 :].strip()
            if not rest.startswith("="):
                raise ConfigError(
                    f"grid clause {clause!r}: expected '=' after condition"
                )
            values_text = rest[1:]
            for term in condition.split(","):
                if "=" not in term:
                    raise ConfigError(
                        f"grid clause {clause!r}: condition term {term!r} "
                        "needs axis=value"
                    )
                axis_name, _, allowed = term.partition("=")
                when.setdefault(axis_name.strip(), []).extend(
                    _infer(tok) for tok in allowed.split("|")
                )
        else:
            head, _, values_text = clause.partition("=")
        values = [_infer(tok) for tok in values_text.split(",") if tok.strip() != ""]
        if not values:
            raise ConfigError(f"grid clause {clause!r}: no values")
        grid.axis(head.strip(), *values, when=when or None)
    if not grid.axes:
        raise ConfigError(f"empty grid spec {spec!r}")
    return grid


def load_grid(path) -> Grid:
    """Load a JSON grid file.

    Schema::

        {"name": "ci-smoke",
         "axes": [{"name": "bench", "values": ["prefetch", "hotpath"]},
                  {"name": "lookahead", "values": [0, 2],
                   "when": {"bench": ["prefetch"]}}]}
    """
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"grid file {path}: invalid JSON ({exc})") from None
    if not isinstance(payload, dict) or not isinstance(payload.get("axes"), list):
        raise ConfigError(f"grid file {path}: expected an object with 'axes'")
    grid = Grid(name=payload.get("name", path.stem))
    for entry in payload["axes"]:
        if not isinstance(entry, dict) or "name" not in entry or "values" not in entry:
            raise ConfigError(
                f"grid file {path}: each axis needs 'name' and 'values'"
            )
        grid.axis(entry["name"], *entry["values"], when=entry.get("when"))
    return grid
