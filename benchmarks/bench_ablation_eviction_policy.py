"""Ablation: LRU vs FIFO replacement under the DLRM skew.

The paper explicitly does NOT innovate on replacement policy ("we do
not focus on improving the cache replacement policies") and uses LRU.
This bench checks that default IS load-bearing: FIFO roughly doubles
the miss rate at the 400 MB operating point, because recency matters in
the warm mid-band of the skew even though the very hot head survives
either policy.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.config import EvictionPolicy
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE


def test_ablation_eviction_policy(benchmark, report):
    def run():
        lru = simulate_epoch(
            SystemKind.PMEM_OE, 16, cache=DEFAULT_PROFILE.cache_config(paper_mb=400)
        )
        fifo = simulate_epoch(
            SystemKind.PMEM_OE,
            16,
            cache=DEFAULT_PROFILE.cache_config(
                paper_mb=400, policy=EvictionPolicy.FIFO
            ),
        )
        return lru, fifo

    lru, fifo = run_once(benchmark, run)
    report.title(
        "ablation_eviction_policy",
        "Ablation: LRU vs FIFO (16 GPUs, 400 MB-eq cache)",
    )
    report.row("LRU miss rate (paper's choice)", "-", f"{lru.miss_rate:.2%}")
    report.row("FIFO miss rate", "-", f"{fifo.miss_rate:.2%}")
    report.row(
        "epoch time LRU / FIFO",
        "-",
        f"{lru.sim_seconds:.2f} s / {fifo.sim_seconds:.2f} s",
    )

    # LRU never loses, and at this cache size the gap is material —
    # supporting the paper's LRU default.
    assert lru.miss_rate <= fifo.miss_rate + 1e-9
    assert fifo.miss_rate - lru.miss_rate > 0.02
    assert lru.sim_seconds < fifo.sim_seconds


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    if metrics["miss_gap"] <= 0.02:
        return [
            f"FIFO-LRU miss gap {metrics['miss_gap']:.2%} too small — "
            "LRU default no longer load-bearing"
        ]
    return []


@register(
    "ablation_eviction_policy",
    params=[
        Param("cache_mb", "float", 400.0),
        Param("workers", "int", 16),
    ],
    headline={
        "lru_miss": Headline(direction="lower", max_regression=0.05),
        "miss_gap": Headline(direction="higher", max_regression=0.10),
    },
    check=_check,
)
def entry(*, cache_mb, workers):
    """LRU vs FIFO miss rates at one cache size under the DLRM skew."""
    lru = simulate_epoch(
        SystemKind.PMEM_OE, workers,
        cache=DEFAULT_PROFILE.cache_config(paper_mb=cache_mb),
    )
    fifo = simulate_epoch(
        SystemKind.PMEM_OE, workers,
        cache=DEFAULT_PROFILE.cache_config(
            paper_mb=cache_mb, policy=EvictionPolicy.FIFO
        ),
    )
    return {
        "lru_miss": lru.miss_rate,
        "fifo_miss": fifo.miss_rate,
        "miss_gap": fifo.miss_rate - lru.miss_rate,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("ablation_eviction_policy"))
