"""Stateful property testing of the sharded server (hypothesis).

Beyond the single-node machine, this one exercises the *distributed*
subtleties: per-shard checkpoint completion racing ahead of the
cluster, external retention barriers, and whole-cluster crash/recovery
to the newest checkpoint completed by every shard.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.config import CacheConfig, ServerConfig
from repro.core.server import OpenEmbeddingServer
from repro.core.optimizers import PSSGD

DIM = 2
NUM_NODES = 3
KEYS = st.lists(st.integers(0, 11), min_size=1, max_size=5, unique=True)
SERVER_CONFIG = ServerConfig(
    num_nodes=NUM_NODES, embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=31
)
CACHE_CONFIG = CacheConfig(capacity_bytes=2 * DIM * 4)
LR = 0.25


def initial_weights(key: int) -> np.ndarray:
    rng = np.random.default_rng((SERVER_CONFIG.seed, key))
    return rng.uniform(-0.01, 0.01, DIM).astype(np.float32)


class ServerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.server = OpenEmbeddingServer(SERVER_CONFIG, CACHE_CONFIG, PSSGD(lr=LR))
        self.reference: dict[int, np.ndarray] = {}
        self.snapshots: dict[int, dict[int, np.ndarray]] = {}
        self.batch = 0

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------

    @rule(keys=KEYS, grad=st.floats(-1.0, 1.0, allow_nan=False, width=32))
    def train_batch(self, keys, grad):
        self.server.pull(keys, self.batch)
        self.server.maintain(self.batch)
        grads = np.full((len(keys), DIM), grad, dtype=np.float32)
        self.server.push(keys, grads, self.batch)
        for key in keys:
            if key not in self.reference:
                self.reference[key] = initial_weights(key)
            self.reference[key] = self.reference[key] - np.float32(LR) * grads[0]
        self.batch += 1

    @precondition(
        lambda self: self.batch - 1
        > max(n.coordinator.last_completed for n in self.server.nodes)
        and all(
            not n.coordinator.queue.pending()
            or n.coordinator.queue.pending()[-1] < self.batch - 1
            for n in self.server.nodes
        )
        and self.batch > 0
    )
    @rule()
    def request_cluster_checkpoint(self):
        batch_id = self.batch - 1
        self.server.request_checkpoint(batch_id)
        self.snapshots[batch_id] = {
            key: np.array(weights, copy=True)
            for key, weights in self.reference.items()
        }

    @precondition(
        lambda self: any(n.coordinator.head() is not None for n in self.server.nodes)
    )
    @rule(node_index=st.integers(0, NUM_NODES - 1))
    def one_shard_races_ahead(self, node_index):
        """Complete pending checkpoints on ONE shard only — creating the
        straggler scenario the external barrier exists for."""
        self.server.nodes[node_index].cache.complete_pending_checkpoints()
        self.server._sync_external_barriers()

    @precondition(
        lambda self: any(n.coordinator.head() is not None for n in self.server.nodes)
    )
    @rule()
    def complete_everywhere(self):
        self.server.complete_pending_checkpoints()

    @rule()
    def crash_and_recover(self):
        global_ckpt = self.server.global_completed_checkpoint
        pools = self.server.crash()
        if global_ckpt < 0:
            self.server = OpenEmbeddingServer(
                SERVER_CONFIG, CACHE_CONFIG, PSSGD(lr=LR)
            )
            self.reference = {}
            self.snapshots = {}
            self.batch = 0
            return
        self.server, reports = OpenEmbeddingServer.recover(
            pools, SERVER_CONFIG, CACHE_CONFIG, PSSGD(lr=LR)
        )
        assert all(r.checkpoint_batch_id == global_ckpt for r in reports)
        expected = self.snapshots[global_ckpt]
        got = self.server.state_snapshot()
        assert set(got) == set(expected)
        for key, weights in expected.items():
            assert np.array_equal(got[key], weights), key
        self.reference = {
            key: np.array(weights, copy=True) for key, weights in expected.items()
        }
        self.batch = global_ckpt + 1
        self.snapshots = {
            b: snap for b, snap in self.snapshots.items() if b <= global_ckpt
        }

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    @invariant()
    def weights_match_reference(self):
        for key, expected in self.reference.items():
            assert np.array_equal(self.server.read_weights(key), expected), key

    @invariant()
    def global_checkpoint_is_recoverable(self):
        """Every shard still retains the versions of the cluster-wide
        checkpoint, even if it completed newer ones on its own."""
        global_ckpt = self.server.global_completed_checkpoint
        if global_ckpt < 0:
            return
        expected = self.snapshots[global_ckpt]
        for node in self.server.nodes:
            for entry in node.cache.index.entries():
                if entry.key not in expected:
                    continue
                versions = node.store.versions_of(entry.key)
                in_dram_covered = entry.in_dram and entry.version <= global_ckpt
                durable_covered = any(v <= global_ckpt for v in versions)
                assert in_dram_covered or durable_covered, (
                    f"key {entry.key}: no recoverable state <= {global_ckpt}"
                )

    @invariant()
    def structures_consistent(self):
        for node in self.server.nodes:
            node.cache.validate()


ServerMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=25, deadline=None
)
TestServerMachine = ServerMachine.TestCase
