"""Embedding entries and tagged ("smart") pointers.

Section V-A: the DRAM hash index stores pointers that *"use the lowest
bit to indicate whether the target embedding entry is in DRAM or PMem"*
(after the smart pointers of Chen et al., VLDB'21). We reproduce the
mechanism literally: index handles are integers whose low bit is the
location tag and whose upper bits are an arena slot.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ServerError


class Location(enum.IntEnum):
    """Where an entry's weights currently reside; doubles as the tag bit."""

    DRAM = 0
    PMEM = 1


def pack_handle(slot: int, location: Location) -> int:
    """Pack an arena slot and location tag into one index handle.

    The low bit carries the location (DRAM=0 / PMem=1); the remaining
    bits carry the slot, mirroring pointer tagging on 8-byte-aligned
    addresses.
    """
    if slot < 0:
        raise ServerError(f"slot must be non-negative, got {slot}")
    return (slot << 1) | int(location)


def unpack_handle(handle: int) -> tuple[int, Location]:
    """Inverse of :func:`pack_handle`: returns ``(slot, location)``."""
    if handle < 0:
        raise ServerError(f"handle must be non-negative, got {handle}")
    return handle >> 1, Location(handle & 1)


class EmbeddingEntry:
    """DRAM-side state of one embedding entry.

    The object always exists in DRAM (it is the index's target); whether
    the *weights* are DRAM-resident is tracked by ``location``. When the
    entry lives in PMem, ``weights``/``opt_state`` are None and the
    authoritative copy sits in the versioned store.

    Attributes:
        key: embedding id.
        weights: float32 vector, or None when not DRAM-resident (or in
            metadata-only simulation mode).
        opt_state: PS-side optimizer state (e.g. Adagrad accumulator),
            same residency rules as weights.
        version: batch id of the last access (Algorithm 1 line 10 /
            Algorithm 2 lines 16, 20).
        updated: batch id at which the entry's *state* last changed
            (creation, gradient update, or the durable version it was
            loaded from). Read-only traffic advances ``version`` but not
            ``updated``; the gap tells a flush that the current bytes
            still equal the state at any barrier in between.
        location: DRAM or PMEM — the tag bit of the index handle.
        dirty: weights were updated since the last flush (used by the
            dirty-tracking ablation; the paper's system always flushes).
        slot: arena slot backing this entry's handle.
        row: row of the cache's embedding arena holding this entry's
            packed weights+state while DRAM-resident (``-1`` otherwise,
            and always ``-1`` in the non-arena reference path). When
            set, ``weights``/``opt_state`` are live views into that row.
    """

    __slots__ = (
        "key",
        "weights",
        "opt_state",
        "version",
        "updated",
        "location",
        "dirty",
        "referenced",
        "slot",
        "row",
        "lru_prev",
        "lru_next",
        "in_lru",
    )

    def __init__(self, key: int, version: int = -1):
        self.key = key
        self.weights: np.ndarray | None = None
        self.opt_state: np.ndarray | None = None
        self.version = version
        self.updated = version
        self.location = Location.DRAM
        self.dirty = False
        self.referenced = False
        self.slot = -1
        self.row = -1
        self.lru_prev: EmbeddingEntry | None = None
        self.lru_next: EmbeddingEntry | None = None
        self.in_lru = False

    @property
    def in_dram(self) -> bool:
        return self.location == Location.DRAM

    def __repr__(self) -> str:
        return (
            f"EmbeddingEntry(key={self.key}, version={self.version}, "
            f"loc={self.location.name}, dirty={self.dirty})"
        )


class EntryArena:
    """Slab of entries addressed by slot, backing the tagged handles.

    Models the PS node's entry allocator: the hash index never stores
    object references, only integer handles; resolving a handle goes
    through the arena, exactly like dereferencing a tagged pointer.
    """

    def __init__(self) -> None:
        self._slots: list[EmbeddingEntry | None] = []
        self._free: list[int] = []

    def alloc(self, entry: EmbeddingEntry) -> int:
        """Place ``entry`` in the arena and return its slot."""
        if self._free:
            slot = self._free.pop()
            self._slots[slot] = entry
        else:
            slot = len(self._slots)
            self._slots.append(entry)
        entry.slot = slot
        return slot

    def get(self, slot: int) -> EmbeddingEntry:
        """Resolve a slot to its entry.

        Raises:
            ServerError: the slot is invalid or was freed.
        """
        if slot < 0 or slot >= len(self._slots):
            raise ServerError(f"invalid arena slot {slot}")
        entry = self._slots[slot]
        if entry is None:
            raise ServerError(f"arena slot {slot} is free (dangling handle)")
        return entry

    def free(self, slot: int) -> None:
        """Release a slot (the entry is gone from the node entirely)."""
        entry = self.get(slot)
        entry.slot = -1
        self._slots[slot] = None
        self._free.append(slot)

    def __len__(self) -> int:
        return len(self._slots) - len(self._free)
