"""Baseline systems: DRAM-PS, Ori-Cache, PMem-Hash, TensorFlow PS."""

import numpy as np
import pytest

from repro.baselines import (
    DRAMPSNode,
    OriCacheNode,
    PMemHashNode,
    TensorFlowPS,
)
from repro.config import CacheConfig, ServerConfig
from repro.core.ps_node import PSNode
from repro.errors import ConfigError, KeyNotFoundError, RecoveryError

DIM = 4


def server_config(seed=0, **overrides):
    defaults = dict(
        embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=seed
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def grads(n, value=1.0):
    return np.full((n, DIM), value, dtype=np.float32)


class TestDRAMPS:
    def test_pull_always_hits(self):
        node = DRAMPSNode(server_config())
        node.pull([1, 2], 0)
        result = node.pull([1, 2], 1)
        assert result.hits == 2
        assert result.misses == 0

    def test_same_init_as_openembedding(self):
        """Weight-for-weight comparability across systems."""
        dram = DRAMPSNode(server_config(seed=3))
        oe = PSNode(0, server_config(seed=3), CacheConfig(capacity_bytes=1 << 16))
        dram.pull([7], 0)
        oe.pull([7], 0)
        assert np.array_equal(dram.read_weights(7), oe.read_weights(7))

    def test_push_applies_optimizer(self):
        node = DRAMPSNode(server_config())
        node.pull([1], 0)
        before = node.read_weights(1)
        node.push([1], grads(1), 0)
        assert not np.array_equal(before, node.read_weights(1))

    def test_push_unknown_key_rejected(self):
        node = DRAMPSNode(server_config())
        with pytest.raises(KeyNotFoundError):
            node.push([9], grads(1), 0)

    def test_checkpoint_restore_roundtrip(self):
        node = DRAMPSNode(server_config())
        node.pull([1, 2], 0)
        node.push([1, 2], grads(2), 0)
        node.checkpoint()
        snapshot = node.state_snapshot()
        node.pull([1, 2], 1)
        node.push([1, 2], grads(2), 1)  # past the checkpoint
        pool = node.crash()
        recovered, batch_id = DRAMPSNode.recover(pool, server_config())
        assert batch_id == 0
        restored = recovered.state_snapshot()
        for key, weights in snapshot.items():
            assert np.array_equal(restored[key], weights)

    def test_crash_without_checkpoint_loses_everything(self):
        node = DRAMPSNode(server_config())
        node.pull([1], 0)
        node.push([1], grads(1), 0)
        pool = node.crash()
        with pytest.raises(RecoveryError):
            DRAMPSNode.recover(pool, server_config())

    def test_incremental_second_checkpoint_smaller(self):
        node = DRAMPSNode(server_config())
        keys = list(range(10))
        node.pull(keys, 0)
        node.push(keys, grads(10), 0)
        first = node.checkpoint()
        node.pull([1], 1)
        node.push([1], grads(1), 1)
        second = node.checkpoint()
        assert first.entries_written == 10
        assert second.entries_written == 1

    def test_dram_capacity_enforced(self):
        node = DRAMPSNode(server_config(), dram_capacity_bytes=2 * DIM * 4)
        node.pull([1, 2], 0)
        with pytest.raises(MemoryError):
            node.pull([3], 0)


class TestOriCache:
    def test_functionally_equivalent_to_pmem_oe(self):
        """Same LRU policy, same weights — the paper's same-miss-rate
        observation, strengthened to bitwise equality."""
        cache_config = CacheConfig(capacity_bytes=3 * DIM * 4)
        ori = OriCacheNode(0, server_config(seed=2), cache_config)
        oe = PSNode(0, server_config(seed=2), cache_config)
        stream = [[1, 2, 3], [4, 5], [1, 4], [6, 7, 1], [2]]
        for batch, keys in enumerate(stream):
            r_ori = ori.pull(keys, batch)
            r_oe = oe.pull(keys, batch)
            oe.maintain(batch)
            assert (r_ori.hits, r_ori.misses) == (r_oe.hits, r_oe.misses)
            ori.push(keys, grads(len(keys), 0.3), batch)
            oe.push(keys, grads(len(keys), 0.3), batch)
        assert ori.metrics.cache.miss_rate == oe.metrics.cache.miss_rate
        for key in range(1, 8):
            assert np.array_equal(ori.read_weights(key), oe.read_weights(key))

    def test_maintenance_is_inline(self):
        ori = OriCacheNode(0, server_config(), CacheConfig(capacity_bytes=1 << 16))
        ori.pull([1, 2], 0)
        assert ori.cache.cached_entries == 2  # already in LRU, no defer
        assert len(ori.cache.access_queue) == 0

    def test_incremental_checkpoint_roundtrip(self):
        cache_config = CacheConfig(capacity_bytes=2 * DIM * 4)
        ori = OriCacheNode(0, server_config(), cache_config)
        keys = [1, 2, 3, 4]
        ori.pull(keys, 0)
        ori.push(keys, grads(4), 0)
        ori.checkpoint()
        snapshot = ori.state_snapshot()
        ori.pull(keys, 1)
        ori.push(keys, grads(4), 1)
        ckpt_pool = ori.crash()
        recovered, batch_id = OriCacheNode.recover(
            ckpt_pool, server_config(), cache_config
        )
        assert batch_id == 0
        restored = recovered.state_snapshot()
        for key, weights in snapshot.items():
            assert np.array_equal(restored[key], weights)


class TestPMemHash:
    def test_every_access_is_pmem(self):
        node = PMemHashNode(server_config())
        node.pull([1, 2], 0)
        result = node.pull([1, 2], 1)
        assert result.hits == 0
        assert result.misses == 2

    def test_push_rmw(self):
        node = PMemHashNode(server_config())
        node.pull([1], 0)
        before = node.read_weights(1)
        node.push([1], grads(1), 0)
        after = node.read_weights(1)
        assert not np.array_equal(before, after)
        node.crash()
        assert np.array_equal(node.read_weights(1), after)  # durable

    def test_crash_state_mixes_batches(self):
        """Observation 2: durable but NOT batch-consistent. Update half
        the keys in batch 1, crash mid-batch: the surviving state holds
        batch-1 values for some keys and batch-0 for others."""
        node = PMemHashNode(server_config())
        keys = [1, 2, 3, 4]
        node.pull(keys, 0)
        node.push(keys, grads(4), 0)
        state_batch0 = {k: node.read_weights(k) for k in keys}
        node.pull(keys, 1)
        node.push([1, 2], grads(2), 1)  # batch 1 partially applied
        node.crash()
        surviving = node.surviving_state()
        changed = [k for k in keys if not np.array_equal(surviving[k], state_batch0[k])]
        unchanged = [k for k in keys if np.array_equal(surviving[k], state_batch0[k])]
        assert changed == [1, 2]
        assert unchanged == [3, 4]

    def test_unknown_key_push_rejected(self):
        node = PMemHashNode(server_config())
        with pytest.raises(KeyNotFoundError):
            node.push([5], grads(1), 0)


class TestTensorFlowPS:
    def test_single_node_only(self):
        with pytest.raises(ConfigError):
            TensorFlowPS(server_config(num_nodes=2))

    def test_capacity_gate(self):
        ps = TensorFlowPS(server_config(), dram_capacity_bytes=384 << 30)
        assert ps.supports_model_bytes(100 << 30)
        assert not ps.supports_model_bytes(500 << 30)  # the paper's case

    def test_trains_like_dram_ps(self):
        tf_ps = TensorFlowPS(server_config(seed=1))
        dram = DRAMPSNode(server_config(seed=1))
        for node in (tf_ps, dram):
            node.pull([1, 2], 0)
            node.push([1, 2], grads(2), 0)
        for key in (1, 2):
            assert np.array_equal(tf_ps.read_weights(key), dram.read_weights(key))
