"""Property tests for workload distributions (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.distributions import (
    BandedSkewDistribution,
    ExponentialRankDistribution,
)


class TestBandedProperties:
    @given(
        num_keys=st.integers(100, 1_000_000),
        fraction=st.floats(1e-4, 1.0, exclude_min=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_share_in_unit_interval(self, num_keys, fraction):
        dist = BandedSkewDistribution(num_keys)
        share = dist.top_fraction_share(fraction)
        assert 0.0 <= share <= 1.0 + 1e-9

    @given(
        num_keys=st.integers(1000, 100_000),
        a=st.floats(1e-3, 0.5),
        b=st.floats(1e-3, 0.5),
    )
    @settings(max_examples=80, deadline=None)
    def test_share_monotone_in_fraction(self, num_keys, a, b):
        dist = BandedSkewDistribution(num_keys)
        low, high = sorted((a, b))
        assert dist.top_fraction_share(low) <= dist.top_fraction_share(high) + 1e-9

    @given(
        temperature=st.floats(0.3, 3.0),
        num_keys=st.integers(1000, 50_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_temperature_orders_head_mass(self, temperature, num_keys):
        base = BandedSkewDistribution(num_keys)
        variant = base.with_temperature(temperature)
        head = 0.0005
        if temperature > 1.0:
            assert variant.top_fraction_share(head) >= base.top_fraction_share(head) - 1e-9
        elif temperature < 1.0:
            assert variant.top_fraction_share(head) <= base.top_fraction_share(head) + 1e-9

    @given(num_keys=st.integers(10, 10_000), n=st.integers(1, 2000))
    @settings(max_examples=60, deadline=None)
    def test_samples_always_in_range(self, num_keys, n):
        keys = BandedSkewDistribution(num_keys).sample_keys(n)
        assert keys.min() >= 0
        assert keys.max() < num_keys

    @given(num_keys=st.integers(1000, 20_000), seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_full_fraction_is_total_mass(self, num_keys, seed):
        dist = BandedSkewDistribution(num_keys, seed=seed)
        assert dist.top_fraction_share(1.0) == np.float64(1.0)


class TestExponentialProperties:
    @given(
        num_keys=st.integers(100, 100_000),
        rate=st.floats(0.1, 50.0),
        fraction=st.floats(1e-3, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_share_bounds_and_dominates_uniform(self, num_keys, rate, fraction):
        dist = ExponentialRankDistribution(num_keys, rate)
        share = dist.top_fraction_share(fraction)
        assert 0.0 <= share <= 1.0 + 1e-9
        # A decaying distribution always gives the head at least its
        # uniform share.
        assert share >= fraction - 1e-9

    @given(
        num_keys=st.integers(1000, 50_000),
        low_rate=st.floats(0.5, 5.0),
        multiplier=st.floats(1.5, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_higher_rate_more_head_mass(self, num_keys, low_rate, multiplier):
        low = ExponentialRankDistribution(num_keys, low_rate)
        high = ExponentialRankDistribution(num_keys, low_rate * multiplier)
        assert high.top_fraction_share(0.01) >= low.top_fraction_share(0.01) - 1e-9

    @given(num_keys=st.integers(10, 5000), rate=st.floats(0.1, 30.0))
    @settings(max_examples=60, deadline=None)
    def test_samples_in_range(self, num_keys, rate):
        ranks = ExponentialRankDistribution(num_keys, rate).sample_ranks(500)
        assert ranks.min() >= 0
        assert ranks.max() < num_keys
