"""Observability overhead: tracing must be free when off, cheap when on.

Three configurations of the *same* simulated training run:

* ``off``     — no tracer, no registry (the default every component
  falls back to: the shared ``NULL_TRACER`` no-op path);
* ``noop``    — a disabled ``Tracer`` passed explicitly, exercising the
  no-op span context manager on every call site;
* ``enabled`` — a live ``Tracer`` plus a ``MetricsRegistry``, with a
  ``FlightRecorder`` tapped into the tracer, recording every span,
  instant event, and histogram observation (and ringing each into the
  bounded postmortem buffer). Context propagation rides the same
  switch: a live tracer stamps trace context onto every RPC frame.

Two invariants are asserted:

1. **Semantics**: the simulated outcome (``sim_seconds``, request
   counts, per-phase totals) is bit-identical across all three
   configurations.  Observability must never perturb what it observes.
2. **Cost**: enabled tracing adds less than ``CEILING`` (5 %) to the
   best-of-N wall time of the untraced run.

Run standalone::

    python benchmarks/bench_obs_overhead.py            # full, writes
                                                       # results/obs_overhead.txt
    python benchmarks/bench_obs_overhead.py --smoke    # fast CI check
"""

from __future__ import annotations

import dataclasses
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.bench import Headline, Param, register
from repro.config import (
    CheckpointConfig,
    ClusterConfig,
    PrefetchConfig,
    WorkloadConfig,
)
from repro.obs import FlightRecorder, MetricsRegistry, Tracer
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator
from repro.workload.generator import WorkloadGenerator

CEILING = 0.05  # enabled tracing may cost at most 5% wall time

ITERATIONS = 200
REPEATS = 5
SMOKE_ITERATIONS = 40
SMOKE_REPEATS = 3

CONFIGS = ("off", "noop", "enabled")


def _sinks(config: str):
    if config == "off":
        return None, None
    if config == "noop":
        return Tracer(enabled=False), None
    return Tracer(recorder=FlightRecorder()), MetricsRegistry()


def _run(config: str, iterations: int):
    """One simulated run; returns (result, wall_seconds, events)."""
    tracer, registry = _sinks(config)
    simulator = TrainingSimulator(
        SystemKind.PMEM_OE,
        cluster=ClusterConfig(num_workers=8, batch_size=256),
        checkpoint=CheckpointConfig(interval_seconds=0.5),
        workload=WorkloadGenerator(WorkloadConfig(num_keys=50_000, seed=11)),
        prefetch=PrefetchConfig(lookahead=2),
        tracer=tracer,
        registry=registry,
    )
    start = time.perf_counter()
    result = simulator.run(iterations)
    wall = time.perf_counter() - start
    events = 0
    if tracer is not None:
        events = len(tracer.closed_spans()) + len(tracer.instants)
    return result, wall, events


def _fingerprint(result) -> dict:
    """Everything semantic in a run result (drop the trace object)."""
    fields = dataclasses.asdict(result)
    fields.pop("trace", None)
    fields["system"] = result.system.value
    return fields


def measure(iterations: int, repeats: int):
    """Best-of-``repeats`` wall time per configuration + identity check."""
    _run("off", iterations)  # warm caches so config order doesn't bias
    walls = {config: [] for config in CONFIGS}
    events = {config: 0 for config in CONFIGS}
    fingerprints = {}
    for __ in range(repeats):
        for config in CONFIGS:
            result, wall, count = _run(config, iterations)
            walls[config].append(wall)
            events[config] = count
            fingerprint = _fingerprint(result)
            if config not in fingerprints:
                fingerprints[config] = fingerprint
            elif fingerprints[config] != fingerprint:
                raise AssertionError(
                    f"{config}: run is not deterministic across repeats"
                )
    reference = fingerprints["off"]
    for config in ("noop", "enabled"):
        if fingerprints[config] != reference:
            diff = [
                key
                for key, value in fingerprints[config].items()
                if reference[key] != value
            ]
            raise AssertionError(
                f"observability perturbed the simulation: {config} "
                f"differs from off in {diff}"
            )
    best = {config: min(times) for config, times in walls.items()}
    return best, events, reference


def report(iterations: int, repeats: int, out=None) -> int:
    best, events, reference = measure(iterations, repeats)
    base = best["off"]
    lines = [
        "obs_overhead: tracing cost on the simulated training loop",
        f"  run: PMem-OE, 8 workers x batch 256, 50k keys, lookahead 2, "
        f"batch-aware checkpoints, {iterations} iterations, "
        f"best of {repeats}",
        f"  simulated outcome identical across configs: "
        f"sim_seconds={reference['sim_seconds']:.6f} "
        f"requests={reference['total_requests']}",
        "",
        f"  {'config':<10} {'wall (s)':>10} {'overhead':>10} {'events':>8}",
    ]
    for config in CONFIGS:
        overhead = (best[config] - base) / base
        lines.append(
            f"  {config:<10} {best[config]:>10.4f} {overhead:>+9.1%} "
            f"{events[config]:>8}"
        )
    enabled_overhead = (best["enabled"] - base) / base
    verdict = "PASS" if enabled_overhead < CEILING else "FAIL"
    lines += [
        "",
        f"  ceiling: enabled < {CEILING:.0%} -> {verdict} "
        f"({enabled_overhead:+.1%})",
    ]
    text = "\n".join(lines) + "\n"
    print(text, end="")
    if out is not None:
        pathlib.Path(out).write_text(text)
        print(f"wrote {out}")
    return 0 if verdict == "PASS" else 1


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast check for CI (fewer iterations/repeats, no result file)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return report(SMOKE_ITERATIONS, SMOKE_REPEATS)
    out = _ROOT / "benchmarks" / "results" / "obs_overhead.txt"
    return report(ITERATIONS, REPEATS, out=str(out))


# --- registry entry -------------------------------------------------------


def _entry_check(metrics: dict, params: dict) -> list:
    failures = []
    if not metrics["identical"]:
        failures.append("observability perturbed the simulated outcome")
    if metrics["overhead"] >= params["ceiling"]:
        failures.append(
            f"enabled tracing overhead {metrics['overhead']:+.1%} "
            f">= ceiling {params['ceiling']:.0%}"
        )
    return failures


@register(
    "obs_overhead",
    params=[
        Param("iterations", "int", ITERATIONS),
        Param("repeats", "int", REPEATS),
        # The registry check uses a softer ceiling than the historical
        # standalone 5%: wall-clock overhead on shared CI runners jitters
        # by several points, and the deterministic `identical` invariant
        # is the guard that actually matters.
        Param("ceiling", "float", 0.15),
    ],
    smoke={"iterations": SMOKE_ITERATIONS, "repeats": SMOKE_REPEATS},
    headline={
        "identical": Headline(),
        # Wall-clock fraction near zero: gate on the absolute noise
        # floor, not a relative move.
        "overhead": Headline(direction="lower", max_regression=1.0, noise=0.10),
    },
    check=_entry_check,
)
def entry(*, iterations, repeats, ceiling):
    """Enabled-tracing wall-clock overhead plus the semantics-identical
    invariant across off/noop/enabled configurations."""
    del ceiling  # consumed by the acceptance check, not the run
    best, events, __ = measure(iterations, repeats)
    base = best["off"]
    return {
        "overhead": (best["enabled"] - base) / base,
        "noop_overhead": (best["noop"] - base) / base,
        "identical": True,  # measure() raises on any divergence
        "events": events["enabled"],
    }


if __name__ == "__main__":
    if not sys.argv[1:]:
        # Bare invocation keeps the historical full report + txt artifact.
        sys.exit(main())
    from repro.bench.shim import main as shim_main

    sys.exit(shim_main("obs_overhead"))
